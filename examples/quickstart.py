#!/usr/bin/env python
"""Quickstart: detect communities in a small social graph.

Builds a toy graph with two obvious friend groups, runs GVE-Leiden, and
inspects the result — membership, modularity, and the guarantee that no
community is internally disconnected.

Run with:  python examples/quickstart.py
"""

from repro import (
    GraphBuilder,
    LeidenConfig,
    disconnected_communities,
    leiden,
    modularity,
)


def main() -> None:
    # Two friend groups bridged by a single acquaintance edge (2-6).
    edges = [
        # group A: vertices 0-3
        (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
        # group B: vertices 4-7
        (4, 5), (4, 6), (4, 7), (5, 6), (5, 7), (6, 7),
        # the bridge
        (2, 6),
    ]
    graph = GraphBuilder().add_edges(edges).build()
    print(f"graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} stored (directed) edges")

    # Default configuration = the paper's tuned settings: greedy
    # refinement, threshold scaling, aggregation tolerance 0.8.
    result = leiden(graph, LeidenConfig(seed=42))

    print(f"communities found: {result.num_communities}")
    print(f"membership: {result.membership.tolist()}")
    print(f"modularity: {modularity(graph, result.membership):.4f}")
    print(f"passes: {result.num_passes}")

    # The Leiden guarantee: every community is internally connected.
    report = disconnected_communities(graph, result.membership)
    print(f"internally-disconnected communities: {report.num_disconnected}")

    # The per-pass trace shows the algorithm converging.
    for ps in result.passes:
        print(f"  pass {ps.index}: {ps.num_vertices} vertices -> "
              f"{ps.num_communities} communities "
              f"({ps.move_iterations} local-move iterations, "
              f"{ps.refine_moves} refinement merges)")


if __name__ == "__main__":
    main()
