#!/usr/bin/env python
"""Community-aware relabeling as a cache-locality preprocessor.

Real-world graphs often arrive with hashed or arbitrary vertex ids, so
the `membership[targets]` gathers at the heart of every Leiden pass
jump all over memory.  This example simulates that (scrambling a road
network's ids), then uses a community partition itself to relabel the
graph — members of one community become contiguous ids — and measures
the modelled cache misses per edge of each layout.

Also shown: quality is *exactly* layout-invariant (the same partition
scores bit-identically however the vertices are labeled), and the
`relabel=` config knob that runs the whole pipeline internally.

Run with:  python examples/reorder_locality.py
"""

import numpy as np

from repro import LeidenConfig, leiden, modularity
from repro.datasets import load_graph
from repro.graph.relabel import community_relabeling
from repro.observability import measure_locality


def miss_ratio(graph) -> float:
    return measure_locality(graph).miss_ratio


def main() -> None:
    graph = load_graph("asia_osm", seed=1)
    print(f"asia_osm: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")

    # Simulate hashed ids: a seeded random permutation of the vertices.
    rng = np.random.default_rng(7)
    scramble = rng.permutation(graph.num_vertices).astype(np.int64)
    scrambled, _ = graph.permute(scramble)

    # The cure is the partition itself: solve on the scrambled graph,
    # then group each community's vertices into a contiguous id range.
    result = leiden(scrambled, LeidenConfig(seed=42))
    layout = community_relabeling(
        scrambled, result.dendrogram.memberships(), mode="community")
    relabeled, _ = scrambled.permute(layout.perm)

    print(f"layout communities: {layout.num_communities}")
    print("modelled LRU misses per edge gather (lower = more local):")
    for name, g in (("original", graph), ("scrambled", scrambled),
                    ("relabeled", relabeled)):
        print(f"  {name:9s} {miss_ratio(g):.4f}")

    # The same partition, expressed in either labeling, has the same Q.
    q_scrambled = modularity(scrambled, result.membership)
    q_relabeled = modularity(relabeled, layout.to_relabeled(result.membership))
    print(f"Q invariant under relabeling: {q_scrambled == q_relabeled}")

    # One-knob version: the solver pilots, relabels, solves, and maps
    # the result back to the caller's original vertex ids.
    auto = leiden(scrambled, LeidenConfig(seed=42, relabel="community"))
    q_auto = modularity(scrambled, auto.membership)
    print(f"config.relabel='community': Q = {q_auto:.4f} on "
          f"{auto.num_communities} communities "
          f"(layout of {auto.relabeling.num_communities})")


if __name__ == "__main__":
    main()
