#!/usr/bin/env python
"""Memory smoke: the deterministic allocation ledger end to end.

Demonstrates the memory-observability subsystem:

1. one GVE-Leiden detection run with a :class:`MemoryLedger` attached to
   the runtime — the CSR arrays, the kernel workspace and the
   aggregation transients all record logical alloc/resize/free events on
   the ledger's logical clock;
2. the per-component and per-phase peak watermarks, and the replay
   validator (:func:`validate_memory_doc` re-derives every watermark
   from the event stream);
3. the determinism guarantee — two identical runs emit byte-identical
   ``repro.memory/1`` reports;
4. the device-OOM story — the simulated A100 rejecting ``sk-2005`` with
   an allocation trace naming the component and phase of what filled
   the budget;
5. the Chrome-trace counter lane (``mem_live_bytes``), validated against
   the profiler's trace-event schema.

Run with:  PYTHONPATH=src python examples/memory_smoke.py
"""

from repro.baselines.cugraph_leiden import A100_DEVICE
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import graph_spec, load_graph
from repro.errors import SimulatedOutOfMemory
from repro.observability.memtrack import (
    MemoryLedger,
    record_csr,
    validate_memory_doc,
)
from repro.observability.profiler import validate_chrome_trace
from repro.parallel.runtime import Runtime


def run_once(graph, seed: int = 42) -> dict:
    """One instrumented detection run -> a ``repro.memory/1`` report."""
    ledger = MemoryLedger()
    record_csr(ledger, graph)  # charge the input CSR to the ledger
    with Runtime(num_threads=1, seed=seed, memory=ledger) as rt:
        leiden(graph, LeidenConfig(seed=seed), runtime=rt)
    return ledger.to_snapshot(experiment="asia_osm", seed=seed)


def main() -> None:
    graph = load_graph("asia_osm")

    # 1 + 2. One run; watermarks and the replay validator.
    doc = run_once(graph)
    summary = validate_memory_doc(doc)
    logical = doc["logical"]
    allocs = sum(c["allocs"] for c in logical["components"].values())
    print(f"asia_osm: {allocs} allocations, "
          f"{len(doc['events'])} events on a logical clock, "
          f"replay validates: {bool(summary)}")
    print(f"peak logical bytes: {logical['peak_bytes']:,}")
    for component, stats in sorted(logical["components"].items()):
        print(f"  component {component:<10} peak {stats['peak_bytes']:>9,} B"
              f"  (live at end {stats['live_bytes']:,} B)")
    for phase, stats in sorted(logical["phases"].items()):
        print(f"  phase     {phase:<10} peak {stats['peak_bytes']:>9,} B")

    # 3. Byte determinism: same graph, same seed -> same report.
    import json

    a = json.dumps(run_once(graph), sort_keys=True)
    b = json.dumps(run_once(graph), sort_keys=True)
    print(f"\ndouble runs byte-identical: {a == b}")

    # 4. The simulated A100 rejecting the paper's biggest OOM case with
    # a component/phase-attributed allocation trace.
    spec = graph_spec("sk-2005")
    try:
        A100_DEVICE.check_fit(spec.paper_vertices, spec.paper_edges,
                              "sk-2005")
    except SimulatedOutOfMemory as exc:
        print(f"\nsk-2005 on the A100: required "
              f"{exc.required_bytes / 1024**3:.1f} GiB > "
              f"{exc.capacity_bytes / 1024**3:.0f} GiB capacity")
        print("allocation trace (largest first):")
        for line in exc.alloc_trace[:4]:
            print(f"  {line}")

    # 5. Chrome counter lane, validated against the trace-event schema.
    ledger = MemoryLedger()
    record_csr(ledger, graph)
    with Runtime(num_threads=1, seed=42, memory=ledger) as rt:
        leiden(graph, LeidenConfig(seed=42), runtime=rt)
    chrome = ledger.to_chrome_trace(experiment="asia_osm", seed=42)
    report = validate_chrome_trace(chrome)
    counters = sum(1 for ev in chrome["traceEvents"]
                   if ev.get("name") == "mem_live_bytes")
    print(f"\nchrome export: {counters} mem_live_bytes counter samples, "
          f"schema validates: {bool(report)}")


if __name__ == "__main__":
    main()
