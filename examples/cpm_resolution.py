#!/usr/bin/env python
"""CPM vs modularity: escaping the resolution limit.

Modularity maximization cannot resolve communities below a scale set by
the total edge count (the *resolution limit* — the paper's Section 2
points to the Constant Potts Model as the fix).  This example builds a
ring of many small cliques: modularity merges adjacent cliques once the
ring gets long enough, while CPM at a suitable γ keeps every clique
separate regardless of ring length.

Run with:  python examples/cpm_resolution.py
"""

from repro import GraphBuilder, LeidenConfig, leiden
from repro.metrics import cpm_quality, modularity


def ring_of_cliques(num_cliques: int, clique_size: int):
    b = GraphBuilder()
    n = num_cliques * clique_size
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                b.add_edge(base + i, base + j)
        b.add_edge(base, (base + clique_size) % n)
    return b.build()


def main() -> None:
    clique_size = 5
    print(f"{'ring size':>10} {'modularity comms':>17} {'CPM comms':>10} "
          f"(cliques of {clique_size})")
    for num_cliques in (8, 16, 32, 64, 128):
        graph = ring_of_cliques(num_cliques, clique_size)
        mod = leiden(graph, LeidenConfig(seed=1))
        cpm = leiden(graph, LeidenConfig(quality="cpm", resolution=0.5,
                                         seed=1))
        marker = "  <- resolution limit" if \
            mod.num_communities < num_cliques else ""
        print(f"{num_cliques:10d} {mod.num_communities:17d} "
              f"{cpm.num_communities:10d}{marker}")

    graph = ring_of_cliques(64, clique_size)
    cpm = leiden(graph, LeidenConfig(quality="cpm", resolution=0.5, seed=1))
    print(f"\nCPM objective on the 64-ring: "
          f"H/m = {cpm_quality(graph, cpm.membership, resolution=0.5):.4f}")
    print(f"modularity of the same partition: "
          f"Q = {modularity(graph, cpm.membership):.4f}")
    print("\nCPM's γ sets an absolute intra-density threshold, so the "
          "detected scale\ndoes not drift with graph size — the property "
          "Traag et al. (2011) prove.")


if __name__ == "__main__":
    main()
