#!/usr/bin/env python
"""Process engine: real shared-memory parallelism, simulated-oracle exact.

Runs GVE-Leiden on a registry graph twice — once on the simulated
``batch`` engine and once on the ``process`` engine, whose workers are
separate interpreter processes mapping the CSR arrays through
``multiprocessing.shared_memory`` — and shows that the memberships are
bitwise identical while the process engine uses real parallel wall
clock.

Run with:  python examples/process_engine.py
"""

import time

from repro import LeidenConfig, leiden, modularity
from repro.datasets.registry import load_graph
from repro.parallel.runtime import Runtime

GRAPH = "com-LiveJournal"
WORKERS = 2


def main() -> None:
    graph = load_graph(GRAPH, seed=1)
    print(f"graph: {GRAPH} "
          f"({graph.num_vertices} vertices, {graph.num_edges} edges)")

    # Oracle: the single-process simulated batch engine.
    t0 = time.perf_counter()
    oracle = leiden(graph, LeidenConfig(engine="batch", seed=42))
    batch_wall = time.perf_counter() - t0

    # Process engine: same algorithm, chunks fanned out to worker
    # processes over shared memory.  The Runtime owns the pool; close()
    # (or the context manager) reaps the workers and the segments.
    t0 = time.perf_counter()
    with Runtime(num_threads=WORKERS, executor="process", seed=42) as rt:
        result = leiden(graph, LeidenConfig(engine="process", seed=42),
                        runtime=rt)
    process_wall = time.perf_counter() - t0

    same = bool((result.membership == oracle.membership).all())
    print(f"batch engine:   {batch_wall:.2f}s wall, "
          f"{oracle.num_communities} communities, "
          f"Q={modularity(graph, oracle.membership):.4f}")
    print(f"process engine: {process_wall:.2f}s wall at {WORKERS} workers, "
          f"{result.num_communities} communities")
    print(f"membership bitwise-identical to the simulated oracle: {same}")
    if not same:
        raise SystemExit("process engine diverged from the batch oracle")


if __name__ == "__main__":
    main()
