#!/usr/bin/env python
"""Head-to-head: GVE-Leiden vs the four competing implementations.

Runs every implementation the paper benchmarks (original Leiden, igraph,
NetworKit, cuGraph-on-A100-model) on two registry stand-ins and prints a
miniature Figure 6: modelled runtime at paper scale, modularity, and the
fraction of internally-disconnected communities — including cuGraph's
out-of-memory failure on a billion-edge web crawl.

Run with:  python examples/compare_implementations.py
"""

from repro.baselines import IMPLEMENTATIONS
from repro.bench.harness import run_once
from repro.datasets import graph_spec

GRAPHS = ["com-LiveJournal", "asia_osm", "sk-2005"]


def main() -> None:
    for graph_name in GRAPHS:
        spec = graph_spec(graph_name)
        print(f"=== {graph_name} (paper scale: {spec.paper_edges:.3g} edges)")
        header = (f"{'implementation':<18} {'modelled s':>11} {'Q':>8} "
                  f"{'disconnected':>13}")
        print(header)
        print("-" * len(header))
        for name, impl in IMPLEMENTATIONS.items():
            rec = run_once(name, graph_name, seed=42)
            if not rec.ok:
                print(f"{impl.display_name:<18} {rec.failure}")
                continue
            print(f"{impl.display_name:<18} {rec.modeled_seconds:11.2f} "
                  f"{rec.modularity:8.4f} {rec.disconnected_fraction:13.2e}")
        print()

    print("Paper reference (Figure 6): GVE-Leiden is fastest everywhere; "
          "NetworKit loses quality on road networks; cuGraph runs out of "
          "device memory on the largest web crawls; only GVE/original/"
          "igraph guarantee zero disconnected communities.")


if __name__ == "__main__":
    main()
