#!/usr/bin/env python
"""Request tracing across a fleet, end to end, in ~70 lines.

Attaches a :class:`~repro.observability.reqtrace.RequestTracer` to a
three-shard fleet, serves a few requests (including a failover after a
kill), and walks what the tracer captured: deterministic trace ids
minted from ``(seed, sequence)``, the causal span chain of one request
(admission → queue wait → serve → reply), the tail-sampling keep
reasons, and the Chrome-trace view with one lane per shard plus flow
arrows stitching the cross-shard hops.

Run with:  python examples/reqtrace_smoke.py
"""

from repro import LeidenConfig
from repro.datasets import stochastic_block_model
from repro.fleet import FleetConfig, PartitionFleet
from repro.observability import RequestTracer, validate_reqtrace
from repro.observability.profiler import validate_chrome_trace
from repro.service import ServiceConfig


def main() -> None:
    tracer = RequestTracer(seed=7)
    fleet = PartitionFleet(
        FleetConfig(num_shards=3, replicas=2, virtual_nodes=32,
                    service=ServiceConfig(leiden=LeidenConfig(seed=7))),
        reqtrace=tracer)

    keys = []
    for i in range(3):
        graph, _ = stochastic_block_model(
            [50] * (3 + i), intra_degree=10, mixing=0.2, seed=20 + i)
        keys.append(fleet.detect(graph).response["key"])
    for key in keys:
        fleet.query(key, "community_of", vertex=0)

    # Kill the primary of the first key: the next query fails over to
    # the replica, is served DEGRADED, and its trace is always kept.
    victim = fleet.ring.primary(keys[0])
    fleet.kill(victim)
    fleet.query(keys[0], "membership")

    traces = tracer.kept_traces()
    print(f"{len(traces)} requests traced, "
          f"{sum(len(t.spans) for t in traces)} spans")

    first = traces[0]
    print(f"\ntrace {first.trace_id} ({first.kind}):")
    for s in first.spans:
        print(f"  {s.lane:>8}  {s.name:<14} "
              f"[{s.start_units:>6.0f}, {s.end_units:>6.0f}]")

    failover = [t for t in traces if t.failover][0]
    print(f"\nfailover trace {failover.trace_id}: "
          f"fleet_state={failover.fleet_state} "
          f"keep_reasons={failover.keep_reasons}")
    print(f"lanes touched: {failover.lanes()}")

    doc = tracer.to_json_dict(experiment="reqtrace_smoke")
    summary = validate_reqtrace(doc)
    print(f"\nreqtrace document validates: {summary}")

    chrome = tracer.to_chrome_trace(experiment="reqtrace_smoke")
    csum = validate_chrome_trace(chrome)
    print(f"chrome view: {csum['lanes']} lanes, {csum['flows']} flow "
          f"chains, {csum['events']} events")

    again = RequestTracer(seed=7)
    print("trace ids replay deterministically: "
          f"{again.begin('query', 'k', 0.0).trace_id == first.trace_id}")


if __name__ == "__main__":
    main()
