#!/usr/bin/env python
"""Serving community memberships while the graph keeps changing.

Boots an in-process :class:`~repro.service.server.PartitionServer`,
registers a social-like graph, answers membership queries, then streams
a burst of edge updates through the admission queue: the queries issued
between accepting the burst and flushing it are answered *stale* from
the last good partition (never by recomputing on the query path), the
whole burst is coalesced into one incremental refresh, and the drain
reconciles so the served membership matches a from-scratch run.

Run with:  python examples/partition_server.py
"""

import numpy as np

from repro import LeidenConfig, leiden
from repro.datasets import stochastic_block_model
from repro.dynamic.batch import apply_batch, random_batch
from repro.service import PartitionServer, ServiceConfig


def main() -> None:
    graph, _ = stochastic_block_model([100] * 6, intra_degree=12,
                                      mixing=0.2, seed=7)
    server = PartitionServer(ServiceConfig(leiden=LeidenConfig(seed=7)))

    # DETECT registers the graph under its content-hash key.
    ticket = server.detect(graph)
    key = ticket.response["key"]
    print(f"registered partition {key[:20]}… "
          f"({ticket.response['num_communities']} communities)")

    # Queries are answered from the per-partition index: O(1) for
    # community_of, O(|C|) for the member list.
    t = server.query(key, "community_of", vertex=5)
    community = t.response["value"]
    members = server.query(key, "members", community=community)
    print(f"vertex 5 -> community {community} "
          f"({members.response['value'].shape[0]} members, "
          f"state={t.response['state']})")

    # A burst of updates: accepted instantly, folded in lazily.
    batches = [random_batch(graph, num_insertions=40, num_deletions=40,
                            seed=100 + i) for i in range(4)]
    for batch in batches:
        server.update(key, batch)
    while server.step() is not None:
        pass
    stale = server.query(key, "community_of", vertex=5)
    print(f"during refresh window: served state={stale.response['state']} "
          "(no recompute on the query path)")

    # Drain flushes the coalesced burst and reconciles.
    server.drain()
    fresh = server.query(key, "membership")
    final = graph
    for batch in batches:
        final = apply_batch(final, batch)
    scratch = leiden(final, server.config.leiden)
    same = np.array_equal(fresh.response["value"], scratch.membership)
    stats = server.stats()
    c = stats["counters"]
    print(f"\n{c['updates_accepted']} updates -> "
          f"{c['update_flushes']} flush(es), "
          f"{c['incremental_refreshes']} incremental + "
          f"{c['full_recomputes']} full solve(s), "
          f"{c['reconciles']} reconcile(s)")
    print(f"served == from-scratch: {same}")


if __name__ == "__main__":
    main()
