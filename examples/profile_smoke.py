#!/usr/bin/env python
"""Profile a smoke run: thread timeline, Chrome export, attribution.

Runs GVE-Leiden on the bundled ``asia_osm`` smoke graph with both the
tracer and the thread-timeline profiler attached, then:

1. prints the deterministic attribution report (critical path,
   barrier-wait share, load imbalance, convergence monitor);
2. writes ``profile_smoke_trace.json`` to a temporary directory — a
   Chrome trace-event file with one lane per simulated thread, viewable
   in chrome://tracing or https://ui.perfetto.dev;
3. shows how the same recording replays at other thread counts.

Run with:  PYTHONPATH=src python examples/profile_smoke.py
"""

import tempfile
from pathlib import Path

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.observability.profile_report import format_profile_report
from repro.observability.profiler import (
    Profiler,
    chrome_trace_json,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.observability.tracer import Tracer
from repro.parallel.runtime import Runtime


def main() -> None:
    graph = load_graph("asia_osm")
    tracer = Tracer()
    profiler = Profiler(num_threads=8)
    rt = Runtime(num_threads=1, seed=42, tracer=tracer, profiler=profiler)
    result = leiden(graph, LeidenConfig(seed=42), runtime=rt)
    print(f"asia_osm: {result.num_communities} communities in "
          f"{result.num_passes} passes\n")

    # 1. The attribution report at the canonical 8 threads.
    report = format_profile_report(
        profiler.timeline(), trace_doc=tracer.to_dict(), top=5,
        title="asia_osm")
    print(report)

    # 2. Chrome trace export (validated, byte-deterministic at a seed).
    doc = to_chrome_trace(profiler.timeline(), experiment="asia_osm",
                          seed=42)
    stats = validate_chrome_trace(doc)
    out = Path(tempfile.mkdtemp()) / "profile_smoke_trace.json"
    out.write_text(chrome_trace_json(doc, indent=1) + "\n")
    print(f"\nwrote {out}: {stats['events']} events across "
          f"{stats['named_lanes']} lanes — open it in ui.perfetto.dev")

    # 3. One recording, any thread count: the event log replays through
    # the cost model, so scaling questions need no re-run.
    print("\nmodelled total seconds by thread count:")
    for threads in (1, 2, 4, 8, 16, 32):
        tl = profiler.timeline(threads)
        print(f"  T={threads:<3d} {tl.total_seconds:.6f}s")


if __name__ == "__main__":
    main()
