#!/usr/bin/env python
"""Incremental community detection on an evolving graph.

Simulates a stream of edge batches over a social-like network and keeps
the communities up to date with the dynamic-frontier strategy — the
extension the paper anticipates for dynamic graphs — comparing each
update's work against re-running from scratch.

Run with:  python examples/dynamic_updates.py
"""

from repro import LeidenConfig, leiden, modularity
from repro.datasets import stochastic_block_model
from repro.dynamic import dynamic_leiden
from repro.dynamic.batch import random_batch


def main() -> None:
    graph, _ = stochastic_block_model([120] * 8, intra_degree=12,
                                      mixing=0.25, seed=11)
    cfg = LeidenConfig(seed=11)
    base = leiden(graph, cfg)
    print(f"initial graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges -> {base.num_communities} communities "
          f"(Q={modularity(graph, base.membership):.4f})\n")

    membership = base.membership
    print(f"{'step':>4} {'batch':>12} {'affected':>9} {'comms':>6} "
          f"{'Q':>8} {'work vs scratch':>16}")
    for step in range(1, 6):
        batch = random_batch(graph, num_insertions=60, num_deletions=60,
                             seed=100 + step)
        dyn = dynamic_leiden(graph, membership, batch, cfg,
                             approach="frontier")
        scratch = leiden(dyn.graph, cfg)
        ratio = dyn.result.ledger.total_work / scratch.ledger.total_work
        q = modularity(dyn.graph, dyn.membership)
        print(f"{step:4d} {'+60/-60':>12} {dyn.affected_fraction:9.3f} "
              f"{dyn.num_communities:6d} {q:8.4f} {ratio:15.2%}")
        graph, membership = dyn.graph, dyn.membership

    print("\nThe dynamic-frontier update reconsiders only the endpoints of "
          "changed edges;\nthe pruning flags grow the frontier on demand, "
          "so each update costs a fraction\nof a from-scratch run at "
          "matching quality.")


if __name__ == "__main__":
    main()
