#!/usr/bin/env python
"""File-based pipeline: MatrixMarket in, community assignments out.

Mirrors how the paper's artifact consumes SuiteSparse graphs: write a
graph to ``.mtx``, read it back (symmetrizing, unit default weights —
Section 5.1.3's normalization), detect communities, and save the
membership vector, then verify the round trip.

Run with:  python examples/file_io_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import leiden, read_mtx, write_mtx
from repro.datasets import stochastic_block_model


def main() -> None:
    graph, _ = stochastic_block_model([150, 200, 250], intra_degree=12,
                                      mixing=0.2, seed=5)

    with tempfile.TemporaryDirectory() as tmp:
        mtx_path = Path(tmp) / "network.mtx"
        members_path = Path(tmp) / "membership.txt"

        # 1. Export (as SuiteSparse would distribute it).
        write_mtx(graph, mtx_path)
        print(f"wrote {mtx_path} "
              f"({mtx_path.stat().st_size / 1024:.0f} KiB)")

        # 2. Load + normalize, as the paper does for every dataset.
        loaded = read_mtx(mtx_path, symmetrize=True)
        assert loaded.num_vertices == graph.num_vertices

        # 3. Detect communities.
        result = leiden(loaded)
        print(f"found {result.num_communities} communities "
              f"in {result.num_passes} passes "
              f"({result.wall_seconds * 1000:.0f} ms)")

        # 4. Persist the membership vector (one community id per line,
        #    the format the paper's disconnected-communities checker
        #    consumes).
        members_path.write_text(
            "\n".join(str(int(c)) for c in result.membership) + "\n"
        )
        reloaded = np.loadtxt(members_path, dtype=np.int64)
        assert np.array_equal(reloaded, result.membership)
        print(f"membership saved and verified: {members_path.name}, "
              f"{len(reloaded)} rows")


if __name__ == "__main__":
    main()
