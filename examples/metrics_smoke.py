#!/usr/bin/env python
"""Metrics & health smoke: typed instruments, exposition, SLO burn rates.

Demonstrates the metrics subsystem end to end:

1. one GVE-Leiden detection run with a :class:`MetricsRegistry` attached
   to the runtime — every hot layer (parallel runtime, local move,
   refinement, aggregation, kernel dispatch) records typed series;
2. both byte-deterministic exports — the ``repro.metrics/1`` JSON
   snapshot and Prometheus text exposition (validated);
3. a partition-server workload with the stock SLO evaluator attached,
   ending in an ``OK`` health verdict;
4. an injected slowdown (stretched logical query cost) driving the
   query-latency objective from ``OK`` to ``PAGE``.

Run with:  PYTHONPATH=src python examples/metrics_smoke.py
"""

from repro.core.config import LeidenConfig
from repro.observability.health import (
    HealthEvaluator,
    SLObjective,
    default_service_slos,
)
from repro.observability.metrics import MetricsRegistry, validate_prometheus
from repro.observability.regression import collect_leiden_metrics
from repro.service.server import PartitionServer, ServiceConfig
from repro.service.workload import run_workload


def main() -> None:
    # 1. One instrumented detection run.
    from repro.datasets.registry import load_graph

    graph = load_graph("asia_osm")
    registry, tracer, result = collect_leiden_metrics(
        graph, LeidenConfig(seed=42))
    print(f"asia_osm: {result.num_communities} communities in "
          f"{result.num_passes} passes, "
          f"{len(registry)} instrument families\n")

    # 2. Exposition: Prometheus text (validated) and JSON percentiles.
    prom = registry.to_prometheus()
    report = validate_prometheus(prom)
    print(f"prometheus exposition: {report['families']} families, "
          f"{report['samples']} samples, parses cleanly")
    moves = registry.get("leiden_local_moves_total")
    shrink = registry.get("leiden_aggregation_shrink")
    print(f"local moves: {moves.value():.0f}, "
          f"aggregation shrink p50: {shrink.percentile(50.0):.3f}\n")

    # 3. A service workload with metrics + stock SLOs attached.
    service_registry = MetricsRegistry()
    health = HealthEvaluator(default_service_slos())
    server = PartitionServer(metrics=service_registry, health=health)
    run_workload("tiny", seed=0, server=server, verify=False)
    verdict = health.evaluate(server.clock)
    print(f"workload 'tiny': clock={server.clock} units, "
          f"health={verdict['state']}")
    for obj in verdict["objectives"]:
        print(f"  {obj['name']:<20} {obj['state']:<5} "
              f"long burn={obj['long']['burn_rate']:.2f} "
              f"short burn={obj['short']['burn_rate']:.2f}")

    # 4. Injected slowdown: stretch the logical query cost past the
    # latency target and watch the burn rate page.
    slo = SLObjective(name="query_latency", signal="query_latency_units",
                      kind="latency", target=4.0, budget=0.1,
                      long_window=4000, short_window=400,
                      warn_burn=1.0, page_burn=5.0)
    from repro.graph.builder import build_csr_from_edges

    health = HealthEvaluator([slo])
    slow = PartitionServer(
        ServiceConfig(leiden=LeidenConfig(seed=1), query_cost_units=8),
        health=health)
    # Two 4-cliques joined by one bridge edge.
    edges = [(i, j) for base in (0, 4)
             for i in range(base, base + 4)
             for j in range(i + 1, base + 4)] + [(0, 4)]
    demo = build_csr_from_edges(*zip(*edges))
    key = slow.detect(demo).response["key"]
    for _ in range(40):
        slow.query(key, "community_of", vertex=0)
    print(f"\ninjected slowdown (query cost 8 > target 4): "
          f"health={health.state(slow.clock)}")


if __name__ == "__main__":
    main()
