#!/usr/bin/env python
"""Strong-scaling study on a road-network-like graph.

Runs GVE-Leiden once on a road network (degree ~2.1, long chains — the
paper's hardest class for parallel scaling) and uses the work ledger to
model runtimes from 1 to 64 threads on the paper's dual-Xeon machine,
including the per-phase split (Figure 9's methodology).

Run with:  python examples/road_network_scaling.py
"""

from repro import leiden
from repro.bench.instruments import phase_scaling_curves, scaling_curve
from repro.core.result import ALL_PHASES
from repro.datasets import road_network
from repro.parallel import PAPER_MACHINE

THREADS = (1, 2, 4, 8, 16, 32, 64)


def main() -> None:
    graph, _ = road_network(200, 250, seed=3)
    print(f"road network: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges "
          f"(avg degree {graph.num_edges / graph.num_vertices:.1f})")

    result = leiden(graph)
    print(f"communities: {result.num_communities}, "
          f"passes: {result.num_passes}\n")

    # One execution recorded every region's work; modelled runtimes for
    # all thread counts follow without re-running.
    scale = 1000.0  # model a 1000x larger input (paper-sized)
    curve = scaling_curve(result, THREADS, machine=PAPER_MACHINE,
                          work_scale=scale)
    phases = phase_scaling_curves(result, THREADS, machine=PAPER_MACHINE,
                                  work_scale=scale)

    print(f"{'threads':>8} {'modelled s':>11} {'speedup':>8}  "
          + "  ".join(f"{p:>11}" for p in ALL_PHASES))
    base = curve[1]
    for t in THREADS:
        row = f"{t:8d} {curve[t]:11.3f} {base / curve[t]:8.2f}x "
        row += " ".join(f"{phases[p][t]:11.4f}" for p in ALL_PHASES)
        print(row)

    print("\nPaper reference (Figure 9): ~11.4x at 32 threads, ~16x at 64 "
          "(NUMA effects), ~1.6x per thread doubling.")


if __name__ == "__main__":
    main()
