#!/usr/bin/env python
"""Inspecting a partition: structure summaries and seed stability.

Detecting communities is step one; deciding whether to *trust* them is
step two.  This example runs GVE-Leiden on a scale-free
(Barabási-Albert) graph and a planted-partition graph, then uses the
analysis utilities to compare: per-community density and conductance,
partition coverage, and how stable the result is across random seeds.

Run with:  python examples/community_analysis.py
"""

from repro import LeidenConfig, leiden
from repro.datasets import barabasi_albert_graph, planted_partition
from repro.metrics import seed_stability, summarize_partition

#: Randomized refinement makes the seed matter (the greedy default is
#: nearly deterministic), which is what a stability probe should vary.
STABILITY_CONFIG = LeidenConfig(refinement="random")


def analyze(name, graph):
    result = leiden(graph)
    summary = summarize_partition(graph, result.membership)
    stability = seed_stability(graph, STABILITY_CONFIG, seeds=(1, 2, 3, 4))

    print(f"=== {name}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges")
    print(f"communities: {summary.num_communities}   "
          f"Q = {summary.modularity:.4f}   "
          f"coverage = {summary.coverage:.3f}")
    pct = summary.size_percentiles()
    print("sizes (min/median/max): "
          f"{pct[0]:.0f} / {pct[50]:.0f} / {pct[100]:.0f}")
    print("weakest communities (highest conductance):")
    for c in summary.worst_conductance(3):
        print(f"  id {c.community_id}: size {c.size}, "
              f"density {c.internal_density:.3f}, "
              f"conductance {c.conductance:.3f}")
    print(f"seed stability (mean pairwise NMI over 4 seeds): "
          f"{stability.mean_similarity:.3f}\n")
    return stability


def main() -> None:
    planted, _ = planted_partition(8, 60, intra_degree=12, inter_degree=2,
                                   seed=5)
    s_planted = analyze("planted partition", planted)

    scale_free = barabasi_albert_graph(600, 3, seed=5)
    s_ba = analyze("Barabási-Albert (no planted structure)", scale_free)

    print("Interpretation: the planted graph's partition is near-perfectly "
          "reproducible\nacross seeds; the scale-free graph has no ground "
          "truth, so its (weaker)\ncommunities vary more "
          f"({s_planted.mean_similarity:.3f} vs "
          f"{s_ba.mean_similarity:.3f}).")


if __name__ == "__main__":
    main()
