#!/usr/bin/env python
"""Community detection on a web-crawl-like graph, comparing variants.

Generates an LFR-style graph with power-law degrees and planted
communities (the structure of the paper's LAW web crawls), then compares
the paper's algorithm variants — greedy vs randomized refinement, and the
default/medium/heavy optimization ladder — on recovery quality and work.

Run with:  python examples/web_crawl_communities.py
"""

from repro import LeidenConfig, leiden, modularity, normalized_mutual_information
from repro.datasets import lfr_like_graph


def main() -> None:
    graph, planted = lfr_like_graph(
        4000,
        avg_degree=18.0,
        mixing=0.15,
        min_community=60,
        seed=7,
    )
    print(f"LFR-like web graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges, "
          f"{len(set(planted.tolist()))} planted communities\n")

    header = (f"{'variant':<18} {'Q':>8} {'NMI vs planted':>15} "
              f"{'passes':>7} {'work units':>12}")
    print(header)
    print("-" * len(header))

    for refinement in ("greedy", "random"):
        for variant in ("default", "medium", "heavy"):
            cfg = LeidenConfig.variant(variant, refinement=refinement, seed=1)
            result = leiden(graph, cfg)
            q = modularity(graph, result.membership)
            nmi = normalized_mutual_information(result.membership, planted)
            print(f"{refinement}-{variant:<11} {q:8.4f} {nmi:15.3f} "
                  f"{result.num_passes:7d} "
                  f"{result.ledger.total_work:12.3g}")

    print("\nThe paper's finding (Figures 1-2): greedy-default does the "
          "least work at equal-or-better quality; medium/heavy disable "
          "threshold scaling / aggregation tolerance and pay for it.")


if __name__ == "__main__":
    main()
