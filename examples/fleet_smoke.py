#!/usr/bin/env python
"""A sharded partition-server fleet with failover, in ~60 lines.

Boots a three-shard :class:`~repro.fleet.fleet.PartitionFleet` with
replication factor 2, registers a few graphs (each routed to its
consistent-hash placement and replicated), fans a query out across
every shard with a deterministic merge, then kills one replica: the
requests that would have hit the dead primary fail over to the
surviving replica and are served DEGRADED — none fail.  Finally a
fourth shard is spawned and the explicit move plan shows consistent
hashing relocating only a fraction of the keys.

Run with:  python examples/fleet_smoke.py
"""

from repro import LeidenConfig
from repro.datasets import stochastic_block_model
from repro.fleet import FleetConfig, PartitionFleet
from repro.service import ServiceConfig


def main() -> None:
    fleet = PartitionFleet(FleetConfig(
        num_shards=3, replicas=2, virtual_nodes=32,
        service=ServiceConfig(leiden=LeidenConfig(seed=7))))

    keys = []
    for i in range(4):
        graph, _ = stochastic_block_model(
            [60] * (3 + i), intra_degree=10, mixing=0.2, seed=10 + i)
        ticket = fleet.detect(graph)
        keys.append(ticket.response["key"])
        print(f"graph {i}: primary={ticket.shard} "
              f"placement={fleet.ring.placement(keys[-1])}")

    # Cross-shard fan-out: one QUERY per registered key, merged into a
    # single document sorted by key — byte-identical at any shard count.
    doc = fleet.fanout_query("community_of", vertex=0)
    digest = fleet.router.fanout_invariant_digest(doc)
    print(f"\nfan-out over {len(doc['answers'])} keys, "
          f"invariant digest {digest[:16]}…")

    # Kill the primary of the first key; queries fail over to the
    # replica and come back DEGRADED, never failed.
    victim = fleet.ring.primary(keys[0])
    fleet.kill(victim)
    t = fleet.query(keys[0], "membership")
    print(f"\nkilled {victim}: query served by {t.shard} "
          f"(state={t.response['state']})")
    fleet.revive(victim)

    # Grow the fleet: the move plan relocates only keys whose owner set
    # changed — consistent hashing, not a full rehash.
    sid, plan = fleet.spawn()
    print(f"spawned {sid}: moved {plan.num_moved}/{plan.total_keys} keys "
          f"({plan.num_primary_moved} primaries)")

    c = fleet.router.counters
    print(f"\nrouted={c['routed']} failovers={c['failovers']} "
          f"degraded={c['degraded_serves']}")
    print(f"zero failed requests: {c['failed_requests'] == 0}")


if __name__ == "__main__":
    main()
