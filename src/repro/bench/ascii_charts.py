"""Text-mode chart rendering for the figure reports.

The paper's figures are bar charts (log-scale runtimes, modularity bars)
and line plots (scaling curves).  With no plotting stack available, these
helpers render the same shapes as unicode bar/line charts so the harness
output is visually comparable to the paper at a glance.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

__all__ = ["bar_chart", "grouped_bar_chart", "line_chart"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A horizontal bar filling ``fraction`` of ``width`` characters."""
    fraction = min(max(fraction, 0.0), 1.0)
    cells = fraction * width
    full = int(cells)
    rem = cells - full
    bar = "█" * full
    if full < width and rem > 0:
        bar += _BLOCKS[int(rem * 8)]
    return bar


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    log: bool = False,
    fmt: str = "{:.4g}",
    title: str | None = None,
) -> str:
    """Horizontal bar chart; ``log=True`` scales bars logarithmically."""
    items = [(k, v) for k, v in values.items() if v is not None]
    if not items:
        return title or ""
    label_w = max(len(str(k)) for k, _ in items)
    vals = [v for _, v in items]
    if log:
        positive = [v for v in vals if v > 0]
        lo = math.log10(min(positive)) if positive else 0.0
        hi = math.log10(max(positive)) if positive else 1.0
        span = (hi - lo) or 1.0

        def frac(v):
            return ((math.log10(v) - lo) / span * 0.9 + 0.1) if v > 0 else 0.0
    else:
        top = max(vals) or 1.0

        def frac(v):
            return v / top

    lines = [title] if title else []
    for k, v in items:
        lines.append(
            f"{str(k):<{label_w}} |{_bar(frac(v), width):<{width}}| "
            + fmt.format(v)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float | None]],
    *,
    width: int = 40,
    log: bool = False,
    fmt: str = "{:.4g}",
    missing: str = "(missing)",
    title: str | None = None,
) -> str:
    """Bars grouped by outer key (one sub-bar per inner key).

    ``None`` values render as ``missing`` — the paper's absent bars
    (cuGraph's OOM entries).
    """
    all_vals = [
        v for series in groups.values() for v in series.values()
        if v is not None and (not log or v > 0)
    ]
    if not all_vals:
        return title or ""
    if log:
        lo = math.log10(min(all_vals))
        span = (math.log10(max(all_vals)) - lo) or 1.0

        def frac(v):
            return (math.log10(v) - lo) / span * 0.9 + 0.1 if v > 0 else 0.0
    else:
        top = max(all_vals)

        def frac(v):
            return v / top

    label_w = max(
        (len(str(k)) for series in groups.values() for k in series),
        default=0,
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for k, v in series.items():
            if v is None:
                lines.append(f"  {str(k):<{label_w}} |{missing}")
            else:
                lines.append(
                    f"  {str(k):<{label_w}} |{_bar(frac(v), width):<{width}}| "
                    + fmt.format(v)
                )
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Dict[object, float]],
    *,
    width: int = 56,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Multiple series as an ASCII scatter/line plot.

    X positions come from each series' key order (assumed shared);
    Y is linear from 0 to the max value.  Each series plots with its own
    glyph; a legend follows.
    """
    glyphs = "ox+*#@%&"
    names = list(series)
    if not names:
        return title or ""
    xs = list(series[names[0]].keys())
    top = max((v for s in series.values() for v in s.values()), default=1.0)
    top = top or 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        pts = series[name]
        for xi, x in enumerate(xs):
            if x not in pts:
                continue
            col = int(xi / max(len(xs) - 1, 1) * (width - 1))
            row = height - 1 - int(pts[x] / top * (height - 1))
            grid[row][col] = glyphs[si % len(glyphs)]
    lines = [title] if title else []
    lines.append(f"{top:.3g} ┐")
    for row in grid:
        lines.append("      │" + "".join(row))
    lines.append("    0 └" + "─" * width)
    lines.append("       " + "  ".join(str(x) for x in xs))
    lines.append("legend: " + ", ".join(
        f"{glyphs[i % len(glyphs)]}={n}" for i, n in enumerate(names)
    ))
    return "\n".join(lines)
