"""Wall-clock timing helpers (the paper averages five runs per point)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


def time_call(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` once; return ``(result, seconds)``."""
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


@dataclass
class Measurement:
    """Aggregated repeated timing."""

    mean_seconds: float
    min_seconds: float
    max_seconds: float
    runs: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean_seconds:.4f}s (min {self.min_seconds:.4f}, n={self.runs})"


def repeat_measure(fn: Callable[[], object], *, repeats: int = 3) -> Measurement:
    """Run ``fn`` ``repeats`` times and aggregate wall-clock times."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    times = []
    for _ in range(repeats):
        _, secs = time_call(fn)
        times.append(secs)
    return Measurement(
        mean_seconds=sum(times) / len(times),
        min_seconds=min(times),
        max_seconds=max(times),
        runs=repeats,
    )
