"""Instrumentation views over :class:`~repro.core.result.LeidenResult`.

Figures 7 and 9 need the modelled runtime *decomposed*: by phase
(local-moving / refinement / aggregation / other), by pass, and by thread
count.  The work ledger records regions tagged with both, so one
execution yields every decomposition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.core.result import ALL_PHASES, LeidenResult
from repro.parallel.costmodel import PAPER_MACHINE, MachineModel

__all__ = [
    "phase_split",
    "pass_split",
    "scaling_curve",
    "phase_scaling_curves",
]


def phase_split(
    result: LeidenResult,
    *,
    machine: MachineModel = PAPER_MACHINE,
    num_threads: int = 64,
    work_scale: float = 1.0,
) -> Dict[str, float]:
    """Fraction of modelled runtime per phase (Figure 7(a))."""
    sim = result.ledger.simulate(machine, num_threads, work_scale=work_scale)
    total = sim.seconds or 1.0
    return {p: sim.phase_seconds.get(p, 0.0) / total for p in ALL_PHASES}


def pass_split(
    result: LeidenResult,
    *,
    machine: MachineModel = PAPER_MACHINE,
    num_threads: int = 64,
    work_scale: float = 1.0,
) -> List[float]:
    """Fraction of modelled runtime per pass (Figure 7(b))."""
    seconds = [
        ps.ledger.simulate(machine, num_threads, work_scale=work_scale).seconds
        for ps in result.passes
    ]
    total = sum(seconds) or 1.0
    return [s / total for s in seconds]


def scaling_curve(
    result: LeidenResult,
    thread_counts: Iterable[int],
    *,
    machine: MachineModel = PAPER_MACHINE,
    work_scale: float = 1.0,
) -> Dict[int, float]:
    """Modelled seconds at each thread count (Figure 9, overall)."""
    return {
        t: result.ledger.simulate(machine, t, work_scale=work_scale).seconds
        for t in thread_counts
    }


def phase_scaling_curves(
    result: LeidenResult,
    thread_counts: Iterable[int],
    *,
    machine: MachineModel = PAPER_MACHINE,
    work_scale: float = 1.0,
) -> Dict[str, Dict[int, float]]:
    """Per-phase modelled seconds at each thread count (Figure 9 split)."""
    curves: Dict[str, Dict[int, float]] = {p: {} for p in ALL_PHASES}
    for t in thread_counts:
        sim = result.ledger.simulate(machine, t, work_scale=work_scale)
        for p in ALL_PHASES:
            curves[p][t] = sim.phase_seconds.get(p, 0.0)
    return curves
