"""Section 5.5: indirect comparison with ParLeiden and KatanaGraph.

Hu et al. report, on com-LiveJournal, speedups over the original Leiden
implementation of 12.3x (ParLeiden-S, single node), 9.9x (ParLeiden-D,
distributed) and 1.32x (KatanaGraph baseline).  The paper measures its
own 219x speedup over original Leiden on the same graph and divides
through: GVE-Leiden ≈ 18x / 22x / 166x faster than ParLeiden-S / -D /
KatanaGraph.  We repeat the same arithmetic with our measured
GVE-vs-original speedup on the com-LiveJournal stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.harness import run_once
from repro.bench.tables import format_table

__all__ = ["IndirectResult", "PUBLISHED_SPEEDUPS", "run", "report", "main"]

#: Speedups over original Leiden reported by Hu et al. on com-LiveJournal.
PUBLISHED_SPEEDUPS: Dict[str, float] = {
    "ParLeiden-S": 12.3,
    "ParLeiden-D": 9.9,
    "KatanaGraph Leiden": 1.32,
}

#: The paper's corresponding estimates (its 219x over original Leiden).
PAPER_ESTIMATES: Dict[str, float] = {
    "ParLeiden-S": 18.0,
    "ParLeiden-D": 22.0,
    "KatanaGraph Leiden": 166.0,
}

PAPER_GVE_VS_ORIGINAL = 219.0


@dataclass
class IndirectResult:
    gve_vs_original: float
    estimates: Dict[str, float]


def run(*, graph: str = "com-LiveJournal", seed: int = 42) -> IndirectResult:
    gve = run_once("gve", graph, seed=seed)
    orig = run_once("original", graph, seed=seed)
    speedup = orig.modeled_seconds / gve.modeled_seconds
    estimates = {
        name: speedup / published
        for name, published in PUBLISHED_SPEEDUPS.items()
    }
    return IndirectResult(gve_vs_original=speedup, estimates=estimates)


def report(result: IndirectResult) -> str:
    rows = [
        [name,
         f"{PUBLISHED_SPEEDUPS[name]:.2f}x",
         f"{result.estimates[name]:.1f}x",
         f"{PAPER_ESTIMATES[name]:.0f}x"]
        for name in PUBLISHED_SPEEDUPS
    ]
    header = (
        f"Section 5.5: indirect comparison on com-LiveJournal\n"
        f"GVE vs original Leiden: measured {result.gve_vs_original:.0f}x "
        f"(paper: {PAPER_GVE_VS_ORIGINAL:.0f}x)"
    )
    return header + "\n" + format_table(
        ["Implementation", "published speedup vs original",
         "our estimated GVE speedup", "paper estimate"],
        rows,
    )


def main() -> IndirectResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
