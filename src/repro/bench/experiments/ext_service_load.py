"""Extension experiment: the partition server under a seeded workload.

Drives :func:`repro.service.workload.run_workload` twice over the same
``(profile, seed)`` — once with UPDATE micro-batching (coalescing) on,
once off — and reports what the serving layer buys:

- **refresh solves** (incremental + full + reconcile): coalescing folds
  a whole update burst into one solve, so the A/B delta is the
  micro-batching win;
- **logical cost** (solver work units on the deterministic clock) and
  the per-kind latency percentiles derived from it;
- **serving behaviour**: cache hit rate, fraction of queries answered
  (fresh or stale) without touching the compute path, stale-serve
  fraction during refresh windows;
- **correctness**: whether the membership served after the run is
  identical to a from-scratch solve on the final graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.tables import format_table
from repro.service.server import ServiceConfig
from repro.service.workload import WorkloadResult, run_workload

__all__ = ["ServiceLoadResult", "run", "report", "main"]


def _refresh_solves(stats: dict) -> int:
    c = stats["counters"]
    return (c["incremental_refreshes"] + c["full_recomputes"]
            + c["reconciles"])


@dataclass
class ServiceLoadResult:
    profile: str
    seed: int
    #: "coalesced" / "uncoalesced" -> workload result.
    outcomes: Dict[str, WorkloadResult]


def run(profile: str = "quick", *, seed: int = 0) -> ServiceLoadResult:
    outcomes = {
        label: run_workload(
            profile, seed=seed,
            service_config=ServiceConfig(coalesce_updates=coalesce),
        )
        for label, coalesce in (("coalesced", True), ("uncoalesced", False))
    }
    return ServiceLoadResult(profile=profile, seed=seed, outcomes=outcomes)


def report(result: ServiceLoadResult) -> str:
    rows = []
    for label, wr in result.outcomes.items():
        stats = wr.stats
        c = stats["counters"]
        lat = stats["latency_units"]["query"]
        d = stats["derived"]
        rows.append([
            label,
            str(c["updates_accepted"]),
            str(c["update_flushes"]),
            str(_refresh_solves(stats)),
            f"{stats['clock_units']:,}",
            f"{lat['p50']}/{lat['p99']}",
            f"{d['cache_hit_rate']:.3f}",
            f"{d['stale_serve_fraction']:.3f}",
            "yes" if all(wr.membership_matches_scratch.values()) else "NO",
        ])
    coalesced = result.outcomes["coalesced"]
    plain = result.outcomes["uncoalesced"]
    saved = _refresh_solves(plain.stats) - _refresh_solves(coalesced.stats)
    return format_table(
        ["mode", "updates", "flushes", "refresh solves", "clock units",
         "query p50/p99", "hit rate", "stale frac", "== scratch"],
        rows,
        title=f"Extension: service load ({result.profile} workload, "
              f"seed {result.seed}) — micro-batching saves {saved} "
              "refresh solves",
    )


def main() -> ServiceLoadResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
