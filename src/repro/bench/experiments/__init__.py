"""Experiment drivers, one per table/figure of the paper's Section 5.

Every module exposes ``run(...)`` returning a structured result and
``report(result)`` returning the printable table(s); ``main()`` does
both.  ``python -m repro.bench`` runs them all in paper order.
"""

from repro.bench.experiments import (
    ext_dynamic_update,
    ext_fleet_load,
    ext_fleet_reqtrace,
    ext_louvain_vs_leiden,
    ext_reorder_locality,
    ext_service_load,
    fig1_fig2_refinement,
    fig3_fig4_supervertex,
    fig6_comparison,
    fig7_splits,
    fig8_rate,
    fig9_scaling,
    sec55_indirect,
    table1_speedup,
    table2_datasets,
)

#: Paper order (extensions last), used by ``python -m repro.bench``.
ALL_EXPERIMENTS = [
    ("Table 1", table1_speedup),
    ("Table 2", table2_datasets),
    ("Figures 1-2", fig1_fig2_refinement),
    ("Figures 3-4", fig3_fig4_supervertex),
    ("Figure 6", fig6_comparison),
    ("Figure 7", fig7_splits),
    ("Figure 8", fig8_rate),
    ("Figure 9", fig9_scaling),
    ("Section 5.5", sec55_indirect),
    ("Extension: Louvain vs Leiden", ext_louvain_vs_leiden),
    ("Extension: dynamic updates", ext_dynamic_update),
    ("Extension: service load", ext_service_load),
    ("Extension: reorder locality", ext_reorder_locality),
    ("Extension: fleet load", ext_fleet_load),
    ("Extension: fleet reqtrace", ext_fleet_reqtrace),
]

__all__ = [
    "ALL_EXPERIMENTS",
    "ext_dynamic_update",
    "ext_fleet_load",
    "ext_fleet_reqtrace",
    "ext_louvain_vs_leiden",
    "ext_reorder_locality",
    "ext_service_load",
    "fig1_fig2_refinement",
    "fig3_fig4_supervertex",
    "fig6_comparison",
    "fig7_splits",
    "fig8_rate",
    "fig9_scaling",
    "sec55_indirect",
    "table1_speedup",
    "table2_datasets",
]
