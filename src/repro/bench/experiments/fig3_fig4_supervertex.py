"""Figures 3-4: move-based vs refine-based super-vertex community labels.

After aggregation, the communities of the new super-vertices can be
seeded from the local-moving phase ("move-based", Traag et al.'s
recommendation) or from the refinement phase ("refine-based").  The paper
finds both variants roughly equal in runtime and modularity (Figures 3
and 4) and keeps move-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.baselines.registry import IMPLEMENTATIONS
from repro.bench.harness import paper_scale, run_leiden_config
from repro.bench.tables import format_table, geometric_mean
from repro.core.config import LeidenConfig
from repro.datasets.registry import load_graph, registry_names
from repro.metrics.modularity import modularity

__all__ = ["Fig34Result", "run", "report", "main"]

LABELS = ("move", "refine")


@dataclass
class Fig34Result:
    #: [label][graph] modelled seconds.
    seconds: Dict[str, Dict[str, float]]
    #: [label][graph] modularity.
    quality: Dict[str, Dict[str, float]]

    def mean_relative_runtime(self, label: str) -> float:
        base = self.seconds["move"]
        ratios = [
            self.seconds[label][g] / base[g] for g in base if base[g] > 0
        ]
        return geometric_mean(ratios)

    def mean_quality(self, label: str) -> float:
        vals = list(self.quality[label].values())
        return sum(vals) / len(vals) if vals else float("nan")


def run(graphs: Sequence[str] | None = None, *, seed: int = 42) -> Fig34Result:
    gs = list(graphs or registry_names())
    gve = IMPLEMENTATIONS["gve"]
    seconds: Dict[str, Dict[str, float]] = {}
    quality: Dict[str, Dict[str, float]] = {}
    for label in LABELS:
        cfg = LeidenConfig(vertex_label=label)
        seconds[label] = {}
        quality[label] = {}
        for g in gs:
            result, _wall = run_leiden_config(g, cfg, seed=seed)
            seconds[label][g] = gve.modeled_seconds(result, scale=paper_scale(g))
            quality[label][g] = modularity(load_graph(g), result.membership)
    return Fig34Result(seconds=seconds, quality=quality)


def report(result: Fig34Result) -> str:
    rows = [
        [label,
         round(result.mean_relative_runtime(label), 3),
         round(result.mean_quality(label), 4)]
        for label in LABELS
    ]
    return format_table(
        ["Super-vertex labels", "relative runtime (Fig 3)",
         "mean modularity (Fig 4)"],
        rows,
        title="Figures 3-4: move-based vs refine-based super-vertex "
              "communities (paper: roughly equal)",
    )


def main() -> Fig34Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
