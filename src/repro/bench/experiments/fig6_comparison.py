"""Figure 6: runtime, speedup, modularity and disconnected communities.

The paper's headline comparison: all five implementations on all 13
graphs.  Four sub-reports match the four panels:

- (a) modelled runtime per graph (log scale in the paper);
- (b) GVE-Leiden's speedup over each other implementation;
- (c) modularity of the communities each implementation finds;
- (d) fraction of internally-disconnected communities.

cuGraph's out-of-memory failures on the five largest web crawls are
reported as missing entries, exactly as the paper's missing bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.registry import implementation_names
from repro.bench.harness import RunRecord, run_matrix
from repro.bench.tables import format_table, ratio_summary
from repro.datasets.registry import registry_names

__all__ = ["Fig6Result", "run", "report", "main"]


@dataclass
class Fig6Result:
    records: Dict[str, Dict[str, RunRecord]]  # [graph][impl]
    implementations: List[str]
    graphs: List[str]

    def speedup_vs(self, impl: str) -> Dict[str, float]:
        """Per-graph speedup of GVE over ``impl`` (modelled time)."""
        out = {}
        for g in self.graphs:
            gve = self.records[g]["gve"]
            other = self.records[g].get(impl)
            if other is None or not other.ok or not gve.ok:
                continue
            out[g] = other.modeled_seconds / gve.modeled_seconds
        return out

    def mean_speedup(self, impl: str) -> float:
        per_graph = self.speedup_vs(impl)
        if not per_graph:
            return float("nan")
        return ratio_summary(
            {g: v for g, v in per_graph.items()},
            {g: 1.0 for g in per_graph},
        )


def run(
    graphs: Sequence[str] | None = None,
    implementations: Sequence[str] | None = None,
    *,
    seed: int = 42,
) -> Fig6Result:
    gs = list(graphs or registry_names())
    impls = list(implementations or implementation_names())
    records = run_matrix(gs, impls, seed=seed)
    return Fig6Result(records=records, implementations=impls, graphs=gs)


def report(result: Fig6Result) -> str:
    parts = []
    recs = result.records

    def cell(g, i, attr, scale=1.0):
        r = recs[g].get(i)
        if r is None:
            return None
        if not r.ok:
            return "OOM"
        v = getattr(r, attr)
        return None if v is None else v * scale

    parts.append(format_table(
        ["Graph"] + result.implementations,
        [
            [g] + [cell(g, i, "modeled_seconds") for i in result.implementations]
            for g in result.graphs
        ],
        title="Figure 6(a): modelled runtime at paper scale [s]",
    ))

    others = [i for i in result.implementations if i != "gve"]
    parts.append(format_table(
        ["Graph"] + [f"vs {i}" for i in others],
        [
            [g] + [result.speedup_vs(i).get(g) for i in others]
            for g in result.graphs
        ] + [
            ["MEAN"] + [result.mean_speedup(i) for i in others]
        ],
        title="Figure 6(b): speedup of GVE-Leiden (paper means: original "
              "436x, igraph 104x, networkit 8.2x, cugraph 3.0x)",
    ))

    parts.append(format_table(
        ["Graph"] + result.implementations,
        [
            [g] + [cell(g, i, "modularity") for i in result.implementations]
            for g in result.graphs
        ],
        title="Figure 6(c): modularity",
    ))

    parts.append(format_table(
        ["Graph"] + result.implementations,
        [
            [g] + [cell(g, i, "disconnected_fraction")
                   for i in result.implementations]
            for g in result.graphs
        ],
        title="Figure 6(d): fraction of disconnected communities "
              "(paper: GVE/original/igraph zero; networkit ~1.5e-2; "
              "cugraph ~6.6e-5)",
    ))

    # The paper's 6(a) is a log-scale bar chart; render the same shape.
    from repro.bench.ascii_charts import grouped_bar_chart

    groups = {}
    for g in result.graphs:
        series = {}
        for i in result.implementations:
            r = recs[g].get(i)
            series[i] = (r.modeled_seconds if r is not None and r.ok
                         else None)
        groups[g] = series
    parts.append(grouped_bar_chart(
        groups, log=True, missing="(out of memory)",
        title="Figure 6(a) as log-scale bars [modelled s]:",
    ))
    return "\n\n".join(parts)


def main() -> Fig6Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
