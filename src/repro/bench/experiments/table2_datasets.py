"""Table 2: dataset statistics and |Γ| found by GVE-Leiden.

The paper lists, per graph, |V|, |E| (after adding reverse edges), the
average degree and the number of communities GVE-Leiden finds.  We print
the same columns for the scaled-down stand-ins next to the paper's
original values, plus the run's peak logical bytes from the memory
ledger (worker-count-invariant, so comparable across graphs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.tables import format_table
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import graph_spec, load_graph, registry_names
from repro.observability.memtrack import MemoryLedger, record_csr
from repro.parallel.runtime import Runtime

__all__ = ["DatasetRow", "run", "report", "main"]


@dataclass
class DatasetRow:
    name: str
    family: str
    num_vertices: int
    num_edges: int
    avg_degree: float
    num_communities: int
    #: Content hash of the CSR arrays (:meth:`CSRGraph.fingerprint`) —
    #: the identity the partition-serving store keys on; printing it per
    #: graph makes a drifting stand-in generator visible at a glance.
    fingerprint: str
    #: Memory-ledger peak watermark of the solve (logical bytes).
    peak_logical_bytes: int
    paper_vertices: float
    paper_edges: float
    paper_avg_degree: float
    paper_communities: float


def run(graphs: Sequence[str] | None = None, *, seed: int = 42) -> List[DatasetRow]:
    """Compute the Table 2 rows for the registry stand-ins."""
    rows = []
    for name in graphs or registry_names():
        g = load_graph(name)
        spec = graph_spec(name)
        # Same solve as the "gve" harness implementation, but through a
        # ledger-equipped runtime so the row carries peak bytes.
        memory = MemoryLedger()
        record_csr(memory, g)  # input graph: loads are memoized
        with Runtime(num_threads=1, seed=seed, memory=memory) as rt:
            result = leiden(g, LeidenConfig(seed=seed), runtime=rt)
        rows.append(
            DatasetRow(
                name=name,
                family=spec.family,
                num_vertices=g.num_vertices,
                num_edges=g.num_edges,
                avg_degree=g.num_edges / max(g.num_vertices, 1),
                num_communities=result.num_communities,
                fingerprint=g.fingerprint(),
                peak_logical_bytes=int(memory.peak_bytes()),
                paper_vertices=spec.paper_vertices,
                paper_edges=spec.paper_edges,
                paper_avg_degree=spec.paper_avg_degree,
                paper_communities=spec.paper_communities,
            )
        )
    return rows


def report(rows: List[DatasetRow]) -> str:
    table = format_table(
        ["Graph", "family", "|V|", "|E|", "Davg", "|Gamma|", "fingerprint",
         "peak MiB", "paper |V|", "paper |E|", "paper Davg",
         "paper |Gamma|"],
        [
            (r.name, r.family, r.num_vertices, r.num_edges,
             round(r.avg_degree, 1), r.num_communities,
             r.fingerprint[:12],
             round(r.peak_logical_bytes / 2**20, 2),
             f"{r.paper_vertices:.3g}",
             f"{r.paper_edges:.3g}",
             r.paper_avg_degree, f"{r.paper_communities:.3g}")
            for r in rows
        ],
        title="Table 2: datasets (stand-ins vs paper originals)",
    )
    return table


def main() -> Dict[str, List[DatasetRow]]:  # pragma: no cover - CLI
    rows = run()
    print(report(rows))
    return {"rows": rows}
