"""Extension experiment: request-trace sampling A/B — sampled vs full.

Drives the fleet workload with the request tracer attached, twice per
fleet width (1 and 4 shards): once in ``full`` retention and once in
``sampled`` retention, same ``(profile, seed)``.  The tail-sampling
rules are a pure function of the traces (:func:`repro.observability.
reqtrace.select_kept` is the single implementation both modes call), so
two contracts must hold *exactly*:

- **mode agreement** — the sampled run keeps precisely the traces the
  full run annotates with keep reasons (identical trace_id sets);
- **width invariance** — restricted to the deterministic keep reasons
  (:data:`~repro.observability.reqtrace.DETERMINISTIC_KEEP_REASONS`:
  errors, degraded, failovers, reservoir — everything except top-K
  ``slowest``, whose latencies depend on sharding), the kept set is
  identical at 1 and 4 shards, because trace ids and outcomes follow
  the request tape, never the placement.

:func:`measure_fleet_reqtrace` returns the deterministic comparison
document pinned as the ``reqtrace_quick.json`` exact-match baseline in
``repro bench --check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, List

from repro.bench.tables import format_table
from repro.fleet.fleet import FleetConfig, PartitionFleet
from repro.fleet.workload import run_fleet_workload
from repro.observability.health import HealthEvaluator, default_fleet_slos
from repro.observability.reqtrace import (
    DETERMINISTIC_KEEP_REASONS,
    RequestTracer,
    validate_reqtrace,
)

__all__ = [
    "FleetReqtraceResult",
    "measure_fleet_reqtrace",
    "run",
    "report",
    "main",
]

#: Fleet widths compared by the A/B (labels used in the result doc).
SHARD_COUNTS = (1, 4)


def _digest(ids: List[str]) -> str:
    return blake2b(",".join(sorted(ids)).encode(),
                   digest_size=8).hexdigest()


def _run_traced(profile: str, seed: int, shards: int, mode: str) -> dict:
    """One traced fleet workload run; returns the reqtrace document."""
    tracer = RequestTracer(seed=seed, mode=mode)
    fleet = PartitionFleet(
        FleetConfig(num_shards=shards, replicas=1),
        health=HealthEvaluator(default_fleet_slos()),
        reqtrace=tracer,
    )
    run_fleet_workload(profile, seed=seed, fleet=fleet, verify=False)
    doc = tracer.to_json_dict()
    validate_reqtrace(doc)
    return doc


@dataclass
class FleetReqtraceResult:
    profile: str
    seed: int
    #: "shards_1" / "shards_4" -> per-width comparison block.
    widths: Dict[str, dict]

    @property
    def kept_match(self) -> bool:
        """Sampled keeps exactly what full annotates, at every width."""
        return all(w["kept_match"] for w in self.widths.values())

    @property
    def det_keep_invariant(self) -> bool:
        """Deterministic keep set identical across fleet widths."""
        digests = {w["det_digest"] for w in self.widths.values()}
        return len(digests) == 1


def run(profile: str = "quick", *, seed: int = 0) -> FleetReqtraceResult:
    widths: Dict[str, dict] = {}
    for n in SHARD_COUNTS:
        full = _run_traced(profile, seed, n, "full")
        sampled = _run_traced(profile, seed, n, "sampled")
        full_kept = [t["trace_id"] for t in full["traces"]
                     if t["keep_reasons"]]
        sampled_kept = [t["trace_id"] for t in sampled["traces"]]
        det_kept = [t["trace_id"] for t in full["traces"]
                    if set(t["keep_reasons"]) & DETERMINISTIC_KEEP_REASONS]
        widths[f"shards_{n}"] = {
            "requests": full["totals"]["requests"],
            "spans": full["totals"]["spans"],
            "sampled_kept": len(sampled_kept),
            "by_reason": sampled["totals"]["by_reason"],
            "kept_match": sorted(full_kept) == sorted(sampled_kept),
            "kept_digest": _digest(sampled_kept),
            "det_kept": len(det_kept),
            "det_digest": _digest(det_kept),
            "flight_dumps": len(full["flight"]["dumps"]),
        }
    return FleetReqtraceResult(profile=profile, seed=seed, widths=widths)


def measure_fleet_reqtrace(profile: str = "quick", *, seed: int = 0) -> dict:
    """Deterministic A/B document (the ``reqtrace_quick.json`` baseline)."""
    result = run(profile, seed=seed)
    return {
        "profile": result.profile,
        "seed": result.seed,
        "kept_match": result.kept_match,
        "det_keep_invariant": result.det_keep_invariant,
        "widths": {label: dict(sorted(block.items()))
                   for label, block in sorted(result.widths.items())},
    }


def report(result: FleetReqtraceResult) -> str:
    rows = []
    for label, w in result.widths.items():
        reasons = ", ".join(f"{r}={n}"
                            for r, n in sorted(w["by_reason"].items()))
        rows.append([
            label.replace("shards_", ""),
            str(w["requests"]),
            str(w["spans"]),
            f"{w['sampled_kept']}/{w['requests']}",
            "yes" if w["kept_match"] else "NO",
            str(w["det_kept"]),
            w["det_digest"][:12],
            reasons or "-",
        ])
    inv = ("invariant" if result.det_keep_invariant
           else "DIVERGED")
    return format_table(
        ["shards", "requests", "spans", "kept", "modes agree",
         "det kept", "det digest", "kept by reason"],
        rows,
        title=f"Extension: fleet reqtrace ({result.profile} workload, "
              f"seed {result.seed}) — deterministic keep set {inv} "
              f"across widths",
    )


def main() -> FleetReqtraceResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
