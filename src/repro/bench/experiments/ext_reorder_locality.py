"""Extension experiment: community-aware relabeling locality A/B.

Three layouts of the same graph are compared:

- ``original`` — registry order (the synthetic generators emit mostly
  local ids, so this is a best-case reference);
- ``scrambled`` — a seeded random permutation, modelling the arbitrary
  (hashed) vertex ids real-world inputs arrive with;
- ``relabeled`` — the community-aware layout derived from a solve on
  the scrambled graph (:mod:`repro.graph.relabel`): communities
  contiguous in dendrogram order.

For each layout the modelled cache traffic of one edge scan is counted
exactly (:mod:`repro.observability.locality` — per-row distinct lines
and an LRU replay that sees cross-row reuse), and each engine solves on
each layout for real wall-clock plus modelled per-phase seconds and
atomics.  The deterministic half (:func:`measure_reorder_locality`) is
committed as an exact-match baseline and re-checked by
``repro bench --check``.

Quality is exactly layout-invariant: the scrambled solve's membership
expressed on the relabeled layout has bit-identical modularity
(``q_invariant``).  Fresh solves on different layouts may settle on
different — equally valid — partitions (the engines' tie-breaks are
id-dependent), so per-layout Q is reported per arm, not gated across
arms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.bench.tables import format_table
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.graph.relabel import community_relabeling
from repro.metrics.modularity import modularity
from repro.observability.locality import measure_locality
from repro.parallel.costmodel import PAPER_MACHINE
from repro.parallel.runtime import Runtime

__all__ = [
    "LAYOUTS",
    "ReorderLocalityResult",
    "build_layouts",
    "measure_reorder_locality",
    "run",
    "report",
    "main",
]

#: Layout arms, in presentation order.
LAYOUTS = ("original", "scrambled", "relabeled")

#: Engines timed in the wall-clock half.
DEFAULT_ENGINES = ("batch", "threads", "process")

#: Seed of the scrambling permutation (independent of the solve seed).
SCRAMBLE_SEED = 7

#: Modelled thread count for the per-phase seconds.
MODEL_THREADS = 64


def build_layouts(
    graph, *, seed: int = 42, scramble_seed: int = SCRAMBLE_SEED,
    mode: str = "community",
) -> Dict[str, object]:
    """The three layout graphs plus the relabeling metadata.

    Returns ``{"original": g, "scrambled": g2, "relabeled": g3,
    "relabeling": Relabeling, "pilot_membership": scrambled-id array}``.
    The relabeled layout is derived from a full batch solve on the
    *scrambled* graph — the realistic scenario where the stored
    partition of an arbitrarily-ordered input doubles as its locality
    preprocessor.
    """
    n = graph.num_vertices
    rng = np.random.default_rng(scramble_seed)
    scramble = rng.permutation(n).astype(np.int64)
    scrambled, _ = graph.permute(scramble)
    pilot = leiden(scrambled, LeidenConfig(engine="batch", seed=seed))
    levels = (pilot.dendrogram.memberships()
              if pilot.dendrogram.num_levels else [pilot.membership])
    relab = community_relabeling(scrambled, levels, mode=mode)
    relabeled, _ = scrambled.permute(relab.perm)
    return {
        "original": graph,
        "scrambled": scrambled,
        "relabeled": relabeled,
        "relabeling": relab,
        "pilot_membership": pilot.membership,
    }


def _solve_stats(graph, *, seed: int) -> dict:
    """Deterministic batch-solve summary on one layout (no wall clock)."""
    result = leiden(graph, LeidenConfig(engine="batch", seed=seed))
    sim = result.ledger.simulate(PAPER_MACHINE, MODEL_THREADS)
    return {
        "modularity": round(float(modularity(graph, result.membership)), 12),
        "passes": int(result.num_passes),
        "communities": int(result.num_communities),
        "total_work": round(float(result.ledger.total_work), 6),
        "modeled_seconds": round(float(sim.seconds), 9),
        "modeled_phase_seconds": {
            k: round(float(v), 9) for k, v in sorted(sim.phase_seconds.items())
        },
        "atomics_by_phase": {
            k: round(float(v), 6)
            for k, v in sorted(result.ledger.atomics_by_phase().items())
        },
    }


def measure_reorder_locality(
    graph_name: str,
    *,
    seed: int = 42,
    scramble_seed: int = SCRAMBLE_SEED,
    mode: str = "community",
) -> dict:
    """Deterministic locality/solve document for one registry graph.

    Everything in the returned document is byte-stable across runs
    (counting passes, modelled seconds, exact modularities — no wall
    clock), so it is committed verbatim as the ``reorder_locality``
    exact-match baseline.
    """
    graph = load_graph(graph_name, seed=1)
    layouts = build_layouts(
        graph, seed=seed, scramble_seed=scramble_seed, mode=mode)
    relab = layouts["relabeling"]
    pilot_m = layouts["pilot_membership"]
    # Exact layout invariance of quality: the scrambled solve's
    # membership expressed in relabeled ids must score identically.
    q_scrambled = float(modularity(layouts["scrambled"], pilot_m))
    q_mapped = float(modularity(
        layouts["relabeled"], relab.to_relabeled(pilot_m)))
    doc = {
        "graph": graph_name,
        "mode": mode,
        "seed": int(seed),
        "scramble_seed": int(scramble_seed),
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "layout_communities": int(relab.num_communities),
        "q_invariant": bool(q_scrambled == q_mapped),
        "locality": {
            name: measure_locality(layouts[name]).to_dict()
            for name in LAYOUTS
        },
        "solves": {
            name: _solve_stats(layouts[name], seed=seed)
            for name in LAYOUTS
        },
    }
    return doc


@dataclass
class ReorderLocalityResult:
    #: Per-graph deterministic documents (the baseline payload).
    measurements: Dict[str, dict]
    #: Wall-clock rows: graph/engine/layout → timing + summary.
    rows: List[dict]


def _timed_solve(graph, engine: str, *, workers: int, seed: int):
    cfg = LeidenConfig(engine=engine, seed=seed)
    if engine == "process":
        rt = Runtime(num_threads=workers, executor="process", seed=seed)
    else:
        rt = Runtime(num_threads=workers, seed=seed)
    try:
        t0 = time.perf_counter()
        result = leiden(graph, cfg, runtime=rt)
        wall = time.perf_counter() - t0
    finally:
        rt.close()
    return result, wall


def default_graphs() -> List[str]:
    from repro.bench.engines import largest_registry_graphs

    return largest_registry_graphs(2)


def run(
    graphs: Sequence[str] | None = None,
    *,
    engines: Sequence[str] = DEFAULT_ENGINES,
    workers: int = 2,
    seed: int = 42,
    scramble_seed: int = SCRAMBLE_SEED,
    mode: str = "community",
) -> ReorderLocalityResult:
    names = list(graphs) if graphs is not None else default_graphs()
    measurements: Dict[str, dict] = {}
    rows: List[dict] = []
    for name in names:
        measurements[name] = measure_reorder_locality(
            name, seed=seed, scramble_seed=scramble_seed, mode=mode)
        graph = load_graph(name, seed=1)
        layouts = build_layouts(
            graph, seed=seed, scramble_seed=scramble_seed, mode=mode)
        for engine in engines:
            for layout in LAYOUTS:
                result, wall = _timed_solve(
                    layouts[layout], engine, workers=workers, seed=seed)
                rows.append({
                    "graph": name,
                    "engine": engine,
                    "layout": layout,
                    "wall_seconds": wall,
                    "passes": int(result.num_passes),
                    "communities": int(result.num_communities),
                    "modularity": float(modularity(
                        layouts[layout], result.membership)),
                    "miss_ratio": measurements[name]["locality"][layout][
                        "miss_ratio"],
                })
    return ReorderLocalityResult(measurements=measurements, rows=rows)


def report(result: ReorderLocalityResult) -> str:
    parts: List[str] = []
    loc_rows = []
    for name, doc in result.measurements.items():
        for layout in LAYOUTS:
            loc = doc["locality"][layout]
            solve = doc["solves"][layout]
            loc_rows.append([
                name, layout,
                f"{loc['miss_ratio']:.4f}",
                f"{loc['gather_ratio']:.4f}",
                f"{solve['modeled_seconds']:.4f}",
                f"{solve['modularity']:.4f}",
                "yes" if doc["q_invariant"] else "NO",
            ])
    parts.append(format_table(
        ["Graph", "layout", "miss/edge", "lines/edge",
         "modeled s", "Q", "Q-invariant"],
        loc_rows,
        title="Extension: modelled locality per layout "
              "(batch solves, LRU gather model)",
    ))
    wall_rows = [
        [r["graph"], r["engine"], r["layout"],
         f"{r['wall_seconds']:.3f}", f"{r['modularity']:.4f}",
         f"{r['miss_ratio']:.4f}"]
        for r in result.rows
    ]
    if wall_rows:
        parts.append(format_table(
            ["Graph", "engine", "layout", "wall s", "Q", "miss/edge"],
            wall_rows,
            title="Extension: wall clock per engine and layout",
        ))
    return "\n\n".join(parts)


def main() -> ReorderLocalityResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
