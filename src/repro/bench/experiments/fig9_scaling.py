"""Figure 9: strong scaling of GVE-Leiden from 1 to 64 threads.

The paper varies threads in powers of two and reports overall speedup
plus the split across phases.  Key numbers: 11.4x average speedup at 32
threads (=1.6x per thread doubling) and only 16.0x at 64 threads due to
NUMA effects.  The work ledger makes this a single-execution experiment:
every region's per-chunk work was recorded, so modelled runtimes for all
thread counts come from one run per graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bench.harness import paper_scale, run_leiden_config
from repro.bench.instruments import phase_scaling_curves, scaling_curve
from repro.bench.tables import format_table, geometric_mean
from repro.core.config import LeidenConfig
from repro.core.result import ALL_PHASES
from repro.datasets.registry import registry_names

__all__ = ["Fig9Result", "THREAD_COUNTS", "run", "report", "main"]

THREAD_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class Fig9Result:
    #: [graph][threads] modelled seconds.
    seconds: Dict[str, Dict[int, float]]
    #: [graph][phase][threads] modelled seconds.
    phase_seconds: Dict[str, Dict[str, Dict[int, float]]]

    def speedups(self, graph: str) -> Dict[int, float]:
        base = self.seconds[graph][1]
        return {t: base / s for t, s in self.seconds[graph].items()}

    def mean_speedups(self) -> Dict[int, float]:
        out = {}
        for t in THREAD_COUNTS:
            out[t] = geometric_mean(
                [self.speedups(g)[t] for g in self.seconds]
            )
        return out

    def mean_speedup_per_doubling(self, upto: int = 32) -> float:
        mean = self.mean_speedups()
        doublings = [t for t in THREAD_COUNTS if 1 < t <= upto]
        if not doublings:
            return float("nan")
        return mean[max(doublings)] ** (1.0 / len(doublings))


def run(
    graphs: Sequence[str] | None = None,
    *,
    seed: int = 42,
    thread_counts: Sequence[int] = THREAD_COUNTS,
) -> Fig9Result:
    gs = list(graphs or registry_names())
    cfg = LeidenConfig()
    seconds: Dict[str, Dict[int, float]] = {}
    phase_secs: Dict[str, Dict[str, Dict[int, float]]] = {}
    for g in gs:
        result, _ = run_leiden_config(g, cfg, seed=seed)
        scale = paper_scale(g)
        seconds[g] = scaling_curve(result, thread_counts, work_scale=scale)
        phase_secs[g] = phase_scaling_curves(
            result, thread_counts, work_scale=scale
        )
    return Fig9Result(seconds=seconds, phase_seconds=phase_secs)


def report(result: Fig9Result) -> str:
    parts = []
    mean = result.mean_speedups()
    parts.append(format_table(
        ["Graph"] + [f"{t}T" for t in THREAD_COUNTS],
        [
            [g] + [round(result.speedups(g)[t], 2) for t in THREAD_COUNTS]
            for g in result.seconds
        ] + [["MEAN"] + [round(mean[t], 2) for t in THREAD_COUNTS]],
        title="Figure 9: strong-scaling speedup (paper: 11.4x @32T, "
              "16.0x @64T, ~1.6x per doubling)",
    ))
    parts.append(
        f"speedup per thread doubling (to 32T): "
        f"{result.mean_speedup_per_doubling():.2f}x (paper: 1.6x)"
    )
    # Phase-level mean speedups.
    rows = []
    for p in ALL_PHASES:
        row = [p]
        for t in THREAD_COUNTS:
            ratios = []
            for g in result.phase_seconds:
                base = result.phase_seconds[g][p].get(1, 0.0)
                cur = result.phase_seconds[g][p].get(t, 0.0)
                if base > 0 and cur > 0:
                    ratios.append(base / cur)
            row.append(round(geometric_mean(ratios), 2) if ratios else None)
        rows.append(row)
    parts.append(format_table(
        ["Phase"] + [f"{t}T" for t in THREAD_COUNTS],
        rows,
        title="Figure 9 (phase split): mean speedup per phase",
    ))

    # Paper-style speedup curve (mean and the best/worst graphs).
    from repro.bench.ascii_charts import line_chart

    mean = result.mean_speedups()
    at64 = {g: result.speedups(g)[64] for g in result.seconds}
    best = max(at64, key=at64.get)
    worst = min(at64, key=at64.get)
    parts.append(line_chart(
        {
            "mean": mean,
            best: result.speedups(best),
            worst: result.speedups(worst),
        },
        title="Figure 9 as a curve (speedup vs threads):",
    ))
    return "\n\n".join(parts)


def main() -> Fig9Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
