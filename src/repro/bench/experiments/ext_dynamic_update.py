"""Extension experiment: incremental updates vs from-scratch reruns.

The dynamic-Leiden extension (anticipated by the paper's refine-based
variant discussion): apply random edge batches of growing size to a
registry graph and compare the work of the three update strategies with
a static rerun, plus the quality each reaches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bench.tables import format_table
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.dynamic import dynamic_leiden
from repro.dynamic.batch import random_batch
from repro.dynamic.strategies import APPROACHES
from repro.metrics.modularity import modularity

__all__ = ["DynamicUpdateResult", "run", "report", "main"]

BATCH_SIZES = (50, 200, 800)


@dataclass
class DynamicUpdateResult:
    graph_name: str
    #: [batch_size][approach] -> (work_ratio_vs_scratch, quality_gap).
    outcomes: Dict[int, Dict[str, tuple]]


def run(
    graph_name: str = "uk-2002",
    batch_sizes: Sequence[int] = BATCH_SIZES,
    *,
    seed: int = 42,
) -> DynamicUpdateResult:
    graph = load_graph(graph_name)
    cfg = LeidenConfig(seed=seed)
    base = leiden(graph, cfg)
    outcomes: Dict[int, Dict[str, tuple]] = {}
    for size in batch_sizes:
        batch = random_batch(graph, num_insertions=size,
                             num_deletions=size, seed=seed + size)
        row: Dict[str, tuple] = {}
        scratch = None
        for approach in APPROACHES:
            dyn = dynamic_leiden(graph, base.membership, batch, cfg,
                                 approach=approach)
            if scratch is None:
                scratch = leiden(dyn.graph, cfg)
                q_scratch = modularity(dyn.graph, scratch.membership)
            ratio = dyn.result.ledger.total_work / scratch.ledger.total_work
            gap = modularity(dyn.graph, dyn.membership) - q_scratch
            row[approach] = (ratio, gap, dyn.affected_fraction)
        outcomes[size] = row
    return DynamicUpdateResult(graph_name=graph_name, outcomes=outcomes)


def report(result: DynamicUpdateResult) -> str:
    rows = []
    for size, row in result.outcomes.items():
        for approach, (ratio, gap, frac) in row.items():
            rows.append([
                f"±{size}", approach, f"{ratio:.2%}", f"{gap:+.4f}",
                f"{frac:.3f}",
            ])
    return format_table(
        ["Batch", "approach", "work vs scratch", "Q gap", "affected frac"],
        rows,
        title=f"Extension: dynamic updates on {result.graph_name} "
              "(vs from-scratch rerun)",
    )


def main() -> DynamicUpdateResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
