"""Extension experiment: sharded fleet A/B — 1 shard vs 4 shards.

Drives :func:`repro.fleet.workload.run_fleet_workload` over the same
``(profile, seed)`` at two fleet widths and reports what sharding buys
(and what it must preserve):

- **invariance** — the cross-shard ``membership`` fan-out digest and
  the served partitions must be *identical* at both widths (the request
  tape never consults fleet state, and every shard runs the same
  deterministic solve), which is the acceptance contract of the fleet;
- **load spread** — requests routed per shard, the max/mean imbalance
  gauge, and the hottest-shard query p99 under the hot-key Zipf skew;
- **logical cost** — replication multiplies solve work, sharding
  divides per-shard queue pressure; the clock-unit totals quantify the
  trade.

:func:`measure_fleet_load` returns the deterministic comparison
document pinned as the ``fleet_quick.json`` exact-match baseline in
``repro bench --check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.bench.tables import format_table
from repro.fleet.fleet import FleetConfig
from repro.fleet.workload import FleetWorkloadResult, run_fleet_workload

__all__ = ["FleetLoadResult", "measure_fleet_load", "run", "report", "main"]

#: Fleet widths compared by the A/B (labels used in the result doc).
SHARD_COUNTS = (1, 4)


@dataclass
class FleetLoadResult:
    profile: str
    seed: int
    #: "shards_1" / "shards_4" -> fleet workload result.
    outcomes: Dict[str, FleetWorkloadResult]

    @property
    def invariant(self) -> bool:
        digests = {r.fanout_digest for r in self.outcomes.values()}
        return len(digests) == 1


def run(profile: str = "quick", *, seed: int = 0) -> FleetLoadResult:
    outcomes = {
        f"shards_{n}": run_fleet_workload(
            profile, seed=seed,
            fleet_config=FleetConfig(num_shards=n, replicas=1),
        )
        for n in SHARD_COUNTS
    }
    return FleetLoadResult(profile=profile, seed=seed, outcomes=outcomes)


def measure_fleet_load(profile: str = "quick", *, seed: int = 0) -> dict:
    """Deterministic A/B document (the ``fleet_quick.json`` baseline)."""
    result = run(profile, seed=seed)
    return {
        "profile": result.profile,
        "seed": result.seed,
        "invariant": result.invariant,
        "runs": {
            label: outcome.to_json_dict()
            for label, outcome in result.outcomes.items()
        },
    }


def report(result: FleetLoadResult) -> str:
    rows = []
    for label, fr in result.outcomes.items():
        stats = fr.stats
        c = stats["router"]["counters"]
        d = stats["derived"]
        rows.append([
            label.replace("shards_", ""),
            str(c["routed"]),
            str(c["fanouts"]),
            f"{stats['clock_units']:,}",
            f"{d['imbalance']:.3f}",
            str(int(d["hottest_shard_query_p99"])),
            f"{c['degraded_serves']}/{c['failed_requests']}",
            "yes" if all(fr.membership_matches_scratch.values()) else "NO",
            fr.fanout_digest[:12],
        ])
    inv = "identical" if result.invariant else "DIVERGED"
    return format_table(
        ["shards", "routed", "fanouts", "clock units", "imbalance",
         "hot p99", "degr/fail", "== scratch", "fanout digest"],
        rows,
        title=f"Extension: fleet load ({result.profile} workload, "
              f"seed {result.seed}) — fan-out answers {inv} across widths",
    )


def main() -> FleetLoadResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
