"""Extension experiment: GVE-Leiden vs GVE-Louvain.

The paper's introduction motivates Leiden over Louvain: the refinement
phase guarantees well-connected communities at some extra cost.  This
experiment quantifies both sides on the registry — the refinement
overhead in modelled runtime and the quality relationship.  (On the
scaled-down stand-ins Louvain's disconnected-community pathology does not
manifest — it needs the long iteration histories of billion-edge inputs —
so the quality comparison is the informative axis here; the *guarantee*
difference is exercised directly by the refine-guard tests.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.baselines.registry import IMPLEMENTATIONS
from repro.bench.harness import paper_scale, run_leiden_config
from repro.bench.tables import format_table, geometric_mean
from repro.core.config import LeidenConfig
from repro.datasets.registry import load_graph, registry_names
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity

__all__ = ["LouvainVsLeidenResult", "run", "report", "main"]


@dataclass
class LouvainVsLeidenResult:
    #: [algorithm][graph] modelled seconds.
    seconds: Dict[str, Dict[str, float]]
    #: [algorithm][graph] modularity.
    quality: Dict[str, Dict[str, float]]
    #: [algorithm][graph] disconnected communities.
    disconnected: Dict[str, Dict[str, int]]

    def refinement_overhead(self) -> float:
        """Geometric-mean Leiden/Louvain runtime ratio."""
        ratios = [
            self.seconds["leiden"][g] / self.seconds["louvain"][g]
            for g in self.seconds["leiden"]
            if self.seconds["louvain"][g] > 0
        ]
        return geometric_mean(ratios)

    def mean_quality_gap(self) -> float:
        """Mean (Leiden - Louvain) modularity."""
        gaps = [
            self.quality["leiden"][g] - self.quality["louvain"][g]
            for g in self.quality["leiden"]
        ]
        return sum(gaps) / len(gaps) if gaps else 0.0


def run(graphs: Sequence[str] | None = None, *,
        seed: int = 42) -> LouvainVsLeidenResult:
    gs = list(graphs or registry_names())
    gve = IMPLEMENTATIONS["gve"]
    configs = {
        "leiden": LeidenConfig(),
        "louvain": LeidenConfig(use_refinement=False),
    }
    seconds: Dict[str, Dict[str, float]] = {a: {} for a in configs}
    quality: Dict[str, Dict[str, float]] = {a: {} for a in configs}
    disconnected: Dict[str, Dict[str, int]] = {a: {} for a in configs}
    for name, cfg in configs.items():
        for g in gs:
            result, _ = run_leiden_config(g, cfg, seed=seed)
            graph = load_graph(g)
            seconds[name][g] = gve.modeled_seconds(
                result, scale=paper_scale(g))
            quality[name][g] = modularity(graph, result.membership)
            disconnected[name][g] = disconnected_communities(
                graph, result.membership).num_disconnected
    return LouvainVsLeidenResult(seconds, quality, disconnected)


def report(result: LouvainVsLeidenResult) -> str:
    rows = []
    for g in result.seconds["leiden"]:
        rows.append([
            g,
            result.seconds["louvain"][g],
            result.seconds["leiden"][g],
            round(result.quality["louvain"][g], 4),
            round(result.quality["leiden"][g], 4),
            result.disconnected["louvain"][g],
            result.disconnected["leiden"][g],
        ])
    table = format_table(
        ["Graph", "Louvain [s]", "Leiden [s]", "Q Louvain", "Q Leiden",
         "disc Louvain", "disc Leiden"],
        rows,
        title="Extension: GVE-Louvain vs GVE-Leiden",
    )
    footer = (
        f"\nrefinement overhead (Leiden/Louvain runtime): "
        f"{result.refinement_overhead():.2f}x"
        f"\nmean modularity gap (Leiden - Louvain): "
        f"{result.mean_quality_gap():+.4f}"
        f"\nLeiden guarantees disc = 0 structurally; Louvain merely "
        f"happens to be clean at this scale."
    )
    return table + footer


def main() -> LouvainVsLeidenResult:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
