"""Figure 8: runtime / |E| factor of GVE-Leiden per graph.

The paper observes that graphs with low average degree (road networks,
protein k-mer graphs) and graphs with poor community structure
(com-LiveJournal, com-Orkut) show a higher runtime-per-edge factor.  We
report modelled-seconds-per-edge at paper scale, which preserves the
comparison across graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.bench.harness import run_once
from repro.bench.tables import format_table
from repro.datasets.registry import graph_spec, registry_names

__all__ = ["Fig8Result", "run", "report", "main"]


@dataclass
class Fig8Result:
    #: [graph] modelled seconds per paper-scale edge.
    seconds_per_edge: Dict[str, float]
    families: Dict[str, str]

    def family_means(self) -> Dict[str, float]:
        sums: Dict[str, list] = {}
        for g, v in self.seconds_per_edge.items():
            sums.setdefault(self.families[g], []).append(v)
        return {f: sum(v) / len(v) for f, v in sums.items()}


def run(graphs: Sequence[str] | None = None, *, seed: int = 42) -> Fig8Result:
    gs = list(graphs or registry_names())
    rates: Dict[str, float] = {}
    families: Dict[str, str] = {}
    for g in gs:
        rec = run_once("gve", g, seed=seed)
        spec = graph_spec(g)
        families[g] = spec.family
        if rec.ok and spec.paper_edges:
            rates[g] = rec.modeled_seconds / spec.paper_edges
    return Fig8Result(seconds_per_edge=rates, families=families)


def report(result: Fig8Result) -> str:
    rows = [
        [g, result.families[g], f"{v:.3e}"]
        for g, v in result.seconds_per_edge.items()
    ]
    table = format_table(
        ["Graph", "family", "runtime/|E| [s/edge]"],
        rows,
        title="Figure 8: runtime/|E| factor (paper: road/k-mer and "
              "poorly-clustered social graphs are highest)",
    )
    fam = format_table(
        ["Family", "mean runtime/|E|"],
        [[f, f"{v:.3e}"] for f, v in result.family_means().items()],
    )
    return table + "\n\n" + fam


def main() -> Fig8Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
