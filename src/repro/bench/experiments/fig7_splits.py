"""Figure 7: phase split and pass split of GVE-Leiden.

Paper findings to reproduce in shape: web graphs, road networks and
protein k-mer graphs spend most time in local-moving (plus refinement);
social networks are dominated by the aggregation phase.  On average the
split is roughly 46% local-moving / 19% refinement / 20% aggregation /
15% others, with 63% of the runtime in the first pass; on low-degree
graphs the later passes dominate instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.harness import paper_scale, run_leiden_config
from repro.bench.instruments import pass_split, phase_split
from repro.bench.tables import format_table
from repro.core.config import LeidenConfig
from repro.core.result import ALL_PHASES
from repro.datasets.registry import registry_names

__all__ = ["Fig7Result", "run", "report", "main"]


@dataclass
class Fig7Result:
    #: [graph][phase] fraction of modelled runtime.
    phase_fractions: Dict[str, Dict[str, float]]
    #: [graph] per-pass fraction of modelled runtime.
    pass_fractions: Dict[str, List[float]]

    def mean_phase_fractions(self) -> Dict[str, float]:
        out = {p: 0.0 for p in ALL_PHASES}
        for fractions in self.phase_fractions.values():
            for p in ALL_PHASES:
                out[p] += fractions.get(p, 0.0)
        n = max(len(self.phase_fractions), 1)
        return {p: v / n for p, v in out.items()}

    def mean_first_pass_fraction(self) -> float:
        vals = [fr[0] for fr in self.pass_fractions.values() if fr]
        return sum(vals) / len(vals) if vals else float("nan")


def run(
    graphs: Sequence[str] | None = None,
    *,
    seed: int = 42,
    num_threads: int = 64,
) -> Fig7Result:
    gs = list(graphs or registry_names())
    cfg = LeidenConfig()
    phases: Dict[str, Dict[str, float]] = {}
    passes: Dict[str, List[float]] = {}
    for g in gs:
        result, _ = run_leiden_config(g, cfg, seed=seed)
        scale = paper_scale(g)
        phases[g] = phase_split(result, num_threads=num_threads,
                                work_scale=scale)
        passes[g] = pass_split(result, num_threads=num_threads,
                               work_scale=scale)
    return Fig7Result(phase_fractions=phases, pass_fractions=passes)


def report(result: Fig7Result) -> str:
    parts = []
    parts.append(format_table(
        ["Graph"] + list(ALL_PHASES),
        [
            [g] + [round(result.phase_fractions[g].get(p, 0.0), 3)
                   for p in ALL_PHASES]
            for g in result.phase_fractions
        ] + [
            ["MEAN"] + [round(v, 3)
                        for v in result.mean_phase_fractions().values()]
        ],
        title="Figure 7(a): phase split of modelled runtime "
              "(paper mean: 46% move / 19% refine / 20% aggregate / 15% other)",
    ))
    max_passes = max((len(v) for v in result.pass_fractions.values()), default=0)
    parts.append(format_table(
        ["Graph"] + [f"pass {i}" for i in range(max_passes)],
        [
            [g] + [round(fr[i], 3) if i < len(fr) else None
                   for i in range(max_passes)]
            for g, fr in result.pass_fractions.items()
        ],
        title="Figure 7(b): pass split of modelled runtime "
              f"(paper: first pass ~63% on average; measured mean "
              f"{result.mean_first_pass_fraction():.0%})",
    ))
    return "\n\n".join(parts)


def main() -> Fig7Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
