"""Table 1: headline mean speedups of GVE-Leiden.

| implementation  | parallelism     | paper speedup |
|-----------------|-----------------|---------------|
| Original Leiden | sequential      | 436x          |
| igraph Leiden   | sequential      | 104x          |
| NetworKit       | parallel        | 8.2x          |
| cuGraph (A100)  | parallel (GPU)  | 3.0x          |

(The abstract quotes 22x/50x/20x/3.0x for a different averaging; the
per-figure means above are what Figure 6(b) reports.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.experiments import fig6_comparison
from repro.bench.tables import format_table

__all__ = ["Table1Result", "PAPER_SPEEDUPS", "run", "report", "main"]

PAPER_SPEEDUPS: Dict[str, float] = {
    "original": 436.0,
    "igraph": 104.0,
    "networkit": 8.2,
    "cugraph": 3.0,
}

PARALLELISM: Dict[str, str] = {
    "original": "Sequential",
    "igraph": "Sequential",
    "networkit": "Parallel",
    "cugraph": "Parallel (GPU)",
}


@dataclass
class Table1Result:
    measured: Dict[str, float]
    paper: Dict[str, float]


def run(graphs: Sequence[str] | None = None, *, seed: int = 42) -> Table1Result:
    fig6 = fig6_comparison.run(graphs, seed=seed)
    measured = {
        impl: fig6.mean_speedup(impl)
        for impl in fig6.implementations
        if impl != "gve"
    }
    return Table1Result(measured=measured, paper=dict(PAPER_SPEEDUPS))


def report(result: Table1Result) -> str:
    rows: List[List[object]] = []
    for impl, measured in result.measured.items():
        rows.append([
            impl,
            PARALLELISM.get(impl, "?"),
            f"{measured:.1f}x",
            f"{result.paper.get(impl, float('nan')):.1f}x",
        ])
    return format_table(
        ["Implementation", "Parallelism", "Our speedup (measured)",
         "Paper speedup"],
        rows,
        title="Table 1: mean speedup of GVE-Leiden over each implementation",
    )


def main() -> Table1Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
