"""Figures 1-2: greedy vs random refinement, with medium/heavy variants.

The paper compares six configurations of GVE-Leiden — {greedy, random}
refinement x {default, medium, heavy} optimization levels — and reports,
averaged over all graphs, the *relative runtime* (Figure 1) and the
*modularity* (Figure 2).  Paper outcome: greedy-default is fastest and
ties or beats random on quality; medium/heavy (threshold scaling and/or
aggregation tolerance disabled) cost runtime without quality gains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.baselines.registry import IMPLEMENTATIONS
from repro.bench.harness import paper_scale, run_leiden_config
from repro.bench.tables import format_table, geometric_mean
from repro.core.config import LeidenConfig
from repro.datasets.registry import load_graph, registry_names
from repro.metrics.modularity import modularity

__all__ = ["VariantOutcome", "Fig12Result", "CONFIGS", "run", "report", "main"]

CONFIGS: Dict[str, LeidenConfig] = {
    f"{refinement}-{variant}": LeidenConfig.variant(variant, refinement=refinement)
    for refinement in ("greedy", "random")
    for variant in ("default", "medium", "heavy")
}


@dataclass
class VariantOutcome:
    name: str
    #: Modelled seconds per graph (paper scale, 64 threads).
    seconds: Dict[str, float]
    #: Modularity per graph.
    quality: Dict[str, float]

    def mean_relative_runtime(self, baseline: "VariantOutcome") -> float:
        ratios = {
            g: self.seconds[g] / baseline.seconds[g]
            for g in self.seconds
            if g in baseline.seconds and baseline.seconds[g] > 0
        }
        return geometric_mean(ratios.values())

    def mean_quality(self) -> float:
        vals = list(self.quality.values())
        return sum(vals) / len(vals) if vals else float("nan")


@dataclass
class Fig12Result:
    outcomes: Dict[str, VariantOutcome]
    baseline: str = "greedy-default"


def run(graphs: Sequence[str] | None = None, *, seed: int = 42) -> Fig12Result:
    gs = list(graphs or registry_names())
    gve = IMPLEMENTATIONS["gve"]
    outcomes: Dict[str, VariantOutcome] = {}
    for name, cfg in CONFIGS.items():
        seconds: Dict[str, float] = {}
        quality: Dict[str, float] = {}
        for g in gs:
            result, _wall = run_leiden_config(g, cfg, seed=seed)
            seconds[g] = gve.modeled_seconds(result, scale=paper_scale(g))
            quality[g] = modularity(load_graph(g), result.membership)
        outcomes[name] = VariantOutcome(name, seconds, quality)
    return Fig12Result(outcomes=outcomes)


def report(result: Fig12Result) -> str:
    base = result.outcomes[result.baseline]
    rows: List[List[object]] = []
    for name, outcome in result.outcomes.items():
        rows.append([
            name,
            round(outcome.mean_relative_runtime(base), 3),
            round(outcome.mean_quality(), 4),
        ])
    return format_table(
        ["Variant", "relative runtime (Fig 1)", "mean modularity (Fig 2)"],
        rows,
        title="Figures 1-2: refinement variants, averaged over the dataset "
              "(paper: greedy-default fastest; greedy >= random quality)",
    )


def main() -> Fig12Result:  # pragma: no cover - CLI
    result = run()
    print(report(result))
    return result
