"""Kernel microbenchmarks: ``repro bench --kernels``.

Times the counting kernel family against the sort family on the batch
shapes the Leiden phases actually produce (gathered CSR rows of the
smoke graphs plus synthetic stress shapes), and the bincount scatter
against ``np.add.at``.  Finishes with end-to-end sort-vs-count wall
times per smoke graph.  Used to populate ``docs/PERFORMANCE.md`` and as
the CI kernel-smoke step (``--quick``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core._kernels import (
    scatter_add,
    segment_pair_sums_count,
    segment_pair_sums_sort,
    segmented_argmax,
    segmented_argmax_sorted,
)
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.graph.segments import gather_rows
from repro.parallel.runtime import Runtime

__all__ = ["main"]

SMOKE_GRAPHS = ("asia_osm", "uk-2002", "com-Orkut")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _batch_workload(graph, batch_size: int, rng, membership=None):
    """One local-move-shaped batch: gathered rows of random vertices.

    ``membership=None`` is the first-iteration shape (singletons, every
    neighbor a distinct community — the count family's worst case);
    passing a converged membership gives the steady-state shape.
    """
    n = graph.num_vertices
    vs = rng.choice(n, size=min(batch_size, n), replace=False)
    vs.sort()
    seg, dst, w = gather_rows(
        graph.offsets[:-1], graph.degrees, graph.targets, graph.weights, vs
    )
    if membership is None:
        comm = dst.astype(np.int64)
    else:
        comm = membership[dst].astype(np.int64)
    return seg, comm, w, vs.shape[0], n


def _print_row(name, e, sort_s, count_s):
    speed = sort_s / count_s if count_s > 0 else float("inf")
    print(f"{name:34s} | {e:>9,} | {sort_s * 1e3:8.2f} | "
          f"{count_s * 1e3:8.2f} | {speed:5.2f}x")


def main(seed: int = 42, repeats: int = 5, quick: bool = False) -> int:
    rng = np.random.default_rng(seed)
    if quick:
        repeats = 2
    print("Kernel microbenchmarks (best of "
          f"{repeats}; times in ms)")
    print(f"{'workload':34s} | {'elems':>9s} | {'sort':>8s} | "
          f"{'count':>8s} | ratio")
    print("-" * 72)

    # -- pair sums on real batch shapes ----------------------------------
    for gname in SMOKE_GRAPHS:
        graph = load_graph(gname)
        converged = leiden(
            graph, LeidenConfig(seed=seed),
            runtime=Runtime(num_threads=1, seed=seed),
        ).membership
        for label, member in (("first-iter", None), ("converged", converged)):
            seg, comm, w, nseg, n = _batch_workload(
                graph, 4096, rng, membership=member
            )
            if seg.shape[0] == 0:
                continue
            scratch = np.empty(n, dtype=np.int64)
            sort_s = _best_of(
                lambda s=seg, c=comm, ww=w, nn=n:
                    segment_pair_sums_sort(s, c, ww, nn),
                repeats,
            )
            count_s = _best_of(
                lambda s=seg, c=comm, ww=w, ns=nseg, sc=scratch:
                    segment_pair_sums_count(s, c, ww, ns, sc),
                repeats,
            )
            _print_row(f"pair_sums {gname} {label}", seg.shape[0],
                       sort_s, count_s)

    # -- pair sums, synthetic stress shapes ------------------------------
    e = 100_000 if quick else 1_000_000
    for label, nseg, ncomm in (
        ("dense (few communities)", 4096, 64),
        ("sparse (many communities)", 4096, 200_000),
    ):
        seg = np.sort(rng.integers(0, nseg, e))
        comm = rng.integers(0, ncomm, e)
        w = rng.uniform(0, 1, e).astype(np.float32)
        scratch = np.empty(ncomm, dtype=np.int64)
        sort_s = _best_of(
            lambda s=seg, c=comm, ww=w, nc=ncomm:
                segment_pair_sums_sort(s, c, ww, nc),
            repeats,
        )
        count_s = _best_of(
            lambda s=seg, c=comm, ww=w, ns=nseg, sc=scratch:
                segment_pair_sums_count(s, c, ww, ns, sc),
            repeats,
        )
        _print_row(f"pair_sums {label}", e, sort_s, count_s)

    # -- segmented argmax ------------------------------------------------
    sz = 50_000 if quick else 500_000
    seg = np.sort(rng.integers(0, 4096, sz))
    vals = rng.uniform(-1, 1, sz)
    lex_s = _best_of(lambda: segmented_argmax(seg, vals), repeats)
    red_s = _best_of(lambda: segmented_argmax_sorted(seg, vals), repeats)
    _print_row("argmax lexsort vs reduceat", sz, lex_s, red_s)

    # -- scatter: np.add.at vs bincount ----------------------------------
    sz = 50_000 if quick else 500_000
    idx = rng.integers(0, 4096, sz)
    w = rng.uniform(-1, 1, sz)
    target = np.zeros(4096)
    scratch = np.empty(4096, dtype=np.int64)
    at_s = _best_of(lambda: np.add.at(target, idx, w), repeats)
    bc_s = _best_of(lambda: scatter_add(target, idx, w, scratch), repeats)
    _print_row("scatter np.add.at vs bincount", sz, at_s, bc_s)

    # -- end to end ------------------------------------------------------
    print("-" * 72)
    print("End-to-end Leiden (batch engine), sort vs count workspaces:")
    for gname in SMOKE_GRAPHS:
        graph = load_graph(gname)
        walls = {}
        members = {}
        for engine in ("sort", "count"):
            cfg = LeidenConfig(kernel_engine=engine, seed=seed)

            def run():
                rt = Runtime(num_threads=1, seed=seed)
                members[engine] = leiden(graph, cfg, runtime=rt).membership

            walls[engine] = _best_of(run, 1 if quick else 2)
        identical = np.array_equal(members["sort"], members["count"])
        _print_row(f"leiden {gname}", graph.num_edges,
                   walls["sort"], walls["count"])
        if not identical:
            print(f"  !! membership mismatch on {gname}")
            return 1
    print("memberships identical across kernel engines on all graphs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
