"""Plain-text table and series formatting for the experiment drivers."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_series", "geometric_mean", "ratio_summary"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    srows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Dict[object, float],
    *,
    title: str | None = None,
    fmt: str = "{:.4g}",
) -> str:
    """A two-column series (one figure line) as text."""
    rows = [(k, fmt.format(v)) for k, v in points.items()]
    return format_table([x_label, y_label], rows, title=title)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; NaN for empty input."""
    vals = [v for v in values if v is not None]
    if not vals:
        return float("nan")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def ratio_summary(
    numerators: Dict[str, float], denominators: Dict[str, float]
) -> float:
    """Geometric-mean ratio over the keys present in both mappings."""
    ratios = [
        numerators[k] / denominators[k]
        for k in numerators
        if k in denominators
        and numerators[k] is not None
        and denominators[k] is not None
        and denominators[k] > 0
    ]
    return geometric_mean(ratios)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.4g}"
    if cell is None:
        return "-"
    return str(cell)
