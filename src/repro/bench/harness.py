"""Run matrix: implementations × registry graphs, with full metrics.

``run_once`` executes one implementation on one registry graph and
collects everything Figure 6 needs: modelled runtime (paper-scale),
wall-clock, modularity, community count and the disconnected-community
fraction.  Results are memoized per (implementation, graph, seed) so the
experiment drivers and the pytest benchmarks can share one execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Optional

from repro.baselines.registry import IMPLEMENTATIONS, get_implementation
from repro.bench.timing import time_call
from repro.datasets.registry import graph_spec, load_graph
from repro.errors import SimulatedOutOfMemory
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity

__all__ = ["RunRecord", "run_once", "run_matrix", "paper_scale"]


def paper_scale(graph_name: str) -> float:
    """Work multiplier from the stand-in to the paper-scale original."""
    spec = graph_spec(graph_name)
    graph = load_graph(graph_name)
    if graph.num_edges == 0:
        return 1.0
    return float(spec.paper_edges) / float(graph.num_edges)


@dataclass
class RunRecord:
    """Outcome of one (implementation, graph) execution."""

    implementation: str
    graph: str
    #: Modelled seconds at paper scale (None when the run failed).
    modeled_seconds: Optional[float]
    wall_seconds: Optional[float]
    modularity: Optional[float]
    num_communities: Optional[int]
    disconnected_fraction: Optional[float]
    num_passes: Optional[int]
    failure: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@lru_cache(maxsize=512)
def run_once(
    impl_name: str,
    graph_name: str,
    *,
    seed: int = 42,
    use_paper_scale: bool = True,
) -> RunRecord:
    """Execute one implementation on one registry graph (memoized)."""
    impl = get_implementation(impl_name)
    graph = load_graph(graph_name)
    spec = graph_spec(graph_name)
    try:
        result, wall = time_call(
            lambda: impl.run(graph, seed=seed, spec=spec)
        )
    except SimulatedOutOfMemory as exc:
        return RunRecord(
            impl_name, graph_name,
            None, None, None, None, None, None,
            failure=f"out of memory ({exc.required_bytes / 2**30:.0f} GiB)",
        )
    scale = paper_scale(graph_name) if use_paper_scale else 1.0
    report = disconnected_communities(graph, result.membership)
    return RunRecord(
        implementation=impl_name,
        graph=graph_name,
        modeled_seconds=impl.modeled_seconds(result, scale=scale),
        wall_seconds=wall,
        modularity=modularity(graph, result.membership),
        num_communities=result.num_communities,
        disconnected_fraction=report.fraction,
        num_passes=result.num_passes,
    )


@lru_cache(maxsize=512)
def run_leiden_config(graph_name: str, config, *, seed: int = 42):
    """Run GVE-Leiden with an explicit config on a registry graph.

    Memoized on ``(graph_name, config, seed)`` — ``LeidenConfig`` is a
    frozen dataclass, hence hashable.  Returns ``(result, wall_seconds)``.
    """
    from repro.core.leiden import leiden

    graph = load_graph(graph_name)
    return time_call(lambda: leiden(graph, config.with_(seed=seed)))


def run_matrix(
    graphs: Iterable[str],
    implementations: Iterable[str] | None = None,
    *,
    seed: int = 42,
) -> Dict[str, Dict[str, RunRecord]]:
    """``records[graph][impl]`` for the full cross product."""
    impls: List[str] = (
        list(implementations) if implementations is not None
        else list(IMPLEMENTATIONS)
    )
    out: Dict[str, Dict[str, RunRecord]] = {}
    for g in graphs:
        out[g] = {i: run_once(i, g, seed=seed) for i in impls}
    return out
