"""Benchmark harness: run matrices, instrumentation and table formatting.

Each experiment module under :mod:`repro.bench.experiments` regenerates
one table or figure of the paper's evaluation section and prints the same
rows/series the paper reports.  ``python -m repro.bench`` runs them all.
"""

from repro.bench.harness import RunRecord, paper_scale, run_matrix, run_once
from repro.bench.tables import (
    format_series,
    format_table,
    geometric_mean,
    ratio_summary,
)
from repro.bench.timing import Measurement, repeat_measure, time_call

__all__ = [
    "time_call",
    "repeat_measure",
    "Measurement",
    "RunRecord",
    "run_once",
    "run_matrix",
    "paper_scale",
    "format_table",
    "format_series",
    "geometric_mean",
    "ratio_summary",
]
