"""Run the evaluation: ``python -m repro.bench``.

With no arguments, prints every experiment in paper order.  Positional
arguments filter by label ("table 1", "figure 9", ...).  ``--output`` /
``--json`` additionally write the consolidated report artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument("filters", nargs="*",
                        help="only run experiments whose label matches")
    parser.add_argument("--output", default=None,
                        help="write a consolidated markdown report here")
    parser.add_argument("--json", default=None, dest="json_path",
                        help="write a JSON summary here")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.output or args.json_path:
        from repro.bench.report import generate_report, write_report

        report = generate_report(seed=args.seed)
        write_report(report, markdown_path=args.output,
                     json_path=args.json_path)
        for target in (args.output, args.json_path):
            if target:
                print(f"wrote {target}")
        return 0

    wanted = {f.lower() for f in args.filters}
    for label, module in ALL_EXPERIMENTS:
        if wanted and not any(w in label.lower() for w in wanted):
            continue
        print("=" * 72)
        print(f"== {label} ({module.__name__.rsplit('.', 1)[-1]})")
        print("=" * 72)
        t0 = time.perf_counter()
        module.main()
        print(f"[{label} done in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
