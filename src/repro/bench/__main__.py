"""Run the evaluation: ``python -m repro.bench`` / ``repro bench``.

With no arguments, prints every experiment in paper order.  Positional
arguments filter by label ("table 1", "figure 9", ...).  ``--output`` /
``--json`` additionally write the consolidated report artifacts.

Observability / CI flags:

- ``--check`` re-runs the committed smoke baselines
  (``benchmarks/baselines/*.json``) and exits non-zero when wall time,
  simulated-clock cost, total work or modularity regress past their
  thresholds — the CI perf gate;
- ``--trace PATH`` runs the same smoke experiments with the tracing
  layer enabled and writes the span/counter JSON bundle — the CI
  artifact;
- ``--profile PATH`` runs the smoke experiments with the thread-timeline
  profiler enabled and writes a bundle of Chrome trace documents plus
  the critical-path/imbalance text reports;
- ``--mem PATH`` runs the memory-ledger smoke experiment and writes the
  byte-deterministic ``repro.memory/1`` allocation report — a CI
  artifact next to the trace/profile bundles;
- ``--update-baselines`` re-records the baseline files after an
  intentional performance or quality change;
- ``--kernels`` runs the sort-vs-count kernel microbenchmarks
  (``--quick`` for the smaller CI smoke variant) and verifies both
  kernel engines return identical memberships;
- ``--engines`` runs the real-wall-clock engine A/B (threading vs the
  shared-memory process pool) on registry graphs, verifies both against
  the batch oracle, and writes the JSON report CI uploads
  (``--engines-output``, ``--workers``, ``--min-speedup``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Regenerate the paper's tables and figures",
    )
    parser.add_argument("filters", nargs="*",
                        help="only run experiments whose label matches")
    parser.add_argument("--output", default=None,
                        help="write a consolidated markdown report here")
    parser.add_argument("--json", default=None, dest="json_path",
                        help="write a JSON summary here")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--check", action="store_true",
                        help="compare smoke runs against the committed "
                             "baselines; exit 1 on regression")
    parser.add_argument("--trace", default=None, dest="trace_path",
                        metavar="PATH",
                        help="write the traced smoke-run JSON bundle here")
    parser.add_argument("--profile", default=None, dest="profile_path",
                        metavar="PATH",
                        help="write the profiled smoke-run bundle here "
                             "(Chrome traces + imbalance reports)")
    parser.add_argument("--threads", type=int, default=8,
                        help="simulated thread count for --profile "
                             "timelines")
    parser.add_argument("--mem", default=None, dest="mem_path",
                        metavar="PATH",
                        help="write the memory-ledger smoke report "
                             "(repro.memory/1, byte-deterministic) here")
    parser.add_argument("--baselines", default=None, dest="baseline_dir",
                        metavar="DIR",
                        help="baseline directory (default: "
                             "benchmarks/baselines)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="re-record the baseline files from the "
                             "current code")
    parser.add_argument("--kernels", action="store_true",
                        help="run the sort-vs-count kernel "
                             "microbenchmarks")
    parser.add_argument("--quick", action="store_true",
                        help="smaller/faster --kernels run (CI smoke)")
    parser.add_argument("--engines", action="store_true",
                        dest="engines_ab",
                        help="run the wall-clock engine A/B "
                             "(threading vs process pool)")
    parser.add_argument("--engines-output", default=None, metavar="PATH",
                        help="write the engine A/B JSON report here")
    parser.add_argument("--engines-graphs", default=None, metavar="NAMES",
                        help="comma-separated registry graphs for "
                             "--engines (default: the largest graphs)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for --engines (default 4)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="with --engines: fail when the process "
                             "engine's speedup over threading falls "
                             "below this on any graph")
    parser.add_argument("--relabel", default="none",
                        choices=["none", "community", "community-degree"],
                        help="with --engines: run every engine (and the "
                             "batch oracle) through the community-aware "
                             "relabeled solve path")
    args = parser.parse_args(argv)

    if args.kernels:
        from repro.bench.kernels import main as kernels_main

        return kernels_main(seed=args.seed, quick=args.quick)

    if args.engines_ab:
        from repro.bench.engines import main as engines_main

        graphs = (args.engines_graphs.split(",")
                  if args.engines_graphs else None)
        return engines_main(
            graphs=graphs, workers=args.workers, seed=args.seed,
            output=args.engines_output, min_speedup=args.min_speedup,
            relabel=args.relabel,
        )

    if (args.check or args.trace_path or args.profile_path
            or args.mem_path or args.update_baselines):
        from repro.observability import regression

        baseline_dir = (Path(args.baseline_dir) if args.baseline_dir
                        else regression.default_baseline_dir())
        if args.update_baselines:
            baselines = regression.record_baselines(
                baseline_dir, seed=args.seed,
            )
            for b in baselines:
                print(f"recorded baseline {b.name} "
                      f"(modeled {b.metrics.modeled_seconds:.4f}s, "
                      f"Q={b.metrics.modularity:.4f})")
            for sb in regression.record_service_baselines(baseline_dir):
                stats = sb.expected["stats"]
                print(f"recorded service baseline {sb.name} "
                      f"(clock={stats['clock_units']} units, "
                      f"{stats['counters']['queries_served']} queries)")
            for mb in regression.record_metrics_baselines(baseline_dir):
                n_fams = len(mb.expected["families"])
                print(f"recorded metrics baseline {mb.name} "
                      f"({mb.kind}, {n_fams} instrument families)")
            for rb in regression.record_reorder_baselines(baseline_dir):
                print(f"recorded reorder baseline {rb.name} "
                      f"(graphs={','.join(rb.graphs)}, mode={rb.mode})")
            for fb in regression.record_fleet_baselines(baseline_dir):
                runs = fb.expected["runs"]
                print(f"recorded fleet baseline {fb.name} "
                      f"({'/'.join(sorted(runs))}, "
                      f"invariant={fb.expected['invariant']})")
            for tb in regression.record_reqtrace_baselines(baseline_dir):
                widths = tb.expected["widths"]
                print(f"recorded reqtrace baseline {tb.name} "
                      f"({'/'.join(sorted(widths))}, "
                      f"kept_match={tb.expected['kept_match']}, "
                      f"det_invariant={tb.expected['det_keep_invariant']})")
            for memb in regression.record_memory_baselines(
                    baseline_dir, seed=args.seed):
                logical = memb.expected["logical"]
                print(f"recorded memory baseline {memb.name} "
                      f"(graph={memb.graph}, clock={logical['clock']}, "
                      f"peak={logical['peak_bytes']} B)")
        if args.trace_path:
            bundle = regression.run_trace(seed=args.seed)
            Path(args.trace_path).write_text(
                json.dumps(bundle, indent=2, sort_keys=True) + "\n"
            )
            print(f"trace bundle written to {args.trace_path}")
        if args.profile_path:
            bundle = regression.run_profile(
                seed=args.seed, num_threads=args.threads)
            Path(args.profile_path).write_text(
                json.dumps(bundle, indent=2, sort_keys=True) + "\n"
            )
            print(f"profile bundle written to {args.profile_path}")
        if args.mem_path:
            doc = regression.measure_memory(seed=args.seed)
            Path(args.mem_path).write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
            print(f"memory report written to {args.mem_path}")
        if args.check:
            return regression.run_check(baseline_dir, require_complete=True)
        return 0

    if args.output or args.json_path:
        from repro.bench.report import generate_report, write_report

        report = generate_report(seed=args.seed)
        write_report(report, markdown_path=args.output,
                     json_path=args.json_path)
        for target in (args.output, args.json_path):
            if target:
                print(f"wrote {target}")
        return 0

    wanted = {f.lower() for f in args.filters}
    for label, module in ALL_EXPERIMENTS:
        if wanted and not any(w in label.lower() for w in wanted):
            continue
        print("=" * 72)
        print(f"== {label} ({module.__name__.rsplit('.', 1)[-1]})")
        print("=" * 72)
        t0 = time.perf_counter()
        module.main()
        print(f"[{label} done in {time.perf_counter() - t0:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
