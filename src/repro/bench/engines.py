"""Engine A/B benchmark: real wall-clock, threading vs process.

Everything else in the bench suite reports *modelled* seconds, because
the GIL makes real Python-thread scaling unobservable.  The process
engine changes that: its workers are separate interpreters over shared
memory, so its wall-clock is a real measurement worth gating on.  This
module times the ``threads`` and ``process`` engines end-to-end on
registry graphs, verifies both memberships against the simulated
``batch`` oracle, and emits a JSON report CI uploads as an artifact.

The report schema (``repro.bench.engines/2``)::

    {
      "schema": "repro.bench.engines/2",
      "workers": 4, "seed": 42,
      "graphs": [
        {"name": "kmer_V1r", "vertices": ..., "edges": ...,
         "engines": {"threads":  {"wall_seconds": ..., "passes": ...,
                                  "communities": ..., "identical": true,
                                  "peak_logical_bytes": ...},
                     "process": {...}},
         "speedup_process_vs_threads": 3.2},
        ...
      ]
    }

``peak_logical_bytes`` is each run's memory-ledger peak watermark
(:mod:`repro.observability.memtrack`) — logical bytes, so it is
worker-count-invariant and comparable across engines.

``identical`` is each engine's membership equality against the batch
oracle.  Only the process engine *contracts* bitwise equality at any
worker count (see :mod:`repro.core.local_move_process`); the threading
engine follows the per-vertex loop semantics and may legitimately settle
on a different (equally valid) partition, so its flag is informational.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.datasets.registry import load_graph, registry_names
from repro.observability.memtrack import MemoryLedger, record_csr
from repro.parallel.runtime import Runtime

__all__ = ["DEFAULT_AB_GRAPHS", "run_engine_ab", "format_engine_ab", "main"]

#: Report schema tag.
ENGINES_SCHEMA = "repro.bench.engines/2"

#: Graphs the A/B runs by default: the two largest registry graphs (by
#: vertex count) plus one web-crawl representative.
DEFAULT_AB_GRAPHS = ("kmer_V1r", "kmer_A2a", "com-LiveJournal")


def largest_registry_graphs(count: int = 2) -> List[str]:
    """The ``count`` largest registry graphs by vertex count."""
    sized = []
    for name in registry_names():
        g = load_graph(name, seed=1)
        sized.append((g.num_vertices, name))
    sized.sort(reverse=True)
    return [name for _, name in sized[:count]]


def _run_one(graph, engine: str, *, workers: int, seed: int,
             relabel: str = "none"):
    """One timed end-to-end run; returns (result, wall_seconds, peak)."""
    cfg = LeidenConfig(engine=engine, seed=seed, relabel=relabel)
    memory = MemoryLedger()
    record_csr(memory, graph)  # input graph: loads are memoized
    if engine == "process":
        rt = Runtime(num_threads=workers, executor="process", seed=seed,
                     memory=memory)
    else:
        rt = Runtime(num_threads=workers, seed=seed, memory=memory)
    try:
        t0 = time.perf_counter()
        result = leiden(graph, cfg, runtime=rt)
        wall = time.perf_counter() - t0
    finally:
        rt.close()
    return result, wall, memory.peak_bytes()


def run_engine_ab(
    graphs: Sequence[str] | None = None,
    *,
    workers: int = 4,
    seed: int = 42,
    engines: Sequence[str] = ("threads", "process"),
    relabel: str = "none",
) -> Dict:
    """Time the engines on each graph; verify against the batch oracle.

    ``relabel`` applies the community-aware layout pipeline
    (:mod:`repro.graph.relabel`) to every engine *and* the oracle, so
    the bitwise process-vs-batch contract is checked on the relabeled
    solve path too.
    """
    names = list(graphs) if graphs is not None else list(DEFAULT_AB_GRAPHS)
    rows: List[Dict] = []
    for name in names:
        g = load_graph(name, seed=1)
        oracle = leiden(
            g, LeidenConfig(engine="batch", seed=seed, relabel=relabel))
        row: Dict = {
            "name": name,
            "vertices": int(g.num_vertices),
            "edges": int(g.num_edges),
            "engines": {},
        }
        for engine in engines:
            result, wall, peak = _run_one(
                g, engine, workers=workers, seed=seed, relabel=relabel)
            row["engines"][engine] = {
                "wall_seconds": round(wall, 4),
                "passes": int(result.num_passes),
                "communities": int(result.num_communities),
                "identical": bool(
                    np.array_equal(result.membership, oracle.membership)),
                "peak_logical_bytes": int(peak),
            }
        th = row["engines"].get("threads")
        pr = row["engines"].get("process")
        if th and pr and pr["wall_seconds"] > 0:
            row["speedup_process_vs_threads"] = round(
                th["wall_seconds"] / pr["wall_seconds"], 3)
        rows.append(row)
    return {
        "schema": ENGINES_SCHEMA,
        "workers": int(workers),
        "seed": int(seed),
        "relabel": relabel,
        "graphs": rows,
    }


def format_engine_ab(report: Dict) -> str:
    """Human-readable table of an A/B report."""
    lines = [
        f"engine A/B at {report['workers']} workers (seed {report['seed']}"
        + (f", relabel={report['relabel']}"
           if report.get("relabel", "none") != "none" else "") + ")",
        f"{'graph':<18s} {'engine':<9s} {'wall s':>8s} {'passes':>6s} "
        f"{'comms':>7s} {'oracle':>7s} {'peak MiB':>9s}",
    ]
    for row in report["graphs"]:
        for engine, stats in row["engines"].items():
            peak = stats.get("peak_logical_bytes", 0) / 2**20
            lines.append(
                f"{row['name']:<18s} {engine:<9s} "
                f"{stats['wall_seconds']:>8.3f} {stats['passes']:>6d} "
                f"{stats['communities']:>7d} "
                f"{'ok' if stats['identical'] else 'DIFF':>7s} "
                f"{peak:>9.2f}")
        if "speedup_process_vs_threads" in row:
            lines.append(
                f"{'':<18s} speedup process vs threads: "
                f"{row['speedup_process_vs_threads']:.2f}x")
    return "\n".join(lines)


def main(
    *,
    graphs: Sequence[str] | None = None,
    workers: int = 4,
    seed: int = 42,
    output: str | None = None,
    min_speedup: float | None = None,
    relabel: str = "none",
) -> int:
    """CLI entry for ``repro bench --engines``.

    Fails (exit 1) when any engine's membership diverges from the batch
    oracle, or — with ``min_speedup`` — when the process engine's
    speedup over threading falls short on any graph.
    """
    report = run_engine_ab(
        graphs, workers=workers, seed=seed, relabel=relabel)
    print(format_engine_ab(report))
    if output:
        from pathlib import Path

        Path(output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"engine A/B report written to {output}")
    failed = False
    for row in report["graphs"]:
        # Only the process engine contracts oracle equality; the
        # threading engine's per-vertex semantics may differ legally.
        stats = row["engines"].get("process")
        if stats is not None and not stats["identical"]:
            print(f"error: process membership diverged from the "
                  f"batch oracle on {row['name']}")
            failed = True
        speedup = row.get("speedup_process_vs_threads")
        if (min_speedup is not None and speedup is not None
                and speedup < min_speedup):
            print(f"error: process speedup {speedup:.2f}x on "
                  f"{row['name']} is below the {min_speedup:.2f}x gate")
            failed = True
    return 1 if failed else 0
