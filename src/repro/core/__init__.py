"""GVE-Leiden core: the paper's primary contribution.

- :mod:`repro.core.config` — algorithm configuration and the paper's
  *default* / *medium* / *heavy* variants;
- :mod:`repro.core.local_move` — the local-moving phase (Algorithm 2);
- :mod:`repro.core.refine` — greedy/randomized refinement (Algorithm 3);
- :mod:`repro.core.aggregate` — CSR-based aggregation (Algorithm 4);
- :mod:`repro.core.leiden` — the pass driver (Algorithm 1);
- :mod:`repro.core.louvain` — GVE-Louvain (the in-house baseline the
  optimizations were first developed for);
- :mod:`repro.core.result` / :mod:`repro.core.dendrogram` — result types.
"""

from repro.core.config import LeidenConfig
from repro.core.dendrogram import Dendrogram
from repro.core.io_result import (
    load_membership_text,
    load_result_json,
    save_membership_text,
    save_result_json,
)
from repro.core.leiden import leiden
from repro.core.louvain import louvain
from repro.core.result import LeidenResult, PassStats

__all__ = [
    "LeidenConfig",
    "LeidenResult",
    "PassStats",
    "Dendrogram",
    "leiden",
    "louvain",
    "save_membership_text",
    "load_membership_text",
    "save_result_json",
    "load_result_json",
]
