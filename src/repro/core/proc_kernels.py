"""Pool kernels executed inside the ``process`` engine's workers.

This module is imported *by the workers* (each pool ships its import
path), so a task message never carries code or arrays — only the kernel
name and chunk bounds.  Every kernel operates on the arena segments the
parent bound before the phase:

==================== =====================================================
arena key            contents
==================== =====================================================
``offsets``          CSR row offsets (``n + 1`` int64)
``degrees``          per-vertex degree
``targets``          CSR edge targets
``weights``          CSR edge weights
``membership``       current community per vertex (mutated by the parent
                     between batch barriers; workers only read)
``vertex_weights``   ``K_i``
``quantities``       per-vertex move quantity (``K_i`` or ``s_i``)
``community_weights``/``…__ops``  Σ' as a :class:`SharedAtomicArray`
``batch``            vertex ids of the batch in flight
``best_community``   per-batch-position output: argmax community (or -1)
``best_delta``       per-batch-position output: its ΔQ
``scratch_maps``     ``(num_workers, n)`` kernel compaction maps — the
                     per-worker collision-free-hashtable scratch, in shm
``worker_stats``     ``(num_workers, 2)`` [edges scanned, tasks] tallies
==================== =====================================================

The scan kernel is the exact per-chunk restriction of
:func:`repro.core.local_move.local_move_batch`'s batch body.  Both
kernel families sum per-``(vertex, community)`` weights in CSR edge
order, candidate order per vertex is ascending community id, and the
quality delta is elementwise — so a chunk's outputs are bitwise
identical to the corresponding slice of a whole-batch evaluation, which
is what makes the process engine's membership independent of worker
count and bitwise-equal to the simulated batch oracle.
"""

from __future__ import annotations

import numpy as np

from repro.core.quality import Quality
from repro.core.workspace import KernelWorkspace
from repro.graph.segments import gather_rows
from repro.parallel.atomics import SharedAtomicArray
from repro.parallel.procpool import pool_kernel
from repro.types import ACCUM_DTYPE

__all__ = ["move_scan"]


def _workspace(ctx, n: int, dense_grid_limit: int) -> KernelWorkspace:
    """Per-worker workspace over this worker's shm scratch slab."""
    ws = ctx.scratch.get("move_ws")
    if ws is None or ws.num_vertices != n:
        ws = KernelWorkspace(
            n,
            engine="count",
            dense_grid_limit=dense_grid_limit,
            scratch_map=ctx["scratch_maps"][ctx.worker_id],
        )
        ctx.scratch["move_ws"] = ws
    return ws


@pool_kernel("move_scan")
def move_scan(
    ctx,
    *,
    lo: int,
    hi: int,
    m: float,
    quality: str,
    resolution: float,
    dense_grid_limit: int,
) -> int:
    """Best move per vertex for batch positions ``[lo, hi)``.

    Writes ``best_community``/``best_delta`` at the chunk's positions and
    returns the number of edges scanned (the chunk's ledger work).
    """
    arena = ctx.arena
    offsets = arena["offsets"]
    degrees = arena["degrees"]
    targets = arena["targets"]
    weights = arena["weights"]
    C = arena["membership"]
    K = arena["vertex_weights"]
    Q = arena["quantities"]
    Sigma = arena["community_weights"]
    best_c = arena["best_community"]
    best_dq = arena["best_delta"]
    vs = arena["batch"][lo:hi]

    best_c[lo:hi] = -1
    best_dq[lo:hi] = 0.0
    n = int(C.shape[0])
    ws = _workspace(ctx, n, int(dense_grid_limit))

    seg, dst, w = gather_rows(offsets, degrees, targets, weights, vs)
    edges = int(seg.shape[0])
    if edges:
        notself = dst != vs[seg]
        seg, dst, w = seg[notself], dst[notself], w[notself]
    if seg.shape[0]:
        # scanCommunities for the chunk: K_{i→c} per adjacent community.
        pseg, pcomm, psum = ws.pair_sums(seg, C[dst], w, vs.shape[0])
        d = C[vs]
        kid = np.zeros(vs.shape[0], dtype=ACCUM_DTYPE)
        own = pcomm == d[pseg]
        kid[pseg[own]] = psum[own]
        cand = ~own
        if cand.any():
            cseg = pseg[cand]
            cc = pcomm[cand]
            kic = psum[cand]
            mv_all = vs[cseg]
            qual = Quality(quality, resolution)
            dq = qual.delta(
                kic, kid[cseg], K[mv_all], Q[mv_all],
                Sigma[cc], Sigma[d[cseg]], m,
            )
            bseg, bidx = ws.argmax(cseg, dq)
            best_c[lo + bseg] = cc[bidx]
            best_dq[lo + bseg] = dq[bidx]

    # Real cross-process atomic accounting: scanned-edge work folds into
    # the parent's ledger/metrics after the batch barrier.
    if "worker_stats" in arena and ctx.lock is not None:
        stats = SharedAtomicArray(
            arena["worker_stats"].reshape(-1),
            arena["worker_stats__ops"], ctx.lock)
        base = 2 * ctx.worker_id
        stats.add_many(
            np.asarray([base, base + 1]), np.asarray([float(edges), 1.0]))
    return edges
