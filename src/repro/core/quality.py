"""Quality functions: modularity and the Constant Potts Model (CPM).

The paper optimizes modularity throughout, but notes (Section 2) that
modularity maximization suffers from the resolution limit, "which can be
overcome by using an alternative quality function, such as the Constant
Potts Model" (Traag et al. 2011).  Both objectives fit the same greedy
framework; they differ in the per-community aggregate they track and in
the delta of moving a vertex:

- **modularity** tracks the community's total edge weight ``Σ_c`` and

      ΔQ = (K_{i→c} − K_{i→d}) / m − γ K_i (K_i + Σ_c − Σ_d) / 2m²

- **CPM** tracks the community's total node size ``S_c`` (super-vertices
  carry the number of original vertices they contain) and, normalized by
  ``m`` so the paper's tolerance defaults remain meaningful,

      ΔH = [(K_{i→c} − K_{i→d}) − γ s_i (S_c − S_d + s_i)] / m

The phase kernels are parameterized by a :class:`Quality` instance: it
supplies the per-vertex quantity that moves carry between communities
(``K_i`` or ``s_i``) and the vectorized delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.metrics.partition import check_membership
from repro.types import ACCUM_DTYPE

__all__ = ["Quality", "cpm_quality"]

_KINDS = ("modularity", "cpm")


@dataclass(frozen=True)
class Quality:
    """A greedy-optimizable quality function."""

    kind: str = "modularity"
    resolution: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"quality must be one of {_KINDS}")
        if self.resolution <= 0:
            raise ConfigError("resolution must be positive")

    def vertex_quantity(self, vertex_weights, node_sizes):
        """Per-vertex amount that moves add/remove from the community
        aggregate: ``K_i`` for modularity, ``s_i`` for CPM."""
        if self.kind == "modularity":
            return vertex_weights
        return np.asarray(node_sizes, dtype=ACCUM_DTYPE)

    def delta(self, kic, kid, k_i, q_i, aux_c, aux_d, m):
        """Vectorized quality delta of moving ``i`` from ``d`` to ``c``.

        ``aux_*`` is the community aggregate (Σ or S) *before* the move;
        ``k_i`` the vertex weight; ``q_i`` the vertex quantity.
        """
        kic = np.asarray(kic, dtype=ACCUM_DTYPE)
        if self.kind == "modularity":
            return (kic - kid) / m - self.resolution * k_i * (
                k_i + aux_c - aux_d
            ) / (2.0 * m * m)
        return ((kic - kid) - self.resolution * q_i *
                (aux_c - aux_d + q_i)) / m


def cpm_quality(
    graph: CSRGraph,
    membership,
    *,
    resolution: float = 1.0,
    node_sizes=None,
) -> float:
    """CPM objective, normalized by ``m``:

        H/m = [ Σ_c e_c − γ Σ_c S_c (S_c − 1) / 2 ] / m

    where ``e_c`` is community ``c``'s intra-community undirected edge
    weight (self-loops count once) and ``S_c`` its total node size.
    ``node_sizes`` defaults to all ones (flat graphs).
    """
    C = check_membership(membership, graph.num_vertices)
    m = graph.m
    if graph.num_vertices == 0 or m <= 0:
        return 0.0
    src, dst, wgt = graph.to_coo()
    same = C[src] == C[dst]
    loops = src == dst
    # Stored both directions: halve non-loop intra weight.
    e_total = float(
        wgt[same & ~loops].sum(dtype=ACCUM_DTYPE) / 2.0
        + wgt[same & loops].sum(dtype=ACCUM_DTYPE)
    )
    if node_sizes is None:
        sizes = np.ones(graph.num_vertices, dtype=ACCUM_DTYPE)
    else:
        sizes = np.asarray(node_sizes, dtype=ACCUM_DTYPE)
    S = np.bincount(C, weights=sizes)
    penalty = float(resolution * (S * (S - 1.0) / 2.0).sum())
    return (e_total - penalty) / m
