"""Local-moving phase of GVE-Leiden (Algorithm 2).

Each vertex greedily joins the adjacent community with the highest
positive delta-modularity.  Optimizations from the paper:

- **flag-based vertex pruning** — a vertex is marked processed when
  visited and its neighbors are re-marked unprocessed whenever it moves;
- **asynchronous updates** — vertices observe the latest memberships;
- **per-thread collision-free hashtables** hold the ``K_{i→c}`` sums;
- ``Σ'`` updates are atomic (counted for the machine model);
- iteration cap ``MAX_ITERATIONS`` and tolerance τ on the summed ΔQ.

Two engines are provided.  ``local_move_loop`` is the literal per-vertex
algorithm with an explicit hashtable — the reference semantics.
``local_move_batch`` is the production path: it vectorizes whole batches
of vertices against one snapshot of the memberships.  To keep batch
decisions as independent as the asynchronous algorithm's, batches are
drawn from the classes of a proper graph coloring (a parallel-Louvain
technique the paper cites from Grappolo): adjacent vertices never share a
snapshot, which removes the community-swap oscillations synchronous
updates suffer from.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.quality import Quality
from repro.core.result import PHASE_LOCAL_MOVE
from repro.core.workspace import KernelWorkspace
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows
from repro.parallel.atomics import AtomicArray
from repro.parallel.coloring import color_classes, color_graph
from repro.parallel.hashtable import CollisionFreeHashtable
from repro.parallel.runtime import Runtime
from repro.types import ACCUM_DTYPE

__all__ = ["local_move_batch", "local_move_loop", "scan_communities"]

#: Bookkeeping work units charged per visited vertex on top of its degree.
VERTEX_COST = 4.0


def local_move_batch(
    graph: CSRGraph,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    tolerance: float,
    *,
    runtime: Runtime,
    max_iterations: int = 20,
    batch_size: int = 4096,
    resolution: float = 1.0,
    color_seed: int = 0,
    quality: Quality | None = None,
    quantities=None,
    unprocessed_mask: np.ndarray | None = None,
    pruning: bool = True,
    order_ranks: np.ndarray | None = None,
    workspace: KernelWorkspace | None = None,
    phase: str = PHASE_LOCAL_MOVE,
) -> Tuple[int, float]:
    """Vectorized local-moving phase; mutates ``membership`` and
    ``community_weights`` in place.

    ``workspace`` supplies the preallocated kernel scratch buffers and
    selects the kernel family (counting vs. sort); by default a fresh
    counting workspace is created for the call.

    ``order_ranks`` (an inverse permutation) orders the vertices *within*
    each color class; by default ascending vertex id.

    ``pruning=False`` disables the flag-based vertex pruning (every
    iteration revisits every vertex) — the ablation knob for the paper's
    pruning optimization.

    ``unprocessed_mask`` seeds the pruning flags: only vertices marked
    True start unprocessed (the dynamic-update frontier); by default all
    vertices do.  Pruning then propagates work to neighbours of movers
    exactly as in the static algorithm.

    ``community_weights`` is the community aggregate of the active
    quality function (Σ for modularity, S for CPM) and ``quantities``
    the per-vertex amount moves carry (defaults to the vertex weights —
    the modularity convention).

    Returns ``(iterations, last_iteration_delta_q)``.
    """
    n = graph.num_vertices
    if n == 0:
        return 1, 0.0
    m = graph.m
    if m <= 0:
        return 1, 0.0
    C = membership
    K = vertex_weights
    Sigma = community_weights
    offsets = graph.offsets[:-1]
    degrees = graph.degrees
    targets = graph.targets
    weights = graph.weights
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities
    ws = workspace if workspace is not None else KernelWorkspace(n)

    tracer = runtime.tracer
    metrics = runtime.metrics
    m_pruned = metrics.counter(
        "leiden_pruning_vertices_total",
        "vertices visited vs. skipped by flag-based pruning", ("outcome",))
    mp_visited = m_pruned.labels("visited")
    mp_skipped = m_pruned.labels("skipped")
    m_moves = metrics.counter(
        "leiden_local_moves_total", "community moves applied")
    m_iters = metrics.counter(
        "leiden_move_iterations_total", "local-moving iterations executed")
    m_dq = metrics.counter(
        "leiden_move_delta_q_total", "summed delta-Q of applied moves")
    classes = color_classes(color_graph(graph, seed=color_seed))
    if order_ranks is not None:
        classes = [cls[np.argsort(order_ranks[cls], kind="stable")]
                   for cls in classes]
    runtime.record_parallel(degrees.astype(np.float64), phase=phase)
    if tracer.enabled:
        tracer.count("color_classes", len(classes))
        for cls in classes:
            tracer.observe("color_class_size", cls.shape[0])

    if unprocessed_mask is None:
        processed = np.zeros(n, dtype=bool)
    else:
        processed = ~np.asarray(unprocessed_mask, dtype=bool)
    iterations = 0
    total_dq = 0.0
    for it in range(max_iterations):
        iterations = it + 1
        if not pruning and it > 0:
            processed[:] = False
        total_dq = 0.0
        moves = 0
        visited_iter = 0
        iter_costs = []
        for cls in classes:
            pending = cls[~processed[cls]]
            visited_iter += int(pending.shape[0])
            if metrics.enabled:
                mp_visited.inc(pending.shape[0])
                mp_skipped.inc(cls.shape[0] - pending.shape[0])
            if tracer.enabled:
                tracer.count("pruning_visited", pending.shape[0])
                tracer.count("pruning_skipped",
                             cls.shape[0] - pending.shape[0])
            for lo in range(0, pending.shape[0], batch_size):
                vs = pending[lo : lo + batch_size]
                if tracer.enabled:
                    tracer.observe("batch_size", vs.shape[0])
                processed[vs] = True  # prune (Algorithm 2, line 6)
                iter_costs.append(degrees[vs].astype(np.float64) + VERTEX_COST)
                seg, dst, w = gather_rows(offsets, degrees, targets, weights, vs)
                if seg.shape[0] == 0:
                    continue
                notself = dst != vs[seg]
                seg, dst, w = seg[notself], dst[notself], w[notself]
                if seg.shape[0] == 0:
                    continue
                # scanCommunities: K_{i→c} for every adjacent community.
                pseg, pcomm, psum = ws.pair_sums(seg, C[dst], w, vs.shape[0])
                d = C[vs]
                kid = np.zeros(vs.shape[0], dtype=ACCUM_DTYPE)
                own = pcomm == d[pseg]
                kid[pseg[own]] = psum[own]
                cand = ~own
                if not cand.any():
                    continue
                cseg = pseg[cand]
                cc = pcomm[cand]
                kic = psum[cand]
                mv_all = vs[cseg]
                dq = qual.delta(
                    kic, kid[cseg], K[mv_all], Q[mv_all],
                    Sigma[cc], Sigma[d[cseg]], m,
                )
                bseg, bidx = ws.argmax(cseg, dq)
                keep = dq[bidx] > 0.0
                if not keep.any():
                    continue
                mseg = bseg[keep]
                mv = vs[mseg]
                mc = cc[bidx[keep]].astype(C.dtype)
                kmv = Q[mv]
                # Σ updates are the atomic adds of Algorithm 2, line 12
                # (bincount-based scatter; ufunc.at is far slower).
                ws.scatter_add(
                    Sigma,
                    np.concatenate([d[mseg], mc]),
                    np.concatenate([-kmv, kmv]),
                )
                C[mv] = mc
                total_dq += float(dq[bidx[keep]].sum())
                moves += int(mv.shape[0])
                # Mark neighbors of movers as unprocessed (line 14).
                mflag = np.zeros(vs.shape[0], dtype=bool)
                mflag[mseg] = True
                processed[dst[mflag[seg]]] = False
        if iter_costs:
            runtime.record_parallel(
                np.concatenate(iter_costs), phase=phase, atomics=2.0 * moves
            )
        if metrics.enabled:
            m_iters.inc()
            m_moves.inc(moves)
            m_dq.inc(total_dq)
        if tracer.enabled:
            tracer.count("move_iterations")
            tracer.count("local_moves", moves)
            # Convergence monitor: per-iteration ΔQ and vertices visited
            # (pruning effectiveness) as ordered series on the open span.
            tracer.record("move_delta_q", total_dq)
            tracer.record("move_visited", visited_iter)
        if runtime.profiler.enabled:
            runtime.profiler.mark("move_delta_q", total_dq)
        if total_dq <= tolerance:
            break
    return iterations, total_dq


def scan_communities(
    table: CollisionFreeHashtable,
    graph: CSRGraph,
    membership: np.ndarray,
    vertex: int,
    include_self: bool,
) -> CollisionFreeHashtable:
    """``scanCommunities`` of Algorithm 2: fill ``table`` with ``K_{i→c}``."""
    dst, wgt = graph.edges(vertex)
    for j, w in zip(dst.tolist(), wgt.tolist()):
        if not include_self and j == vertex:
            continue
        table.accumulate(int(membership[j]), float(w))
    return table


def local_move_loop(
    graph: CSRGraph,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    tolerance: float,
    *,
    runtime: Runtime,
    max_iterations: int = 20,
    resolution: float = 1.0,
    quality: Quality | None = None,
    quantities=None,
    unprocessed_mask: np.ndarray | None = None,
    pruning: bool = True,
    order: np.ndarray | None = None,
    phase: str = PHASE_LOCAL_MOVE,
) -> Tuple[int, float]:
    """Reference per-vertex local-moving phase (exact Algorithm 2).

    Vertices are processed strictly in ascending id order with immediate
    visibility of every move — the fully asynchronous semantics.  Uses one
    collision-free hashtable per (simulated) thread and atomic Σ updates.
    """
    n = graph.num_vertices
    if n == 0:
        return 1, 0.0
    m = graph.m
    if m <= 0:
        return 1, 0.0
    C = membership
    K = vertex_weights
    Sigma = AtomicArray(community_weights)
    tables = runtime.hashtables(n)
    tracer = runtime.tracer
    metrics = runtime.metrics
    m_pruned = metrics.counter(
        "leiden_pruning_vertices_total",
        "vertices visited vs. skipped by flag-based pruning", ("outcome",))
    m_moves = metrics.counter(
        "leiden_local_moves_total", "community moves applied")
    m_iters = metrics.counter(
        "leiden_move_iterations_total", "local-moving iterations executed")
    m_dq = metrics.counter(
        "leiden_move_delta_q_total", "summed delta-Q of applied moves")
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities

    if unprocessed_mask is None:
        processed = np.zeros(n, dtype=bool)
    else:
        processed = ~np.asarray(unprocessed_mask, dtype=bool)
    iterations = 0
    total_dq = 0.0
    for it in range(max_iterations):
        iterations = it + 1
        if not pruning and it > 0:
            processed[:] = False
        total_dq = 0.0
        work = np.zeros(n, dtype=np.float64)
        moves = 0
        sequence = range(n) if order is None else order.tolist()
        for i in sequence:
            if processed[i]:
                continue
            processed[i] = True
            table = tables[i % len(tables)]
            table.clear()
            scan_communities(table, graph, C, i, include_self=False)
            work[i] = graph.degree(i) + VERTEX_COST
            if len(table) == 0:
                continue
            d = int(C[i])
            kid = table.get(d)
            ki = float(K[i])
            qi = float(Q[i])
            best_c, best_dq = -1, 0.0
            for c, kic in table.items():
                if c == d:
                    continue
                dq = float(qual.delta(kic, kid, ki, qi,
                                      float(Sigma[c]), float(Sigma[d]), m))
                if dq > best_dq:
                    best_c, best_dq = c, dq
            if best_c < 0:
                continue
            Sigma.add(d, -qi)
            Sigma.add(best_c, qi)
            C[i] = best_c
            total_dq += best_dq
            moves += 1
            neighbors = graph.neighbors(i)
            processed[neighbors] = False
            processed[i] = True
        runtime.record_parallel(
            work[work > 0], phase=phase, atomics=2.0 * moves
        )
        if metrics.enabled:
            visited = int(np.count_nonzero(work))
            m_iters.inc()
            m_moves.inc(moves)
            m_dq.inc(total_dq)
            m_pruned.labels("visited").inc(visited)
            m_pruned.labels("skipped").inc(n - visited)
        if tracer.enabled:
            visited = int(np.count_nonzero(work))
            tracer.count("move_iterations")
            tracer.count("local_moves", moves)
            tracer.count("pruning_visited", visited)
            tracer.count("pruning_skipped", n - visited)
            tracer.record("move_delta_q", total_dq)
            tracer.record("move_visited", visited)
        if runtime.profiler.enabled:
            runtime.profiler.mark("move_delta_q", total_dq)
        if total_dq <= tolerance:
            break
    return iterations, total_dq
