"""Result types returned by :func:`repro.core.leiden.leiden`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.dendrogram import Dendrogram
from repro.metrics.partition import count_communities
from repro.parallel.simthread import WorkLedger

#: Phase tags used across the library (Figure 7's split).
PHASE_LOCAL_MOVE = "local_move"
PHASE_REFINE = "refine"
PHASE_AGGREGATE = "aggregate"
PHASE_OTHER = "other"
ALL_PHASES = (PHASE_LOCAL_MOVE, PHASE_REFINE, PHASE_AGGREGATE, PHASE_OTHER)


@dataclass
class PassStats:
    """Per-pass accounting (Figure 7(b) pass split)."""

    index: int
    num_vertices: int
    num_communities: int
    move_iterations: int
    refine_moves: int
    tolerance: float
    #: Wall-clock seconds per phase for this pass.
    wall_phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Work-ledger regions recorded during this pass only.
    ledger: WorkLedger = field(default_factory=WorkLedger)

    @property
    def wall_seconds(self) -> float:
        return sum(self.wall_phase_seconds.values())


@dataclass
class LeidenResult:
    """Communities plus full per-phase / per-pass instrumentation."""

    #: Final community id per original vertex (compact ids).
    membership: np.ndarray
    #: Per-pass community mappings.
    dendrogram: Dendrogram
    #: Per-pass statistics, in execution order.
    passes: List[PassStats]
    #: Work ledger of the whole run (all passes merged).
    ledger: WorkLedger
    #: Total wall-clock seconds (Python execution — *not* modelled time).
    wall_seconds: float
    #: Wall-clock seconds per phase, summed over passes.
    wall_phase_seconds: Dict[str, float]
    #: Layout the solve ran under (:class:`repro.graph.relabel.
    #: Relabeling`) when ``config.relabel != "none"``; ``membership``
    #: and the dendrogram are always expressed in *original* vertex
    #: ids regardless.  ``None`` for the default identity layout.
    relabeling: object | None = None

    @property
    def num_passes(self) -> int:
        return len(self.passes)

    @property
    def num_communities(self) -> int:
        """|Γ| of the final membership (Table 2's last column)."""
        return count_communities(self.membership)

    def modeled_time(self, machine, num_threads: int):
        """Modelled runtime on ``machine`` at ``num_threads`` threads."""
        return self.ledger.simulate(machine, num_threads)

    def membership_at_pass(self, pass_index: int) -> np.ndarray:
        """Original-vertex membership after pass ``pass_index``.

        Exposes the community hierarchy: pass 0 is the finest level the
        algorithm committed, the last pass equals ``membership`` (up to
        renumbering).  Negative indices count from the end.
        """
        levels = self.dendrogram.num_levels
        if pass_index < 0:
            pass_index += levels
        if not 0 <= pass_index < levels:
            raise IndexError(
                f"pass {pass_index} out of range for {levels} levels"
            )
        return self.dendrogram.flatten(upto=pass_index + 1)

    def hierarchy(self) -> List[np.ndarray]:
        """All levels of the community hierarchy, finest to coarsest."""
        return self.dendrogram.memberships()

    def phase_fractions_wall(self) -> Dict[str, float]:
        """Wall-clock phase split, normalized (Figure 7(a))."""
        total = sum(self.wall_phase_seconds.values())
        if total <= 0:
            return {p: 0.0 for p in self.wall_phase_seconds}
        return {p: s / total for p, s in self.wall_phase_seconds.items()}

    def pass_fractions_wall(self) -> List[float]:
        """Wall-clock pass split, normalized (Figure 7(b))."""
        totals = [p.wall_seconds for p in self.passes]
        s = sum(totals)
        return [t / s for t in totals] if s > 0 else [0.0] * len(totals)
