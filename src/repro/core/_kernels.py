"""Shared segmented-array kernels for the batch-parallel phases.

The batch engine processes a *batch* of vertices at once — the set of
vertices the OpenMP threads would have in flight concurrently.  Per batch
it needs two primitives, both implemented with sort + ``reduceat`` so no
Python-level loop touches edges:

- :func:`segment_pair_sums` — the vectorized equivalent of filling the
  per-thread hashtables: total edge weight from each batch vertex to each
  adjacent community (``K_{i→c}`` for all *c* at once);
- :func:`segmented_argmax` — "best community linked to i" across a batch.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.types import ACCUM_DTYPE

__all__ = ["segment_pair_sums", "segmented_argmax"]


def segment_pair_sums(
    seg: np.ndarray,
    comm: np.ndarray,
    weights: np.ndarray,
    num_communities: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``weights`` grouped by ``(seg, comm)`` pairs.

    Returns ``(pair_seg, pair_comm, pair_sum)`` sorted by ``(seg, comm)``.
    ``seg`` values must be small non-negative ints (batch positions);
    ``comm`` values must be < ``num_communities``.
    """
    if seg.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=ACCUM_DTYPE)
    key = seg.astype(np.int64) * np.int64(num_communities) + comm
    order = np.argsort(key, kind="stable")
    ksort = key[order]
    wsort = weights[order].astype(ACCUM_DTYPE)
    boundary = np.empty(ksort.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(ksort[1:], ksort[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    sums = np.add.reduceat(wsort, starts)
    ukey = ksort[starts]
    return ukey // num_communities, ukey % num_communities, sums


def segmented_argmax(
    seg: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Argmax of ``values`` within each segment.

    ``seg`` need not be sorted.  Returns ``(segments, argmax_indices)``:
    for each distinct segment id (ascending), the index into the input
    arrays of its maximum value.  Ties break toward the entry that sorts
    last among equals — deterministic given the inputs.
    """
    if seg.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.lexsort((values, seg))
    seg_sorted = seg[order]
    is_last = np.empty(seg_sorted.shape[0], dtype=bool)
    is_last[-1] = True
    np.not_equal(seg_sorted[1:], seg_sorted[:-1], out=is_last[:-1])
    last_pos = np.flatnonzero(is_last)
    return seg_sorted[last_pos], order[last_pos]
