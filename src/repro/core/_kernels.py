"""Shared segmented-array kernels for the batch-parallel phases.

The batch engine processes a *batch* of vertices at once — the set of
vertices the OpenMP threads would have in flight concurrently.  Per batch
it needs two primitives:

- :func:`segment_pair_sums` — the vectorized equivalent of filling the
  per-thread hashtables: total edge weight from each batch vertex to each
  adjacent community (``K_{i→c}`` for all *c* at once);
- :func:`segmented_argmax` — "best community linked to i" across a batch.

Two interchangeable kernel families implement them:

- the **sort** family (``*_sort`` / the historical default) builds
  ``seg * n + comm`` int64 keys and pays an O(E log E) ``argsort`` /
  ``lexsort`` per batch — the reference implementation and
  differential-testing oracle;
- the **count** family (``*_count`` / ``*_sorted``) is the faithful
  analogue of the paper's preallocated collision-free hashtables: the
  ≤E distinct adjacent communities of a batch are first *compacted* to a
  dense ``0..u`` range through a scatter map (:func:`compact_keys`),
  weights then accumulate with ``bincount`` over the small
  ``num_segments * u`` grid — O(E + grid), no comparison sort — falling
  back to a stable counting/radix argsort on the *compacted* key (far
  smaller magnitude, hence fewer radix passes) when the grid would
  outgrow the edge count.

Both families are element-exact equivalents: same pairs, same order
(ascending ``(seg, comm)``), bitwise-identical sums (``bincount`` and the
stable sort + ``reduceat`` add same-key weights in input order) and the
same tie-breaking.  The count family expects its scratch map from a
:class:`repro.core.workspace.KernelWorkspace`, which preallocates it once
per Leiden pass exactly like the paper allocates its per-thread
hashtables once up front.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.types import ACCUM_DTYPE

__all__ = [
    "DENSE_GRID_LIMIT",
    "compact_keys",
    "group_starts",
    "scatter_add",
    "segment_pair_sums",
    "segment_pair_sums_count",
    "segment_pair_sums_sort",
    "segmented_argmax",
    "segmented_argmax_sorted",
]

#: Hard cap on the dense ``bincount`` accumulation grid (entries).  Above
#: it the count kernels switch to the compacted-key stable sort, keeping
#: peak scratch memory bounded regardless of batch shape.
DENSE_GRID_LIMIT = 1 << 23

#: Dense accumulation is used while ``grid <= DENSE_GRID_FACTOR * E``:
#: below that the zero/scan cost of the grid is dominated by the O(E)
#: scatter passes, exactly like a collision-free hashtable whose capacity
#: is a small multiple of its occupancy.
DENSE_GRID_FACTOR = 4


def group_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Indices where each run of equal values starts (``sorted_keys`` sorted)."""
    boundary = np.empty(sorted_keys.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)


def compact_keys(
    keys: np.ndarray,
    scratch_map: Optional[np.ndarray] = None,
    *,
    domain: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Map ``keys`` onto a dense ``0..u-1`` range, ascending-order preserving.

    Returns ``(compact, uniques)`` with ``uniques`` sorted ascending and
    ``uniques[compact] == keys``.  ``scratch_map`` is an int64 scratch
    array covering the key domain (one slot per possible key — the
    collision-free-hashtable "keys" array); when omitted, a fresh one of
    ``domain`` (default ``keys.max() + 1``) slots is allocated.  Only the
    ≤E slots named by ``keys`` are ever touched, so a preallocated map
    never needs clearing between calls: cost is O(E + u log u).
    """
    num = keys.shape[0]
    if num == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    if scratch_map is None:
        size = int(domain) if domain is not None else int(keys.max()) + 1
        scratch_map = np.empty(size, dtype=np.int64)
    positions = np.arange(num, dtype=np.int64)
    scratch_map[keys] = positions  # last occurrence of each key wins
    uniques = np.sort(keys[scratch_map[keys] == positions])
    scratch_map[uniques] = np.arange(uniques.shape[0], dtype=np.int64)
    return scratch_map[keys], uniques


def scatter_add(
    target: np.ndarray,
    idx: np.ndarray,
    weights: np.ndarray,
    scratch_map: Optional[np.ndarray] = None,
) -> None:
    """``target[idx] += weights`` with repeated indices, via ``bincount``.

    The bincount-based replacement for the hot-path ``np.add.at``
    scatter.  When the target is small relative to the update count the
    sums accumulate over the whole target directly (one ``bincount``, no
    compaction); for large sparse targets the duplicate indices are
    first compacted to a dense range so only the ≤len(idx) distinct
    slots are touched.
    """
    if idx.shape[0] == 0:
        return
    if target.shape[0] <= max(DENSE_GRID_FACTOR * idx.shape[0], 1024):
        target += np.bincount(
            idx, weights=weights, minlength=target.shape[0]
        )
        return
    compact, uniques = compact_keys(
        idx, scratch_map, domain=target.shape[0]
    )
    target[uniques] += np.bincount(
        compact, weights=weights, minlength=uniques.shape[0]
    )


def segment_pair_sums(
    seg: np.ndarray,
    comm: np.ndarray,
    weights: np.ndarray,
    num_communities: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sum ``weights`` grouped by ``(seg, comm)`` pairs (sort kernel).

    Returns ``(pair_seg, pair_comm, pair_sum)`` sorted by ``(seg, comm)``.
    ``seg`` values must be small non-negative ints (batch positions);
    ``comm`` values must be < ``num_communities``.
    """
    return segment_pair_sums_sort(seg, comm, weights, num_communities)


def segment_pair_sums_sort(
    seg: np.ndarray,
    comm: np.ndarray,
    weights: np.ndarray,
    num_communities: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """O(E log E) reference implementation over ``seg * n + comm`` keys."""
    if seg.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=ACCUM_DTYPE)
    key = seg.astype(np.int64) * np.int64(num_communities) + comm
    order = np.argsort(key, kind="stable")
    ksort = key[order]
    wsort = weights[order].astype(ACCUM_DTYPE)
    starts = group_starts(ksort)
    sums = np.add.reduceat(wsort, starts)
    ukey = ksort[starts]
    return ukey // num_communities, ukey % num_communities, sums


def segment_pair_sums_count(
    seg: np.ndarray,
    comm: np.ndarray,
    weights: np.ndarray,
    num_segments: int,
    scratch_map: Optional[np.ndarray] = None,
    *,
    num_communities: Optional[int] = None,
    dense_grid_limit: int = DENSE_GRID_LIMIT,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """O(E) counting-sort implementation over *compacted* community keys.

    Element-exact equivalent of :func:`segment_pair_sums_sort` (same
    pairs, same order, bitwise-identical sums).  ``seg`` need not be
    sorted; ``num_segments`` bounds its values.  ``scratch_map`` is the
    workspace compaction map (int64, one slot per community id); pass
    ``num_communities`` instead to let the kernel allocate one.
    """
    num = seg.shape[0]
    if num == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, np.empty(0, dtype=ACCUM_DTYPE)
    compact, uniques = compact_keys(
        comm, scratch_map, domain=num_communities
    )
    u = uniques.shape[0]
    key = seg.astype(np.int64) * np.int64(u) + compact
    grid = int(num_segments) * u
    if grid <= max(DENSE_GRID_FACTOR * num, 1024) and grid <= dense_grid_limit:
        # Dense accumulation: the batch's collision-free hashtables, all
        # at once.  Occupancy (not the sum) selects live pairs so that
        # zero-weight groups survive exactly as they do under the sort.
        occupancy = np.bincount(key, minlength=grid)
        sums = np.bincount(key, weights=weights, minlength=grid)
        live = np.flatnonzero(occupancy)
        pair_seg = live // u
        pair_comm = uniques[live - pair_seg * u].astype(np.int64)
        return pair_seg, pair_comm, sums[live]
    # Counting-sort fallback: a stable radix argsort over the *compacted*
    # key — far smaller magnitude than seg * n + comm, so fewer passes —
    # keeps worst-case batches (huge distinct-community counts) bounded.
    if grid <= np.iinfo(np.int32).max:
        key = key.astype(np.int32)
    order = np.argsort(key, kind="stable")
    ksort = key[order]
    wsort = weights[order].astype(ACCUM_DTYPE)
    starts = group_starts(ksort)
    sums = np.add.reduceat(wsort, starts)
    ukey = ksort[starts].astype(np.int64)
    pair_seg = ukey // u
    pair_comm = uniques[ukey - pair_seg * u].astype(np.int64)
    return pair_seg, pair_comm, sums


def segmented_argmax(
    seg: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Argmax of ``values`` within each segment (sort kernel).

    ``seg`` need not be sorted.  Returns ``(segments, argmax_indices)``:
    for each distinct segment id (ascending), the index into the input
    arrays of its maximum value.  Ties break toward the entry that sorts
    last among equals — deterministic given the inputs.
    """
    if seg.shape[0] == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.lexsort((values, seg))
    seg_sorted = seg[order]
    is_last = np.empty(seg_sorted.shape[0], dtype=bool)
    is_last[-1] = True
    np.not_equal(seg_sorted[1:], seg_sorted[:-1], out=is_last[:-1])
    last_pos = np.flatnonzero(is_last)
    return seg_sorted[last_pos], order[last_pos]


def segmented_argmax_sorted(
    seg: np.ndarray, values: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """O(E) argmax for *sorted* ``seg`` — no lexsort.

    Exact equivalent of :func:`segmented_argmax` when ``seg`` is
    non-decreasing (which the pair-sum outputs guarantee): one
    ``maximum.reduceat`` finds each segment's maximum, a second picks the
    last input position attaining it — the identical tie-break.
    """
    num = seg.shape[0]
    if num == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    boundary = np.empty(num, dtype=bool)
    boundary[0] = True
    np.not_equal(seg[1:], seg[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    group_id = np.cumsum(boundary) - 1
    maxima = np.maximum.reduceat(values, starts)
    at_max = np.where(
        values == maxima[group_id], np.arange(num, dtype=np.int64), -1
    )
    best = np.maximum.reduceat(at_max, starts)
    return seg[starts].astype(np.int64), best
