"""Local-moving phase on real worker *processes* (the ``process`` engine).

This is the first engine that actually sidesteps the GIL: the per-batch
``scanCommunities`` + argmax work — the dominant cost of Algorithm 2 —
is fanned out to a persistent :class:`~repro.parallel.procpool.
ProcessPool` whose workers map the CSR arrays, membership, Σ' and kernel
scratch from :class:`~repro.parallel.shm.ShmArena` segments (numpy
views, zero-copy).  Task messages carry only chunk bounds.

Determinism contract — the reason membership is *bitwise identical* to
the simulated batch oracle at any worker count:

1. color classes, intra-class order and batch boundaries are computed in
   the parent, exactly as :func:`~repro.core.local_move.local_move_batch`
   computes them;
2. within one batch every worker evaluates its chunk against the same
   frozen ``C``/``Σ`` snapshot (the parent only mutates state between
   batch barriers), and the chunk computation is the exact per-chunk
   restriction of the batch kernels — per-(vertex, community) sums
   accumulate in CSR edge order, candidate order and argmax tie-breaks
   are per-vertex, so chunk boundaries cannot change any output bit;
3. the parent applies the returned moves in batch position order with
   the same ``scatter_add`` the batch engine uses.

The pool's seeded task-dispatch permutation makes the *schedule*
reproducible too, but correctness never depends on which worker ran
which chunk — results are position-addressed in shared output arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.local_move import VERTEX_COST
from repro.core.quality import Quality
from repro.core.result import PHASE_LOCAL_MOVE
from repro.core.workspace import KernelWorkspace
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows
from repro.parallel.coloring import color_classes, color_graph
from repro.parallel.procpool import ProcessPool
from repro.parallel.runtime import Runtime
from repro.parallel.schedule import Schedule, chunk_spans
from repro.parallel.shm import ShmArena

__all__ = ["local_move_process"]

#: Arena keys bound for the move phase (see proc_kernels for semantics).
_STATE_KEYS = ("membership", "vertex_weights", "quantities",
               "community_weights")


def _build_arena(
    graph: CSRGraph,
    pool: ProcessPool,
    C: np.ndarray,
    K: np.ndarray,
    Q: np.ndarray,
    Sigma: np.ndarray,
    *,
    memory=None,
    phase: str = PHASE_LOCAL_MOVE,
) -> ShmArena:
    """Lay the phase state out in shared memory (one copy per pass)."""
    n = graph.num_vertices
    arena = ShmArena(memory=memory, phase=phase)
    try:
        arena.from_array("offsets", graph.offsets)
        arena.from_array("degrees", graph.degrees)
        arena.from_array("targets", graph.targets)
        arena.from_array("weights", graph.weights)
        arena.from_array("membership", C)
        arena.from_array("vertex_weights", K)
        arena.from_array("quantities", Q)
        arena.from_array("community_weights", Sigma)
        arena.create("batch", (max(n, 1),), np.int64)
        arena.create("best_community", (max(n, 1),), np.int64)
        arena.create("best_delta", (max(n, 1),), np.float64)
        arena.create("scratch_maps", (pool.num_workers, max(n, 1)), np.int64,
                     per_worker=pool.num_workers)
        arena.create("worker_stats", (pool.num_workers, 2), np.float64,
                     per_worker=pool.num_workers)
        arena.create("worker_stats__ops", (1,), np.float64)
    except Exception:
        arena.unlink()
        raise
    return arena


def local_move_process(
    graph: CSRGraph,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    tolerance: float,
    *,
    runtime: Runtime,
    pool: ProcessPool | None = None,
    max_iterations: int = 20,
    batch_size: int = 4096,
    resolution: float = 1.0,
    color_seed: int = 0,
    quality: Quality | None = None,
    quantities=None,
    unprocessed_mask: np.ndarray | None = None,
    pruning: bool = True,
    order_ranks: np.ndarray | None = None,
    workspace: KernelWorkspace | None = None,
    phase: str = PHASE_LOCAL_MOVE,
) -> Tuple[int, float]:
    """Process-parallel local-moving; mutates ``membership`` and
    ``community_weights`` in place.  Returns ``(iterations, last_dq)``.

    Semantically equivalent (bitwise, on the membership) to
    :func:`~repro.core.local_move.local_move_batch` with the counting
    kernels; see the module docstring for why.
    """
    n = graph.num_vertices
    if n == 0:
        return 1, 0.0
    m = graph.m
    if m <= 0:
        return 1, 0.0
    pool = pool if pool is not None else runtime.procpool()
    C = membership
    K = vertex_weights
    Sigma = community_weights
    degrees = graph.degrees
    offsets = graph.offsets
    targets = graph.targets
    weights = graph.weights
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities
    ws = workspace if workspace is not None else KernelWorkspace(n)

    tracer = runtime.tracer
    metrics = runtime.metrics
    profiler = runtime.profiler
    m_pruned = metrics.counter(
        "leiden_pruning_vertices_total",
        "vertices visited vs. skipped by flag-based pruning", ("outcome",))
    mp_visited = m_pruned.labels("visited")
    mp_skipped = m_pruned.labels("skipped")
    m_moves = metrics.counter(
        "leiden_local_moves_total", "community moves applied")
    m_iters = metrics.counter(
        "leiden_move_iterations_total", "local-moving iterations executed")
    m_dq = metrics.counter(
        "leiden_move_delta_q_total", "summed delta-Q of applied moves")
    m_tasks = metrics.counter(
        "proc_pool_tasks_total",
        "chunk tasks dispatched to the worker-process pool", ("phase",))
    m_shm = metrics.counter(
        "mem_shm_bytes_total",
        "bytes laid out in shared-memory arenas", ("phase",))
    m_wedges = metrics.counter(
        "proc_worker_edges_total",
        "edges scanned inside pool workers, by worker", ("worker",))

    classes = color_classes(color_graph(graph, seed=color_seed))
    if order_ranks is not None:
        classes = [cls[np.argsort(order_ranks[cls], kind="stable")]
                   for cls in classes]
    runtime.record_parallel(degrees.astype(np.float64), phase=phase)
    if tracer.enabled:
        tracer.count("color_classes", len(classes))
        for cls in classes:
            tracer.observe("color_class_size", cls.shape[0])

    if unprocessed_mask is None:
        processed = np.zeros(n, dtype=bool)
    else:
        processed = ~np.asarray(unprocessed_mask, dtype=bool)

    iterations = 0
    total_dq = 0.0
    payload_const = {
        "m": float(m),
        "quality": qual.kind,
        "resolution": float(qual.resolution),
        "dense_grid_limit": int(ws.dense_grid_limit),
    }
    split = Schedule("static", 1)
    with _build_arena(graph, pool, C, K, Q, Sigma,
                      memory=runtime.memory, phase=phase) as arena:
        if metrics.enabled:
            m_shm.labels(phase).inc(arena.nbytes)
        C_shm = arena["membership"]
        Sigma_shm = arena["community_weights"]
        batch_buf = arena["batch"]
        best_c_buf = arena["best_community"]
        best_dq_buf = arena["best_delta"]
        pool.bind(arena.spec())
        try:
            for it in range(max_iterations):
                iterations = it + 1
                if not pruning and it > 0:
                    processed[:] = False
                total_dq = 0.0
                moves = 0
                visited_iter = 0
                iter_costs = []
                for cls in classes:
                    pending = cls[~processed[cls]]
                    visited_iter += int(pending.shape[0])
                    if metrics.enabled:
                        mp_visited.inc(pending.shape[0])
                        mp_skipped.inc(cls.shape[0] - pending.shape[0])
                    if tracer.enabled:
                        tracer.count("pruning_visited", pending.shape[0])
                        tracer.count("pruning_skipped",
                                     cls.shape[0] - pending.shape[0])
                    for lo in range(0, pending.shape[0], batch_size):
                        vs = pending[lo : lo + batch_size]
                        B = int(vs.shape[0])
                        if tracer.enabled:
                            tracer.observe("batch_size", B)
                        processed[vs] = True  # prune (Algorithm 2, line 6)
                        iter_costs.append(
                            degrees[vs].astype(np.float64) + VERTEX_COST)
                        batch_buf[:B] = vs
                        spans = chunk_spans(B, split, pool.num_workers)
                        results = pool.run("move_scan", [
                            {"lo": s, "hi": e, **payload_const}
                            for s, e in spans
                        ])
                        if metrics.enabled:
                            m_tasks.labels(phase).inc(len(spans))
                        if profiler.enabled:
                            for r in results:
                                profiler.worker_event(
                                    r.worker_id, "move_scan", r.start, r.end,
                                    phase=phase, edges=int(r.value))
                        # -- apply the batch's moves (parent, in order) ----
                        pos = np.flatnonzero(best_dq_buf[:B] > 0.0)
                        if pos.shape[0] == 0:
                            continue
                        mv = np.asarray(vs)[pos]
                        mc = best_c_buf[:B][pos].astype(C_shm.dtype)
                        kmv = Q[mv]
                        d_mv = C_shm[mv].copy()
                        # Σ updates are Algorithm 2's atomic adds; within
                        # the barrier they serialize in the parent through
                        # the same bincount scatter the batch engine uses.
                        ws.scatter_add(
                            Sigma_shm,
                            np.concatenate([d_mv, mc]),
                            np.concatenate([-kmv, kmv]),
                        )
                        C_shm[mv] = mc
                        total_dq += float(best_dq_buf[:B][pos].sum())
                        moves += int(mv.shape[0])
                        # Mark movers' neighbours unprocessed (line 14).
                        mseg, mdst, _ = gather_rows(
                            offsets, degrees, targets, weights, mv)
                        if mseg.shape[0]:
                            mdst = mdst[mdst != mv[mseg]]
                            processed[mdst] = False
                            processed[mv] = True
                if iter_costs:
                    runtime.record_parallel(
                        np.concatenate(iter_costs), phase=phase,
                        atomics=2.0 * moves,
                    )
                if metrics.enabled:
                    m_iters.inc()
                    m_moves.inc(moves)
                    m_dq.inc(total_dq)
                if tracer.enabled:
                    tracer.count("move_iterations")
                    tracer.count("local_moves", moves)
                    tracer.record("move_delta_q", total_dq)
                    tracer.record("move_visited", visited_iter)
                if profiler.enabled:
                    profiler.mark("move_delta_q", total_dq)
                if total_dq <= tolerance:
                    break
            if metrics.enabled:
                stats = arena["worker_stats"]
                for w in range(pool.num_workers):
                    m_wedges.labels(str(w)).inc(float(stats[w, 0]))
            # Propagate the shm state back into the caller's arrays.
            np.copyto(C, C_shm)
            np.copyto(Sigma, Sigma_shm)
        finally:
            pool.release()
    return iterations, total_dq
