"""Dendrogram: the per-pass community mappings and their flattening.

Each Leiden pass maps the vertices of the current (super-vertex) graph to
renumbered communities; the communities become next pass's vertices.  The
sequence of those mappings is a dendrogram, and the "dendrogram lookup" of
Algorithm 1 (lines 12 and 16) composes them down to the original vertices:
``C ← C'[C]``.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.errors import GraphStructureError
from repro.types import VERTEX_DTYPE


class Dendrogram:
    """An ordered list of level mappings (vertex-of-level -> community)."""

    def __init__(self) -> None:
        self._levels: List[np.ndarray] = []

    def add_level(self, mapping) -> None:
        """Append one pass's renumbered community mapping.

        ``mapping[i]`` is the community (= next level's vertex id) of
        vertex ``i`` at this level; ids must be compact ``0..k-1``.
        """
        arr = np.asarray(mapping, dtype=VERTEX_DTYPE)
        if arr.ndim != 1:
            raise GraphStructureError("level mapping must be 1-D")
        if arr.shape[0]:
            k = int(arr.max()) + 1
            if arr.min() < 0:
                raise GraphStructureError("community ids must be non-negative")
            present = np.unique(arr)
            if present.shape[0] != k:
                raise GraphStructureError("level mapping must be surjective onto 0..k-1")
        if self._levels and arr.shape[0] != self.num_communities(-1):
            raise GraphStructureError(
                "level size must equal previous level's community count"
            )
        self._levels.append(arr)

    # -- queries ---------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def level(self, index: int) -> np.ndarray:
        """The mapping at ``index`` (negative indices allowed)."""
        return self._levels[index]

    def num_communities(self, index: int) -> int:
        """Community count at level ``index``."""
        lvl = self._levels[index]
        return int(lvl.max()) + 1 if lvl.shape[0] else 0

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    # -- lookup --------------------------------------------------------------------

    def flatten(self, upto: int | None = None) -> np.ndarray:
        """Compose levels ``[0, upto)`` into an original-vertex membership.

        ``upto=None`` composes all levels.  This is the repeated
        ``C ← C'[C]`` dendrogram lookup of Algorithm 1.
        """
        if not self._levels:
            raise GraphStructureError("empty dendrogram")
        end = self.num_levels if upto is None else upto
        membership = self._levels[0].copy()
        for lvl in self._levels[1:end]:
            membership = lvl[membership]
        return membership

    def memberships(self) -> List[np.ndarray]:
        """Original-vertex membership after each pass (coarse to coarser)."""
        return [self.flatten(upto=i + 1) for i in range(self.num_levels)]
