"""Persisting detection results.

Two formats:

- **plain text** — one community id per line (what the paper's artifact
  consumes for its disconnected-communities counter); and
- **JSON** — membership plus provenance (config echo, pass trace,
  quality), so a result can be reloaded later, compared against, or fed
  to :func:`repro.dynamic.update.dynamic_leiden` as the warm start.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from repro._version import __version__
from repro.core.config import LeidenConfig
from repro.core.result import LeidenResult
from repro.errors import GraphFormatError
from repro.types import VERTEX_DTYPE

PathLike = Union[str, Path]

__all__ = [
    "RESULT_SCHEMA",
    "save_membership_text",
    "load_membership_text",
    "save_result_json",
    "load_result_json",
]

#: Version tag of the JSON result format.  ``/2`` added the persisted
#: dendrogram levels and made the loader validate the schema up front so
#: stale or foreign files fail loudly instead of KeyError-ing later.
RESULT_SCHEMA = "repro.result/2"

#: Keys every valid payload must carry (checked at load).
_REQUIRED_KEYS = ("membership", "num_communities", "num_passes", "passes")


def save_membership_text(membership, path: PathLike) -> None:
    """One community id per line."""
    arr = np.asarray(membership, dtype=VERTEX_DTYPE)
    Path(path).write_text(
        "\n".join(str(int(c)) for c in arr) + ("\n" if arr.size else ""),
        encoding="utf-8",
    )


def load_membership_text(path: PathLike) -> np.ndarray:
    """Inverse of :func:`save_membership_text`."""
    lines = [
        l for l in Path(path).read_text(encoding="utf-8").splitlines()
        if l.strip()
    ]
    try:
        return np.asarray([int(l) for l in lines], dtype=VERTEX_DTYPE)
    except ValueError as exc:
        raise GraphFormatError(f"bad membership file {path}: {exc}") from exc


def save_result_json(
    result: LeidenResult,
    path: PathLike,
    *,
    config: LeidenConfig | None = None,
    extra: dict | None = None,
) -> None:
    """Membership + provenance (and the dendrogram levels) as JSON."""
    payload = {
        "format": "repro-leiden-result",
        "schema": RESULT_SCHEMA,
        "version": __version__,
        "membership": [int(c) for c in result.membership],
        "num_communities": result.num_communities,
        "num_passes": result.num_passes,
        "wall_seconds": result.wall_seconds,
        "dendrogram": [
            [int(c) for c in level] for level in result.dendrogram
        ],
        "passes": [
            {
                "index": ps.index,
                "num_vertices": ps.num_vertices,
                "num_communities": ps.num_communities,
                "move_iterations": ps.move_iterations,
                "refine_moves": ps.refine_moves,
            }
            for ps in result.passes
        ],
    }
    if config is not None:
        payload["config"] = dataclasses.asdict(config)
    if extra:
        payload["extra"] = extra
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def load_result_json(path: PathLike) -> dict:
    """Load a saved result; ``membership`` comes back as an int32 array.

    Returns the payload dict (not a full :class:`LeidenResult` — ledgers
    are runtime objects and are not persisted; the dendrogram levels come
    back as a list of int32 arrays under ``"dendrogram"``).

    Raises :class:`~repro.errors.GraphFormatError` on malformed JSON, a
    wrong/missing format or schema tag, or missing required keys — a
    stale or foreign file fails here, not deep inside a warm start.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise GraphFormatError(f"bad result file {path}: {exc}") from exc
    if payload.get("format") != "repro-leiden-result":
        raise GraphFormatError(f"{path} is not a saved leiden result")
    schema = payload.get("schema")
    if schema != RESULT_SCHEMA:
        raise GraphFormatError(
            f"{path}: unsupported result schema {schema!r} "
            f"(expected {RESULT_SCHEMA!r})")
    missing = [k for k in _REQUIRED_KEYS if k not in payload]
    if missing:
        raise GraphFormatError(
            f"{path}: result file missing required keys {missing}")
    payload["membership"] = np.asarray(payload["membership"],
                                       dtype=VERTEX_DTYPE)
    payload["dendrogram"] = [
        np.asarray(level, dtype=VERTEX_DTYPE)
        for level in payload.get("dendrogram", [])
    ]
    return payload
