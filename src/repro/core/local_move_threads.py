"""Local-moving phase on real Python threads.

The ``"threads"`` engine executes Algorithm 2 with genuine concurrency:
color classes are chunked across the runtime's thread pool, every thread
works its chunks with its own collision-free hashtable, and ``Σ'`` lives
in a lock-guarded :class:`~repro.parallel.atomics.AtomicArray` — the same
synchronization structure as the OpenMP code.  Under CPython's GIL this
yields no speedup, but it exercises (and lets the tests verify) that the
algorithm's concurrency discipline is actually sound: memberships may be
read stale, Σ updates are atomic, and coloring keeps adjacent vertices
out of simultaneous flight.
"""

from __future__ import annotations

import threading
from typing import Tuple

import numpy as np

from repro.core.local_move import VERTEX_COST, scan_communities
from repro.core.quality import Quality
from repro.core.result import PHASE_LOCAL_MOVE
from repro.graph.csr import CSRGraph
from repro.parallel.atomics import AtomicArray
from repro.parallel.coloring import color_classes, color_graph
from repro.parallel.runtime import Runtime

__all__ = ["local_move_threads"]


def local_move_threads(
    graph: CSRGraph,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    tolerance: float,
    *,
    runtime: Runtime,
    max_iterations: int = 20,
    resolution: float = 1.0,
    color_seed: int = 0,
    quality: Quality | None = None,
    quantities=None,
    unprocessed_mask: np.ndarray | None = None,
    pruning: bool = True,
    phase: str = PHASE_LOCAL_MOVE,
) -> Tuple[int, float]:
    """Thread-parallel local-moving; mutates ``membership`` and
    ``community_weights`` in place.  Returns ``(iterations, last_dq)``."""
    n = graph.num_vertices
    if n == 0:
        return 1, 0.0
    m = graph.m
    if m <= 0:
        return 1, 0.0
    C = membership
    K = vertex_weights
    Sigma = AtomicArray(community_weights, thread_safe=True)
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities
    tables = runtime.hashtables(n)
    classes = color_classes(color_graph(graph, seed=color_seed))

    if unprocessed_mask is None:
        processed = np.zeros(n, dtype=bool)
    else:
        processed = ~np.asarray(unprocessed_mask, dtype=bool)

    state_lock = threading.Lock()
    iterations = 0
    total_dq = 0.0
    for it in range(max_iterations):
        iterations = it + 1
        if not pruning and it > 0:
            processed[:] = False
        iter_dq = [0.0]
        iter_moves = [0]
        iter_work = [0.0]

        def process_span(pending, lo, hi, thread_id):
            table = tables[thread_id % len(tables)]
            local_dq = 0.0
            local_moves = 0
            local_work = 0.0
            for idx in range(lo, hi):
                i = int(pending[idx])
                processed[i] = True
                table.clear()
                scan_communities(table, graph, C, i, include_self=False)
                local_work += graph.degree(i) + VERTEX_COST
                if len(table) == 0:
                    continue
                d = int(C[i])
                kid = table.get(d)
                ki = float(K[i])
                qi = float(Q[i])
                best_c, best_dq = -1, 0.0
                for c, kic in table.items():
                    if c == d:
                        continue
                    dq = float(qual.delta(
                        kic, kid, ki, qi,
                        Sigma.load(c), Sigma.load(d), m,
                    ))
                    if dq > best_dq:
                        best_c, best_dq = c, dq
                if best_c < 0:
                    continue
                Sigma.add(d, -qi)
                Sigma.add(best_c, qi)
                C[i] = best_c
                local_dq += best_dq
                local_moves += 1
                processed[graph.neighbors(i)] = False
                processed[i] = True
            with state_lock:
                iter_dq[0] += local_dq
                iter_moves[0] += local_moves
                iter_work[0] += local_work

        visited_iter = 0
        for cls in classes:
            pending = cls[~processed[cls]]
            if pending.shape[0] == 0:
                continue
            visited_iter += int(pending.shape[0])
            runtime.map_chunks(
                pending.shape[0],
                lambda lo, hi, t, p=pending: process_span(p, lo, hi, t),
            )

        total_dq = iter_dq[0]
        if iter_work[0] > 0:
            runtime.record_parallel(
                np.asarray([iter_work[0]]), phase=phase,
                atomics=2.0 * iter_moves[0],
            )
        if runtime.metrics.enabled:
            m = runtime.metrics
            m.counter("leiden_move_iterations_total",
                      "local-moving iterations executed").inc()
            m.counter("leiden_local_moves_total",
                      "community moves applied").inc(iter_moves[0])
            m.counter("leiden_move_delta_q_total",
                      "summed delta-Q of applied moves").inc(total_dq)
        if runtime.tracer.enabled:
            runtime.tracer.record("move_delta_q", total_dq)
            runtime.tracer.record("move_visited", visited_iter)
        if runtime.profiler.enabled:
            runtime.profiler.mark("move_delta_q", total_dq)
        if total_dq <= tolerance:
            break
    return iterations, total_dq
