"""Configuration for GVE-Leiden / GVE-Louvain.

Defaults follow Section 4.1 of the paper: initial iteration tolerance
``0.01``, tolerance drop rate ``10`` (threshold scaling), aggregation
tolerance ``0.8``, at most ``20`` iterations per pass and ``10`` passes,
greedy refinement, move-based super-vertex labels, OpenMP-style dynamic
scheduling with flag-based vertex pruning.

The paper's variant ladder (Figures 1 and 2):

- ``default`` — all optimizations on;
- ``medium``  — threshold scaling disabled (every pass runs at the strict
  tolerance, so the early passes iterate much longer);
- ``heavy``   — additionally the aggregation tolerance is disabled (the
  algorithm keeps aggregating even when communities barely shrink).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

_REFINEMENTS = ("greedy", "random")
_LABELS = ("move", "refine")
_ENGINES = ("batch", "loop", "threads", "process")
_KERNEL_ENGINES = ("sort", "count")
_VARIANTS = ("default", "medium", "heavy")
_RELABELS = ("none", "community", "community-degree")


@dataclass(frozen=True)
class LeidenConfig:
    """All tunables of the GVE-Leiden algorithm."""

    #: Initial per-iteration convergence tolerance τ on the summed ΔQ.
    tolerance: float = 0.01
    #: Threshold-scaling divisor applied to τ after every pass.
    tolerance_drop: float = 10.0
    #: τ used throughout when threshold scaling is disabled.
    strict_tolerance: float = 1e-6
    #: Enable threshold scaling (the *medium*/*heavy* variants disable it).
    threshold_scaling: bool = True
    #: Stop when |Γ_new| / |Γ_old| exceeds this after refinement
    #: (``None`` disables the check — the *heavy* variant).
    aggregation_tolerance: float | None = 0.8
    #: Cap on local-moving iterations per pass.
    max_iterations: int = 20
    #: Cap on passes.
    max_passes: int = 10
    #: Refinement style: ``"greedy"`` (argmax ΔQ) or ``"random"``
    #: (probability ∝ ΔQ, via xorshift32 Gumbel-max).
    refinement: str = "greedy"
    #: Super-vertex community labels: ``"move"`` (local-moving phase,
    #: Traag-recommended) or ``"refine"``.
    vertex_label: str = "move"
    #: Modularity resolution γ.
    resolution: float = 1.0
    #: Quality function to optimize: ``"modularity"`` (the paper's) or
    #: ``"cpm"`` — the Constant Potts Model, the resolution-limit-free
    #: alternative the paper points to (Traag et al. 2011).
    quality: str = "modularity"
    #: Kernel engine: ``"batch"`` (vectorized, batch-asynchronous — the
    #: production path), ``"loop"`` (per-vertex, exact sequential
    #: semantics with per-thread hashtables — the reference path) or
    #: ``"threads"`` (real Python threads with lock-guarded atomics for
    #: the local-moving phase; refinement/aggregation use the reference
    #: path) or ``"process"`` (worker *processes* over shared-memory
    #: arenas — the only engine that sidesteps the GIL; local-moving
    #: fans out to the pool, the remaining phases run the batch path,
    #: and membership is bitwise-identical to ``"batch"`` at any worker
    #: count).
    engine: str = "batch"
    #: Kernel family the batch engine's workspace drives: ``"count"``
    #: (counting-sort/bincount kernels over compacted community keys —
    #: the analogue of the paper's preallocated collision-free
    #: hashtables, O(E) per batch) or ``"sort"`` (the O(E log E)
    #: argsort/lexsort kernels retained as the differential-testing
    #: oracle).  Both produce identical memberships; this is the
    #: ablation knob for the counting-kernel optimization.
    kernel_engine: str = "count"
    #: Vertices concurrently in flight per batch (models the set of
    #: vertices the OpenMP threads process concurrently).
    batch_size: int = 4096
    #: Seed for the xorshift32 generators.
    seed: int = 42
    #: Run the refinement phase at all (False = GVE-Louvain).
    use_refinement: bool = True
    #: Vertex processing order in the local-moving phase: ``"natural"``
    #: (the paper's), ``"degree"``, ``"degree-desc"`` (importance-first,
    #: per related work [1]), ``"random"`` or ``"bfs"``.
    vertex_order: str = "natural"
    #: Flag-based vertex pruning in the local-moving phase (the paper's
    #: optimization over queue-based pruning); disable for ablations.
    vertex_pruning: bool = True
    #: Community-aware vertex relabeling before the main solve:
    #: ``"none"`` solves the input layout as-is; ``"community"`` runs a
    #: cheap pilot pass (or reuses a provided warm partition) to derive
    #: a layout with communities contiguous, then solves the relabeled
    #: graph and maps memberships back to original ids;
    #: ``"community-degree"`` additionally sorts each community's
    #: members by descending weighted degree.  See
    #: :mod:`repro.graph.relabel` and docs/PERFORMANCE.md.
    relabel: str = "none"
    #: Refinement move guard: ``"cas"`` (GVE's isolation + CAS — the
    #: connectivity guarantee), ``"racy"`` (isolation, no commit
    #: serialization — cuGraph-like), ``"none"`` (unguarded —
    #: NetworKit-like).  Only the batch engine honours non-default values.
    refine_guard: str = "cas"

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ConfigError("tolerance must be non-negative")
        if self.tolerance_drop <= 1:
            raise ConfigError("tolerance_drop must exceed 1")
        if self.strict_tolerance < 0:
            raise ConfigError("strict_tolerance must be non-negative")
        if self.aggregation_tolerance is not None and not (
            0 < self.aggregation_tolerance <= 1
        ):
            raise ConfigError("aggregation_tolerance must be in (0, 1]")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.max_passes < 1:
            raise ConfigError("max_passes must be >= 1")
        if self.refinement not in _REFINEMENTS:
            raise ConfigError(f"refinement must be one of {_REFINEMENTS}")
        if self.vertex_label not in _LABELS:
            raise ConfigError(f"vertex_label must be one of {_LABELS}")
        if self.engine not in _ENGINES:
            raise ConfigError(f"engine must be one of {_ENGINES}")
        if self.kernel_engine not in _KERNEL_ENGINES:
            raise ConfigError(
                f"kernel_engine must be one of {_KERNEL_ENGINES}"
            )
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.refine_guard not in ("cas", "racy", "none"):
            raise ConfigError("refine_guard must be 'cas', 'racy' or 'none'")
        if self.quality not in ("modularity", "cpm"):
            raise ConfigError("quality must be 'modularity' or 'cpm'")
        if self.vertex_order not in ("natural", "degree", "degree-desc",
                                     "random", "bfs"):
            raise ConfigError(
                "vertex_order must be 'natural', 'degree', 'degree-desc', "
                "'random' or 'bfs'")
        if self.resolution <= 0:
            raise ConfigError("resolution must be positive")
        if self.relabel not in _RELABELS:
            raise ConfigError(f"relabel must be one of {_RELABELS}")

    # -- variants -----------------------------------------------------------

    @classmethod
    def variant(cls, name: str, **overrides) -> "LeidenConfig":
        """One of the paper's variants: ``default``, ``medium``, ``heavy``."""
        if name not in _VARIANTS:
            raise ConfigError(f"variant must be one of {_VARIANTS}")
        cfg = cls(**overrides)
        if name == "medium":
            cfg = replace(cfg, threshold_scaling=False)
        elif name == "heavy":
            cfg = replace(cfg, threshold_scaling=False, aggregation_tolerance=None)
        return cfg

    def initial_tolerance(self) -> float:
        """τ for the first pass given the threshold-scaling setting."""
        return self.tolerance if self.threshold_scaling else self.strict_tolerance

    def next_tolerance(self, tau: float) -> float:
        """τ for the following pass (Algorithm 1, line 15)."""
        if not self.threshold_scaling:
            return tau
        return tau / self.tolerance_drop

    def with_(self, **overrides) -> "LeidenConfig":
        """A copy with the given fields replaced."""
        return replace(self, **overrides)
