"""GVE-Leiden pass driver (Algorithm 1).

Each pass runs local-moving → refinement → (maybe) aggregation on the
current super-vertex graph:

1. initialize per-vertex weights ``K'`` and community weights ``Σ'``;
2. ``leidenMove`` optimizes the membership ``C'`` (Algorithm 2);
3. the result becomes the *community bound* ``C'_B``; membership resets
   to singletons and ``leidenRefine`` merges within bounds (Algorithm 3);
4. stop if globally converged (local-moving settled in one iteration and
   refinement merged nothing) or if communities shrank by less than the
   aggregation tolerance;
5. otherwise renumber, update the dendrogram, aggregate (Algorithm 4),
   seed the next pass's membership from the move phase (``move``-based
   labels, as Traag et al. recommend) or as singletons (``refine``-based),
   and scale the tolerance down (threshold scaling).

On the convergence and low-shrink exits the returned communities are the
refined partition of the final pass (Algorithm 1 breaks before line 14's
remapping), which is internally connected by construction; the
``vertex_label`` choice affects how each pass is *seeded* and the output
only when the pass budget is exhausted.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.core.aggregate import aggregate_batch, aggregate_loop
from repro.core.config import LeidenConfig
from repro.core.dendrogram import Dendrogram
from repro.core.local_move import local_move_batch, local_move_loop
from repro.core.local_move_process import local_move_process
from repro.core.local_move_threads import local_move_threads
from repro.core.quality import Quality
from repro.core.refine import refine_batch, refine_loop
from repro.core.result import (
    PHASE_AGGREGATE,
    PHASE_LOCAL_MOVE,
    PHASE_OTHER,
    PHASE_REFINE,
    LeidenResult,
    PassStats,
)
from repro.graph.csr import CSRGraph
from repro.graph.reorder import order_ranks as _order_ranks
from repro.graph.reorder import vertex_order as _vertex_order
from repro.metrics.partition import renumber_membership
from repro.observability import memtrack
from repro.parallel.rng import Xorshift32
from repro.parallel.runtime import Runtime
from repro.parallel.simthread import WorkLedger
from repro.types import VERTEX_DTYPE

__all__ = ["leiden"]

#: Engines that drive the vectorized batch kernels for the refine and
#: aggregate phases (the process engine parallelizes local-moving across
#: worker processes and runs the remaining phases on the batch path, so
#: end-to-end membership matches ``"batch"`` bitwise).
_BATCH_LIKE = ("batch", "process")


def leiden(
    graph: CSRGraph,
    config: LeidenConfig | None = None,
    *,
    runtime: Runtime | None = None,
    initial_membership=None,
    affected=None,
    validate_input: bool = False,
) -> LeidenResult:
    """Detect communities in ``graph`` with GVE-Leiden.

    ``graph`` must be undirected (symmetric edge storage); pass
    ``validate_input=True`` to verify that (and weight symmetry/
    finiteness) up front instead of silently computing on a directed
    graph.  Returns a
    :class:`repro.core.result.LeidenResult` whose ``membership`` holds a
    compact community id per vertex.

    ``initial_membership`` warm-starts the first pass from an existing
    partition instead of singletons, and ``affected`` (a boolean mask or
    vertex-id array) seeds the first pass's pruning flags so only the
    given vertices are initially reconsidered — together these are the
    primitives :mod:`repro.dynamic` builds its incremental update
    strategies on.
    """
    if validate_input:
        from repro.graph.validate import validate_csr

        validate_csr(graph, require_positive_weights=False)
    cfg = config or LeidenConfig()
    if cfg.relabel != "none":
        return _leiden_relabeled(
            graph, cfg,
            runtime=runtime,
            initial_membership=initial_membership,
            affected=affected,
        )
    rt = runtime or Runtime(num_threads=1, seed=cfg.seed)
    tracer = rt.tracer
    rng = Xorshift32(cfg.seed)
    qual = Quality(cfg.quality, cfg.resolution)

    n0 = graph.num_vertices
    C_top = np.arange(n0, dtype=VERTEX_DTYPE)
    dendrogram = Dendrogram()
    passes: list[PassStats] = []
    wall_phase: Dict[str, float] = {p: 0.0 for p in
                                    (PHASE_LOCAL_MOVE, PHASE_REFINE,
                                     PHASE_AGGREGATE, PHASE_OTHER)}
    t_start = time.perf_counter()

    G = graph
    if initial_membership is None:
        init_membership: np.ndarray | None = None
    else:
        init_membership, _ = renumber_membership(
            np.asarray(initial_membership, dtype=VERTEX_DTYPE)
        )
    first_unprocessed = _affected_mask(affected, n0)
    tau = cfg.initial_tolerance()
    # CPM tracks node sizes through aggregation (super-vertices count the
    # original vertices they contain); modularity ignores them.
    sizes = np.ones(n0, dtype=np.float64)

    # Metric instruments (shared no-ops when collection is disabled).
    m = rt.metrics
    m_passes = m.counter("leiden_passes_total", "Leiden passes executed")
    m_exits = m.counter(
        "leiden_pass_exits_total",
        "how the pass loop ended, by exit reason", ("reason",))
    m_shrink = m.histogram(
        "leiden_aggregation_shrink",
        "communities-per-vertex shrink ratio observed per pass")
    m_comms = m.gauge(
        "leiden_communities", "community count of the most recent run")

    run_span = tracer.push(
        "leiden", vertices=int(n0), edges=int(graph.num_edges),
        engine=cfg.engine, quality=cfg.quality,
    )
    # Activate the runtime's memory ledger for the run so buffer owners
    # constructed deep inside the phases (super-graph CSR arrays, permute
    # transients) can record allocations without threading the ledger
    # through every call.  Entered/exited manually to share the existing
    # try/finally.
    _mem_scope = memtrack.activate(rt.memory)
    _mem_scope.__enter__()
    try:
        for pass_index in range(cfg.max_passes):
            pass_ledger = WorkLedger()
            saved_ledger = rt.ledger
            rt.ledger = pass_ledger
            pw: Dict[str, float] = {p: 0.0 for p in wall_phase}
            n = G.num_vertices
            pass_span = tracer.push("pass", index=pass_index, vertices=int(n))

            # -- initialization (line 4) -------------------------------------
            t0 = time.perf_counter()
            with tracer.span("init"):
                if cfg.engine in _BATCH_LIKE:
                    # One workspace per pass: the kernel scratch buffers are
                    # allocated here and reused by every batch of the move,
                    # refine and aggregate phases — the analogue of the
                    # paper's up-front per-thread hashtable allocation.
                    workspace = rt.workspace(
                        n, engine=cfg.kernel_engine, phase=PHASE_OTHER
                    )
                else:
                    workspace = None
                K = G.vertex_weights().copy()
                Qv = qual.vertex_quantity(K, sizes)
                if init_membership is None:
                    C = np.arange(n, dtype=VERTEX_DTYPE)
                    Sigma = Qv.copy()
                else:
                    C = init_membership.copy()
                    Sigma = np.bincount(C, weights=Qv, minlength=n)
                rt.record_parallel(np.ones(n), phase=PHASE_OTHER)
            pw[PHASE_OTHER] += time.perf_counter() - t0

            # -- local-moving phase (line 5) ----------------------------------
            t0 = time.perf_counter()
            with tracer.span("local_move", engine=cfg.engine) as mv_span:
                if cfg.vertex_order != "natural":
                    order = _vertex_order(G, cfg.vertex_order, seed=cfg.seed)
                    ranks = _order_ranks(order)
                else:
                    order = ranks = None
                if cfg.engine == "threads":
                    li, _dq = local_move_threads(
                        G, C, K, Sigma, tau,
                        runtime=rt,
                        max_iterations=cfg.max_iterations,
                        quality=qual,
                        quantities=Qv,
                        unprocessed_mask=(first_unprocessed if pass_index == 0
                                          else None),
                        pruning=cfg.vertex_pruning,
                    )
                elif cfg.engine == "process":
                    li, _dq = local_move_process(
                        G, C, K, Sigma, tau,
                        runtime=rt,
                        pool=rt.procpool(),
                        max_iterations=cfg.max_iterations,
                        batch_size=cfg.batch_size,
                        quality=qual,
                        quantities=Qv,
                        unprocessed_mask=(first_unprocessed if pass_index == 0
                                          else None),
                        pruning=cfg.vertex_pruning,
                        order_ranks=ranks,
                        workspace=workspace,
                    )
                elif cfg.engine == "batch":
                    li, _dq = local_move_batch(
                        G, C, K, Sigma, tau,
                        runtime=rt,
                        max_iterations=cfg.max_iterations,
                        batch_size=cfg.batch_size,
                        quality=qual,
                        quantities=Qv,
                        unprocessed_mask=(first_unprocessed if pass_index == 0
                                          else None),
                        pruning=cfg.vertex_pruning,
                        order_ranks=ranks,
                        workspace=workspace,
                    )
                else:
                    li, _dq = local_move_loop(
                        G, C, K, Sigma, tau,
                        runtime=rt,
                        max_iterations=cfg.max_iterations,
                        quality=qual,
                        quantities=Qv,
                        unprocessed_mask=(first_unprocessed if pass_index == 0
                                          else None),
                        pruning=cfg.vertex_pruning,
                        order=order,
                    )
                mv_span.set(iterations=li)
            pw[PHASE_LOCAL_MOVE] += time.perf_counter() - t0

            # -- refinement phase (lines 6-7) -----------------------------------
            t0 = time.perf_counter()
            with tracer.span("refine", enabled=cfg.use_refinement) as rf_span:
                C_B = C.copy()
                if cfg.use_refinement:
                    C_ref = np.arange(n, dtype=VERTEX_DTYPE)
                    Sigma_ref = Qv.copy()
                    if cfg.engine in _BATCH_LIKE:
                        lj = refine_batch(
                            G, C_B, C_ref, K, Sigma_ref,
                            runtime=rt,
                            rng=rng,
                            refinement=cfg.refinement,
                            batch_size=cfg.batch_size,
                            guard=cfg.refine_guard,
                            quality=qual,
                            quantities=Qv,
                            workspace=workspace,
                        )
                    else:
                        lj = refine_loop(
                            G, C_B, C_ref, K, Sigma_ref,
                            runtime=rt,
                            rng=rng,
                            refinement=cfg.refinement,
                            quality=qual,
                            quantities=Qv,
                        )
                else:
                    # GVE-Louvain: aggregation follows the move phase directly.
                    C_ref = C_B
                    lj = 0
                rf_span.set(moves=lj)
            pw[PHASE_REFINE] += time.perf_counter() - t0

            # -- convergence / shrink checks (lines 8-10) ------------------------
            t0 = time.perf_counter()
            converged = li <= 1 and lj == 0
            C_ref_ren, ref_ids = renumber_membership(C_ref)
            num_comms = int(ref_ids.shape[0])
            # Convergence monitor: aggregation shrink ratio (communities
            # per vertex — 1.0 means no shrink) on the pass span, and the
            # community count as a counter track on the profiler timeline.
            pass_span.record("aggregation_shrink", num_comms / max(n, 1))
            m_passes.inc()
            m_shrink.observe(num_comms / max(n, 1))
            rt.profiler.mark("communities", num_comms)
            low_shrink = (
                cfg.aggregation_tolerance is not None
                and n > 0
                and num_comms / n > cfg.aggregation_tolerance
            )
            if converged or low_shrink:
                m_exits.labels("converged" if converged else "low_shrink").inc()
                # Algorithm 1 breaks before line 14's move-based remapping,
                # so the final dendrogram lookup (line 16) applies the
                # *refined* membership — which is internally connected by
                # construction (the CAS discipline of Algorithm 3).
                dendrogram.add_level(C_ref_ren)
                C_top = C_ref_ren[C_top]
                pw[PHASE_OTHER] += time.perf_counter() - t0
                rt.record_parallel(np.ones(max(n, 1)), phase=PHASE_OTHER)
                _close_pass(
                    passes, pass_index, n, int(np.unique(C_top).shape[0]),
                    li, lj, tau, pw, pass_ledger,
                )
                rt.ledger = saved_ledger
                rt.ledger.merge(pass_ledger)
                for p, s in pw.items():
                    wall_phase[p] += s
                pass_span.set(
                    communities=num_comms, move_iterations=li, refine_moves=lj,
                    converged=bool(converged), low_shrink=bool(low_shrink),
                )
                tracer.pop()
                break

            # -- dendrogram lookup (lines 11-12) ----------------------------------
            dendrogram.add_level(C_ref_ren)
            C_top = C_ref_ren[C_top]
            rt.record_parallel(np.ones(n0), phase=PHASE_OTHER)
            pw[PHASE_OTHER] += time.perf_counter() - t0

            # -- aggregation phase (line 13) ------------------------------------------
            t0 = time.perf_counter()
            with tracer.span("aggregate") as ag_span, \
                    memtrack.phase_scope(PHASE_AGGREGATE):
                if cfg.engine in _BATCH_LIKE:
                    G = aggregate_batch(
                        G, C_ref_ren, num_comms, runtime=rt,
                        workspace=workspace,
                    )
                else:
                    G = aggregate_loop(G, C_ref_ren, num_comms, runtime=rt)
                sizes = np.bincount(C_ref_ren, weights=sizes, minlength=num_comms)
                ag_span.set(super_vertices=int(num_comms),
                            super_edges=int(G.num_edges))
            pw[PHASE_AGGREGATE] += time.perf_counter() - t0

            # -- next pass's initial membership (line 14) -------------------------------
            t0 = time.perf_counter()
            if cfg.vertex_label == "move" and cfg.use_refinement:
                # Each super-vertex (refined community) starts in the
                # community its members held after the local-moving phase.
                _, first_member = np.unique(C_ref_ren, return_index=True)
                bound_labels = C_B[first_member]
                init_membership, _ = renumber_membership(bound_labels)
            else:
                init_membership = None
            tau = cfg.next_tolerance(tau)
            rt.record_serial(float(num_comms), phase=PHASE_OTHER)
            pw[PHASE_OTHER] += time.perf_counter() - t0

            _close_pass(
                passes, pass_index, n, num_comms, li, lj, tau, pw, pass_ledger
            )
            rt.ledger = saved_ledger
            rt.ledger.merge(pass_ledger)
            for p, s in pw.items():
                wall_phase[p] += s
            pass_span.set(
                communities=num_comms, move_iterations=li, refine_moves=lj,
                converged=False, low_shrink=False,
            )
            tracer.pop()
        else:
            # Pass budget exhausted: the dendrogram currently maps onto the
            # *refined* communities of the last pass; move-based labelling
            # composes the move-phase bound on top (Algorithm 1, line 16
            # after line 14's remapping).
            m_exits.labels("budget").inc()
            if cfg.vertex_label == "move" and init_membership is not None:
                dendrogram.add_level(init_membership)
                C_top = init_membership[C_top]

        # Final renumbering keeps ids compact regardless of the exit path.
        C_top, _ = renumber_membership(C_top)
        wall = time.perf_counter() - t_start
        final_comms = int(np.unique(C_top).shape[0])
        run_span.set(passes=len(passes), communities=final_comms)
        m_comms.set(final_comms)
    finally:
        _mem_scope.__exit__(None, None, None)
        # Close the run span (and any pass/phase
        # spans left open by an exception) so partial traces
        # still carry seconds.
        tracer.unwind(run_span)
        # A runtime we created ourselves has no outer lifetime managing
        # it — reap its worker pool rather than leave daemons behind.
        if runtime is None:
            rt.close()
    return LeidenResult(
        membership=C_top,
        dendrogram=dendrogram,
        passes=passes,
        ledger=rt.ledger,
        wall_seconds=wall,
        wall_phase_seconds=wall_phase,
    )


def _leiden_relabeled(
    graph: CSRGraph,
    cfg: LeidenConfig,
    *,
    runtime: Runtime | None,
    initial_membership,
    affected,
) -> LeidenResult:
    """The ``config.relabel`` pipeline: layout, solve relabeled, map back.

    1. Derive a community layout — from the provided warm partition when
       one is given (the service refresh path), otherwise from a cheap
       single-pass pilot solve;
    2. permute the graph so communities are contiguous
       (:func:`repro.graph.relabel.community_relabeling`);
    3. run the full solve on the relabeled graph;
    4. express the membership and dendrogram in original vertex ids via
       the inverse map.

    The mapped-back membership is a valid partition of the original
    graph with *bit-identical* quality to the relabeled solve's
    (``Q(G, M[inv]) == Q(G', M)`` exactly — quality sums are invariant
    under vertex renaming).  The asynchronous engines' trajectories are
    id-dependent (coloring priorities, tie-breaks), so the partition may
    legitimately differ from a ``relabel="none"`` run's; both are valid
    GVE-Leiden outputs of the same graph.
    """
    from repro.graph.relabel import community_relabeling

    base_cfg = cfg.with_(relabel="none")
    own_runtime = runtime is None
    rt = runtime or Runtime(num_threads=1, seed=cfg.seed)
    t_start = time.perf_counter()
    try:
        # -- layout source: warm partition or pilot pass -----------------
        if initial_membership is not None:
            warm, _ = renumber_membership(
                np.asarray(initial_membership, dtype=VERTEX_DTYPE))
            levels = [warm]
            pilot = None
        else:
            warm = None
            pilot = leiden(graph, base_cfg.with_(max_passes=1), runtime=rt)
            levels = (pilot.dendrogram.memberships()
                      if pilot.dendrogram.num_levels
                      else [pilot.membership])
        relab = community_relabeling(graph, levels, mode=cfg.relabel)

        # -- permute (charged as serial edge-array traffic) --------------
        t0 = time.perf_counter()
        with memtrack.activate(rt.memory):
            relabeled, inv = graph.permute(relab.perm)
        rt.record_serial(
            float(graph.num_vertices + graph.num_edges), phase=PHASE_OTHER)
        permute_seconds = time.perf_counter() - t0

        # -- main solve on the relabeled graph ---------------------------
        result = leiden(
            relabeled, base_cfg,
            runtime=rt,
            initial_membership=(relab.to_relabeled(warm)
                                if warm is not None else None),
            affected=(_affected_mask(affected, graph.num_vertices)[relab.perm]
                      if affected is not None else None),
        )
    finally:
        if own_runtime:
            rt.close()

    # -- map back to original ids ---------------------------------------
    membership = relab.to_original(result.membership)
    dendrogram = Dendrogram()
    if result.dendrogram.num_levels:
        dendrogram.add_level(result.dendrogram.level(0)[inv])
        for i in range(1, result.dendrogram.num_levels):
            dendrogram.add_level(result.dendrogram.level(i))

    wall_phase: Dict[str, float] = dict(result.wall_phase_seconds)
    if pilot is not None:
        for p, s in pilot.wall_phase_seconds.items():
            wall_phase[p] = wall_phase.get(p, 0.0) + s
    wall_phase[PHASE_OTHER] = (
        wall_phase.get(PHASE_OTHER, 0.0) + permute_seconds)
    return LeidenResult(
        membership=membership,
        dendrogram=dendrogram,
        passes=result.passes,
        ledger=result.ledger,
        wall_seconds=time.perf_counter() - t_start,
        wall_phase_seconds=wall_phase,
        relabeling=relab,
    )


def _affected_mask(affected, n: int):
    """Normalize the ``affected`` argument to a boolean mask or None."""
    if affected is None:
        return None
    arr = np.asarray(affected)
    if arr.dtype == bool:
        if arr.shape[0] != n:
            raise ValueError("affected mask length must equal vertex count")
        return arr
    mask = np.zeros(n, dtype=bool)
    mask[arr] = True
    return mask


def _close_pass(passes, index, n, num_comms, li, lj, tau, pw, ledger) -> None:
    passes.append(
        PassStats(
            index=index,
            num_vertices=n,
            num_communities=num_comms,
            move_iterations=li,
            refine_moves=lj,
            tolerance=tau,
            wall_phase_seconds=dict(pw),
            ledger=ledger,
        )
    )
