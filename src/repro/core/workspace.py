"""Preallocated kernel workspaces for the batch-parallel phases.

GVE-Leiden's headline optimization is *preallocated per-thread
collision-free hashtables*: every thread allocates one dense keys/values
pair up front and reuses it for every vertex it scans, instead of
malloc-ing a container per vertex.  :class:`KernelWorkspace` is the batch
engine's faithful analogue: it preallocates the dense compaction map the
counting kernels scatter through **once per Leiden pass**, and is
threaded through ``local_move_batch``, ``refine_batch`` and
``aggregate_batch`` so every batch of every iteration reuses the same
scratch memory.

The workspace also selects the kernel family (``engine="count"`` — the
production counting/bincount path — or ``engine="sort"`` — the
O(E log E) argsort reference retained as a differential-testing oracle)
and accounts its allocation in the runtime cost model, the way the
paper's per-thread table allocation shows up in its measured runtimes.
"""

from __future__ import annotations

import numpy as np

from repro.core._kernels import (
    DENSE_GRID_LIMIT,
    compact_keys,
    scatter_add,
    segment_pair_sums_count,
    segment_pair_sums_sort,
    segmented_argmax,
    segmented_argmax_sorted,
)
from repro.errors import ConfigError
from repro.observability.metrics import NULL_REGISTRY
from repro.observability.tracer import NULL_TRACER

__all__ = ["KERNEL_ENGINES", "KernelWorkspace"]

#: Kernel families a workspace can drive.
KERNEL_ENGINES = ("sort", "count")

#: Work units charged per preallocated map slot (allocation + first
#: touch is a fraction of one edge-scan-plus-table-update work unit).
ALLOC_UNITS_PER_SLOT = 0.0625


class KernelWorkspace:
    """Per-pass scratch buffers plus the kernel-engine dispatch.

    Parameters
    ----------
    num_vertices:
        Size of the key domain — community ids seen by the kernels are
        ``< num_vertices`` (memberships are kept compact per pass).
    engine:
        ``"count"`` (counting-sort/bincount kernels, the production
        path) or ``"sort"`` (argsort/lexsort kernels, the oracle).
    runtime:
        When given, the workspace's allocation is recorded in the
        runtime's work ledger under ``phase`` — the simulated-thread
        timings then include the table-allocation cost exactly like the
        paper's per-thread hashtable setup.
    dense_grid_limit:
        Cap (entries) on the dense bincount accumulation grid before the
        count kernels fall back to the compacted-key counting sort.
    scratch_map:
        An externally-owned compaction map to drive the kernels over
        instead of allocating one — the process engine hands each worker
        its slab of a shared-memory scratch segment this way (int64, at
        least ``num_vertices`` slots, never needs clearing).
    """

    def __init__(
        self,
        num_vertices: int,
        *,
        engine: str = "count",
        runtime=None,
        phase: str = "other",
        dense_grid_limit: int = DENSE_GRID_LIMIT,
        scratch_map: np.ndarray | None = None,
    ) -> None:
        if engine not in KERNEL_ENGINES:
            raise ConfigError(f"kernel engine must be one of {KERNEL_ENGINES}")
        self.num_vertices = int(num_vertices)
        self.engine = engine
        self.dense_grid_limit = int(dense_grid_limit)
        # The compaction map is the "keys" array of a collision-free
        # hashtable covering the whole id domain; only slots named by a
        # batch are ever touched, so it is allocated once and never
        # cleared.  np.empty: contents are irrelevant by construction.
        owns_map = scratch_map is None
        if scratch_map is not None:
            if (scratch_map.dtype != np.int64
                    or scratch_map.shape[0] < max(self.num_vertices, 1)):
                raise ConfigError(
                    "scratch_map must be int64 with >= num_vertices slots")
            self._map = scratch_map
        else:
            self._map = np.empty(max(self.num_vertices, 1), dtype=np.int64)
        self._tracer = runtime.tracer if runtime is not None else NULL_TRACER
        metrics = runtime.metrics if runtime is not None else NULL_REGISTRY
        self._m_dispatch = metrics.counter(
            "kernel_dispatch_total",
            "kernel invocations, by engine and kernel name",
            ("engine", "kernel"))
        # Bound children resolved once per kernel name, not per dispatch.
        self._m_bound: dict = {}
        #: Memory-ledger handle of the owned map (-1 when unrecorded).
        self._mem_handle = -1
        if runtime is not None:
            self._account_allocation(runtime, phase, owns_map)

    def _account_allocation(self, runtime, phase: str,
                            owns_map: bool) -> None:
        """Charge the map allocation to the cost model (chunked items)
        and record it in the memory ledger.

        The cost-model charge models the allocate-and-first-touch work
        and applies whether the map is owned or handed in (the paper's
        per-thread tables are touched per pass either way).  The
        *ledger* event is recorded only for an owned map: an external
        ``scratch_map`` (the process engine's shm slab) was already
        recorded by its owner, and double-charging would break the
        report's worker-count invariance.
        """
        slots = max(self.num_vertices, 1)
        chunk = 4096
        n_chunks = (slots + chunk - 1) // chunk
        costs = np.full(n_chunks, chunk * ALLOC_UNITS_PER_SLOT)
        costs[-1] = (slots - (n_chunks - 1) * chunk) * ALLOC_UNITS_PER_SLOT
        runtime.record_parallel(costs, phase=phase)
        if runtime.tracer.enabled:
            runtime.tracer.count("mem_workspace_alloc_slots", slots)
        memory = getattr(runtime, "memory", None)
        if owns_map and memory is not None and memory.enabled:
            self._mem_handle = memory.alloc(
                "workspace", "scratch_map", self._map.nbytes,
                phase=phase, dtype=str(self._map.dtype))

    # -- kernel dispatch ---------------------------------------------------

    def _count_dispatch(self, kernel: str) -> None:
        """Per-kernel dispatch counter (``kernel_<engine>_<kernel>``) so
        traces show which engine served each phase."""
        bound = self._m_bound.get(kernel)
        if bound is None:
            bound = self._m_dispatch.labels(self.engine, kernel)
            self._m_bound[kernel] = bound
        bound.inc()
        if self._tracer.enabled:
            self._tracer.count(f"kernel_{self.engine}_{kernel}")

    def pair_sums(self, seg, comm, weights, num_segments: int):
        """``segment_pair_sums`` through the selected kernel family."""
        self._count_dispatch("pair_sums")
        if self.engine == "count":
            return segment_pair_sums_count(
                seg, comm, weights, num_segments, self._map,
                dense_grid_limit=self.dense_grid_limit,
            )
        return segment_pair_sums_sort(seg, comm, weights, self.num_vertices)

    def argmax(self, seg, values):
        """Segmented argmax; ``seg`` is sorted by kernel-output contract."""
        self._count_dispatch("argmax")
        if self.engine == "count":
            return segmented_argmax_sorted(seg, values)
        return segmented_argmax(seg, values)

    def scatter_add(self, target, idx, weights) -> None:
        """Scatter-add with duplicate indices (bincount, both engines)."""
        self._count_dispatch("scatter_add")
        scatter_add(target, idx, weights, self._map)

    def compact(self, keys):
        """Dense ``0..u-1`` relabeling of ``keys`` through the map."""
        self._count_dispatch("compact")
        return compact_keys(keys, self._map)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelWorkspace(n={self.num_vertices}, engine={self.engine})"
        )
