"""Refinement phase of GVE-Leiden (Algorithm 3).

Starting from singleton sub-communities, *isolated* vertices (those still
alone in their sub-community: ``Σ'[c] == K'[i]``) merge into neighboring
sub-communities **within their community bound** — the community they were
assigned by the local-moving phase.  A compare-and-swap on ``Σ'`` ensures
a vertex only leaves its sub-community while still isolated, which is
what guarantees the refined communities are internally connected.

The paper evaluates two selection rules (Figures 1-2):

- ``greedy`` — argmax ΔQ (the paper's best performer);
- ``random`` — choose ∝ ΔQ among positive candidates, as Traag et al.
  originally proposed, driven by xorshift32.  The batch engine samples
  via the Gumbel-max trick: ``argmax(log ΔQ + G)`` with i.i.d. Gumbel
  noise draws exactly ∝ ΔQ.

One sweep over the vertices is performed per pass.
"""

from __future__ import annotations

import numpy as np

from repro.core.quality import Quality
from repro.core.result import PHASE_REFINE
from repro.core.workspace import KernelWorkspace
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows
from repro.parallel.atomics import AtomicArray
from repro.parallel.rng import Xorshift32
from repro.parallel.runtime import Runtime
from repro.types import ACCUM_DTYPE

__all__ = ["refine_batch", "refine_loop", "scan_bounded"]

#: Bookkeeping work units charged per visited vertex on top of its degree.
VERTEX_COST = 4.0
_TINY = 1e-300


def refine_batch(
    graph: CSRGraph,
    bounds: np.ndarray,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    *,
    runtime: Runtime,
    rng: Xorshift32 | None = None,
    refinement: str = "greedy",
    batch_size: int = 4096,
    resolution: float = 1.0,
    guard: str = "cas",
    quality: Quality | None = None,
    quantities=None,
    workspace: KernelWorkspace | None = None,
    phase: str = PHASE_REFINE,
) -> int:
    """Vectorized constrained-merge sweep; mutates ``membership`` and
    ``community_weights`` in place.  Returns the number of merges.

    ``guard`` selects how strictly the move condition of Algorithm 3 is
    enforced — the knob that separates GVE-Leiden from the competing
    parallel implementations' refinement behaviour:

    - ``"cas"`` (GVE-Leiden): isolation test plus the CAS commit rule;
      guarantees internally-connected communities;
    - ``"racy"`` (cuGraph-style BSP): the commit discipline holds for
      almost all moves, but a small rate of commits race past it — the
      GPU's epoch-level window is tiny relative to the graph, so races
      are rare but nonzero (the paper measures a ~6.6e-5 disconnected
      fraction for cuGraph);
    - ``"none"`` (NetworKit-style): any vertex may move within its bound;
      the guarantee is lost outright.
    """
    if guard not in ("cas", "racy", "none"):
        raise ValueError(f"unknown guard {guard!r}")
    #: Probability that a racy commit slips past the serialization.
    race_rate = 2e-3 if guard == "racy" else 0.0
    n = graph.num_vertices
    if n == 0:
        return 0
    m = graph.m
    if m <= 0:
        return 0
    CB = bounds
    C = membership
    K = vertex_weights
    Sigma = community_weights
    offsets = graph.offsets[:-1]
    degrees = graph.degrees
    targets = graph.targets
    weights = graph.weights
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities
    random = refinement == "random"
    if random and rng is None:
        rng = Xorshift32()
    ws = workspace if workspace is not None else KernelWorkspace(n)

    # Once any vertex joins community c, c's members must not leave —
    # that is the CAS guarantee.  Across batches Σ'[c] > K'[v] encodes it;
    # within a batch we serialize commits in ascending-id order.
    tracer = runtime.tracer
    joined = np.zeros(n, dtype=bool)
    vacated = np.zeros(n, dtype=bool)
    total_moves = 0
    decided_moves = 0
    batch_size = max(32, min(batch_size, n // 32)) if n > 64 else n
    for lo in range(0, n, batch_size):
        vs = np.arange(lo, min(lo + batch_size, n), dtype=np.int64)
        if guard != "none":
            iso = Sigma[C[vs]] == Q[vs]  # isolation test (line 4)
            vs = vs[iso]
        if tracer.enabled:
            tracer.count("refine_isolated", vs.shape[0])
        if vs.shape[0] == 0:
            continue
        seg, dst, w = gather_rows(offsets, degrees, targets, weights, vs)
        if seg.shape[0] == 0:
            continue
        keep = (dst != vs[seg]) & (CB[dst] == CB[vs[seg]])  # scanBounded
        seg, dst, w = seg[keep], dst[keep], w[keep]
        if seg.shape[0] == 0:
            continue
        pseg, pcomm, psum = ws.pair_sums(seg, C[dst], w, vs.shape[0])
        d = C[vs]
        kid = np.zeros(vs.shape[0], dtype=ACCUM_DTYPE)
        own = pcomm == d[pseg]
        kid[pseg[own]] = psum[own]
        cand = ~own
        if not cand.any():
            continue
        cseg = pseg[cand]
        cc = pcomm[cand]
        kic = psum[cand]
        mv_all = vs[cseg]
        dq = qual.delta(
            kic, kid[cseg], K[mv_all], Q[mv_all],
            Sigma[cc], Sigma[d[cseg]], m,
        )
        if random:
            # Gumbel-max sampling ∝ ΔQ among positive candidates.
            u = rng.floats_fast(dq.shape[0])
            gumbel = -np.log(-np.log(np.clip(u, _TINY, 1.0 - 1e-16)))
            key = np.where(dq > 0.0, np.log(np.maximum(dq, _TINY)) + gumbel, -np.inf)
            bseg, bidx = ws.argmax(cseg, key)
            keep_best = dq[bidx] > 0.0
        else:
            bseg, bidx = ws.argmax(cseg, dq)
            keep_best = dq[bidx] > 0.0
        if not keep_best.any():
            continue
        mseg = bseg[keep_best]
        movers = vs[mseg]
        mcomm = cc[bidx[keep_best]].astype(C.dtype)
        mown = d[mseg]
        if guard == "none":
            # Unguarded: every decided move is applied as-is.
            commit = np.ones(movers.shape[0], dtype=bool)
        else:
            # Emulated CAS (lines 10-11), serialized in ascending id
            # order.  Two conditions gate a commit:
            # - nothing joined the mover's own sub-community (the CAS);
            # - the target community was not *vacated* by an earlier
            #   commit in this batch — i.e. the vertex whose community
            #   the mover scanned is still there.  This closes the
            #   pile-into-an-emptied-label race that would otherwise let
            #   two mutual non-neighbors form a disconnected pair.
            # Under "racy", a small rate of commits slip past the
            # serialization (BSP epoch races).
            commit = np.zeros(movers.shape[0], dtype=bool)
            joined_local = joined  # alias; persists across batches
            vacated_marks = []
            mown_list = mown.tolist()
            mcomm_list = mcomm.tolist()
            if race_rate > 0.0:
                if rng is None:
                    rng = Xorshift32()
                races = rng.floats_fast(len(mown_list)) < race_rate
            else:
                races = None
            for k in range(len(mown_list)):
                own, target = mown_list[k], mcomm_list[k]
                ok = not joined_local[own] and not vacated[target]
                if ok or (races is not None and races[k]):
                    commit[k] = True
                    joined_local[target] = True
                    vacated[own] = True
                    vacated_marks.append(own)
            # vacated[] is a within-batch notion: after the batch the
            # memberships are updated, so later scans cannot reference a
            # vacated label at all.
            for own in vacated_marks:
                vacated[own] = False
        decided_moves += int(movers.shape[0])
        if commit.any():
            cv = movers[commit]
            cown = mown[commit]
            cnew = mcomm[commit]
            kcv = Q[cv]
            ws.scatter_add(
                Sigma,
                np.concatenate([cown, cnew]),
                np.concatenate([-kcv, kcv]),
            )
            C[cv] = cnew
            total_moves += int(cv.shape[0])
    runtime.record_parallel(
        degrees + VERTEX_COST, phase=phase, atomics=float(n + 2 * total_moves)
    )
    if runtime.metrics.enabled:
        mr = runtime.metrics
        mr.counter("leiden_refine_splits_total",
                   "refinement moves applied (splits off the bound)"
                   ).inc(total_moves)
        mr.counter("leiden_refine_cas_rejects_total",
                   "refinement moves lost to the isolation CAS"
                   ).inc(decided_moves - total_moves)
    if tracer.enabled:
        tracer.count("refine_moves", total_moves)
        tracer.count("refine_cas_rejects", decided_moves - total_moves)
        # Convergence monitor: split count of this sweep (merges applied,
        # i.e. singleton sub-communities that split off their bound).
        tracer.record("refine_splits", total_moves)
    if runtime.profiler.enabled:
        runtime.profiler.mark("refine_splits", total_moves)
    return total_moves


def scan_bounded(
    table,
    graph: CSRGraph,
    bounds: np.ndarray,
    membership: np.ndarray,
    vertex: int,
    include_self: bool,
):
    """``scanBounded`` of Algorithm 3: ``K_{i→c}`` within the bound only."""
    dst, wgt = graph.edges(vertex)
    bi = bounds[vertex]
    for j, w in zip(dst.tolist(), wgt.tolist()):
        if not include_self and j == vertex:
            continue
        if bounds[j] != bi:
            continue
        table.accumulate(int(membership[j]), float(w))
    return table


def refine_loop(
    graph: CSRGraph,
    bounds: np.ndarray,
    membership: np.ndarray,
    vertex_weights: np.ndarray,
    community_weights: np.ndarray,
    *,
    runtime: Runtime,
    rng: Xorshift32 | None = None,
    refinement: str = "greedy",
    resolution: float = 1.0,
    quality: Quality | None = None,
    quantities=None,
    phase: str = PHASE_REFINE,
) -> int:
    """Reference per-vertex refinement sweep (exact Algorithm 3)."""
    n = graph.num_vertices
    if n == 0:
        return 0
    m = graph.m
    if m <= 0:
        return 0
    CB = bounds
    C = membership
    K = vertex_weights
    Sigma = AtomicArray(community_weights)
    tables = runtime.hashtables(n)
    tracer = runtime.tracer
    qual = quality or Quality("modularity", resolution)
    Q = K if quantities is None else quantities
    random = refinement == "random"
    if random and rng is None:
        rng = Xorshift32()

    moves = 0
    isolated = 0
    cas_rejects = 0
    for i in range(n):
        c = int(C[i])
        ki = float(K[i])
        qi = float(Q[i])
        if float(Sigma[c]) != qi:  # isolation test (line 4)
            continue
        isolated += 1
        table = tables[i % len(tables)]
        table.clear()
        scan_bounded(table, graph, CB, C, i, include_self=False)
        if len(table) == 0:
            continue
        kid = table.get(c)
        if random:
            best_c, best_dq = _pick_random(
                table, c, kid, ki, qi, Sigma, m, qual, rng
            )
        else:
            best_c, best_dq = _pick_greedy(
                table, c, kid, ki, qi, Sigma, m, qual
            )
        if best_c < 0 or best_dq <= 0.0:
            continue
        # Algorithm 3, lines 10-11: leave only while still isolated.
        if Sigma.compare_and_swap(c, qi, 0.0) == qi:
            Sigma.add(best_c, qi)
            C[i] = best_c
            moves += 1
        else:
            cas_rejects += 1
    runtime.record_parallel(
        graph.degrees + VERTEX_COST, phase=phase, atomics=float(n + 2 * moves)
    )
    if runtime.metrics.enabled:
        mr = runtime.metrics
        mr.counter("leiden_refine_splits_total",
                   "refinement moves applied (splits off the bound)"
                   ).inc(moves)
        mr.counter("leiden_refine_cas_rejects_total",
                   "refinement moves lost to the isolation CAS"
                   ).inc(cas_rejects)
    if tracer.enabled:
        tracer.count("refine_isolated", isolated)
        tracer.count("refine_moves", moves)
        tracer.count("refine_cas_rejects", cas_rejects)
        tracer.record("refine_splits", moves)
    if runtime.profiler.enabled:
        runtime.profiler.mark("refine_splits", moves)
    return moves


def _pick_greedy(table, c, kid, ki, qi, Sigma, m, qual):
    best_c, best_dq = -1, 0.0
    for cand, kic in table.items():
        if cand == c:
            continue
        dq = float(qual.delta(kic, kid, ki, qi,
                              float(Sigma[cand]), float(Sigma[c]), m))
        if dq > best_dq:
            best_c, best_dq = cand, dq
    return best_c, best_dq


def _pick_random(table, c, kid, ki, qi, Sigma, m, qual, rng):
    cands, dqs = [], []
    for cand, kic in table.items():
        if cand == c:
            continue
        dq = float(qual.delta(kic, kid, ki, qi,
                              float(Sigma[cand]), float(Sigma[c]), m))
        if dq > 0.0:
            cands.append(cand)
            dqs.append(dq)
    if not cands:
        return -1, 0.0
    total = sum(dqs)
    pick = rng.next_float() * total
    acc = 0.0
    for cand, dq in zip(cands, dqs):
        acc += dq
        if pick < acc:
            return cand, dq
    return cands[-1], dqs[-1]
