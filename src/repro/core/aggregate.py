"""Aggregation phase of GVE-Leiden (Algorithm 4).

Communities collapse into super-vertices.  The paper's optimizations are
all present:

1. the *community-vertices CSR* ``G'_C'`` (which vertices belong to each
   community) is built with a count + parallel exclusive scan + scatter;
2. the super-vertex graph ``G''`` is stored in a **holey CSR**: per-super-
   vertex capacity is overestimated as the community's total degree
   (count + exclusive scan), so edges can be written without a second
   compaction pass — rows keep slack at their tail;
3. per-community neighbor weights accumulate in per-thread collision-free
   hashtables (loop engine), a counting-sort/bincount grouping by source
   community over compacted destination-community keys (batch engine with
   a counting workspace — the prefix-sum-CSR analogue), or one segmented
   sort-reduce (batch engine with a sort workspace, the oracle).

All engines return the same graph (identical offsets/degrees; edge order
within a row may differ between loop and batch).  The two batch kernel
families are bitwise-identical to each other.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core._kernels import segment_pair_sums_count, segment_pair_sums_sort
from repro.core.local_move import scan_communities
from repro.core.result import PHASE_AGGREGATE
from repro.core.workspace import KernelWorkspace
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime
from repro.parallel.scan import csr_offsets_from_counts
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["aggregate_batch", "aggregate_loop", "community_vertices_csr"]


def community_vertices_csr(
    membership: np.ndarray, num_communities: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``G'_C'`` CSR: ``(offsets, vertices)`` grouped by community.

    ``vertices[offsets[c]:offsets[c+1]]`` lists community ``c``'s members
    in ascending vertex order (lines 3-6 of Algorithm 4: count, exclusive
    scan, atomic scatter — realized here as a stable argsort).
    """
    counts = np.bincount(membership, minlength=num_communities)
    offsets = csr_offsets_from_counts(counts)
    vertices = np.argsort(membership, kind="stable").astype(VERTEX_DTYPE)
    return offsets, vertices


def aggregate_batch(
    graph: CSRGraph,
    membership: np.ndarray,
    num_communities: int,
    *,
    runtime: Runtime,
    workspace: KernelWorkspace | None = None,
    phase: str = PHASE_AGGREGATE,
) -> CSRGraph:
    """Vectorized aggregation; returns the holey-CSR super-vertex graph.

    ``membership`` must be renumbered to compact ids ``0..k-1``.
    ``workspace`` selects the kernel family and supplies the preallocated
    scratch buffers; by default a fresh counting workspace is created.
    """
    k = int(num_communities)
    C = membership
    ws = workspace if workspace is not None else KernelWorkspace(
        graph.num_vertices
    )
    src, dst, wgt = graph.to_coo()

    # Community-vertices CSR (work: one pass over vertices + scan).  Its
    # member ordering doubles as the cost-model ordering below — no
    # second argsort of the membership.
    _cv_offsets, cv_vertices = community_vertices_csr(C, k)
    runtime.record_parallel(
        np.ones(graph.num_vertices), phase=phase, atomics=float(graph.num_vertices)
    )
    runtime.record_serial(float(k), phase=phase)

    # Overestimated super-vertex degrees: total degree of each community
    # (lines 8-9) — this is what makes the CSR holey.
    comm_total_degree = np.bincount(C[src], minlength=k).astype(OFFSET_DTYPE)
    offsets = csr_offsets_from_counts(comm_total_degree)

    if src.shape[0] == 0:
        return CSRGraph(
            offsets,
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
            degrees=np.zeros(k, dtype=OFFSET_DTYPE),
            validate=False,
        )

    # Group edge weights by (community(src), community(dst)) — the batch
    # equivalent of scanning every member's edges into H_t (lines 11-16).
    # Self-edges are *included* (``self = true``), so intra-community
    # weight lands on the super-vertex's self-loop.  The counting kernel
    # compacts the destination-community keys and accumulates with
    # bincount grouped by source community; the sort kernel is the
    # argsort-over-global-keys oracle.
    cs = C[src]
    cd = C[dst]
    if ws.engine == "count":
        usrc, udst, usum = segment_pair_sums_count(
            cs, cd, wgt, k, ws._map, dense_grid_limit=ws.dense_grid_limit
        )
    else:
        usrc, udst, usum = segment_pair_sums_sort(cs, cd, wgt, k)
    udst = udst.astype(VERTEX_DTYPE)

    # Placement into the holey CSR: position = row offset + rank-in-row.
    degrees = np.bincount(usrc, minlength=k).astype(OFFSET_DTYPE)
    group_boundary = np.empty(usrc.shape[0], dtype=bool)
    group_boundary[0] = True
    np.not_equal(usrc[1:], usrc[:-1], out=group_boundary[1:])
    group_id = np.cumsum(group_boundary) - 1
    group_first = np.flatnonzero(group_boundary)
    rank = np.arange(usrc.shape[0], dtype=np.int64) - group_first[group_id]
    positions = offsets[usrc] + rank

    capacity = int(offsets[-1])
    targets = np.zeros(capacity, dtype=VERTEX_DTYPE)
    weights = np.zeros(capacity, dtype=WEIGHT_DTYPE)
    targets[positions] = udst
    weights[positions] = usum.astype(WEIGHT_DTYPE)

    # Work: every community scans its members' full edge lists, then
    # writes its deduplicated neighbor set atomically.  Costs are
    # recorded at member-vertex granularity (ordered by community, via
    # the community-vertices CSR built above): the total matches the
    # per-community loop exactly, and at paper scale — where even the
    # largest community is a tiny fraction of the graph — the chunked
    # load balance of the two formulations coincides, while
    # per-community items would overstate imbalance on the 1000x-smaller
    # stand-ins whose largest communities span whole chunks.
    runtime.record_parallel(
        graph.degrees[cv_vertices].astype(np.float64) + 1.0,
        phase=phase,
        atomics=float(usrc.shape[0]),
    )
    runtime.record_serial(float(k), phase=phase)
    if runtime.metrics.enabled:
        mr = runtime.metrics
        mr.counter("leiden_aggregate_super_vertices_total",
                   "super-vertices produced by aggregation").inc(k)
        mr.counter("leiden_aggregate_edge_writes_total",
                   "deduplicated super-edge writes").inc(usrc.shape[0])
    if runtime.tracer.enabled:
        runtime.tracer.count("aggregate_super_vertices", k)
        runtime.tracer.count("aggregate_edge_writes", usrc.shape[0])

    return CSRGraph(offsets, targets, weights, degrees=degrees, validate=False)


def aggregate_loop(
    graph: CSRGraph,
    membership: np.ndarray,
    num_communities: int,
    *,
    runtime: Runtime,
    phase: str = PHASE_AGGREGATE,
) -> CSRGraph:
    """Reference aggregation: the literal per-community hashtable loop."""
    k = int(num_communities)
    C = membership
    cv_offsets, cv_vertices = community_vertices_csr(C, k)

    # Overestimate degrees (communityTotalDegree + exclusive scan) — a
    # bincount-based scatter; degree sums stay exact in float64 far past
    # any representable edge count.
    comm_total_degree = np.bincount(
        C, weights=graph.degrees, minlength=k
    ).astype(OFFSET_DTYPE)
    offsets = csr_offsets_from_counts(comm_total_degree)

    capacity = int(offsets[-1])
    targets = np.zeros(capacity, dtype=VERTEX_DTYPE)
    weights = np.zeros(capacity, dtype=WEIGHT_DTYPE)
    degrees = np.zeros(k, dtype=OFFSET_DTYPE)

    tables = runtime.hashtables(k)
    work = np.ones(k, dtype=np.float64)
    edge_writes = 0
    for c in range(k):
        table = tables[c % len(tables)]
        table.clear()
        members = cv_vertices[cv_offsets[c] : cv_offsets[c + 1]]
        for i in members.tolist():
            scan_communities(table, graph, C, i, include_self=True)
            work[c] += graph.degree(i)
        pos = int(offsets[c])
        for d, w in table.items():
            targets[pos] = d
            weights[pos] = w
            pos += 1
            edge_writes += 1
        degrees[c] = pos - offsets[c]

    runtime.record_parallel(
        np.ones(graph.num_vertices), phase=phase, atomics=float(graph.num_vertices)
    )
    runtime.record_parallel(work, phase=phase, atomics=float(edge_writes))
    runtime.record_serial(float(2 * k), phase=phase)
    if runtime.metrics.enabled:
        mr = runtime.metrics
        mr.counter("leiden_aggregate_super_vertices_total",
                   "super-vertices produced by aggregation").inc(k)
        mr.counter("leiden_aggregate_edge_writes_total",
                   "deduplicated super-edge writes").inc(edge_writes)
    if runtime.tracer.enabled:
        runtime.tracer.count("aggregate_super_vertices", k)
        runtime.tracer.count("aggregate_edge_writes", edge_writes)

    return CSRGraph(offsets, targets, weights, degrees=degrees, validate=False)
