"""Aggregation phase of GVE-Leiden (Algorithm 4).

Communities collapse into super-vertices.  The paper's optimizations are
all present:

1. the *community-vertices CSR* ``G'_C'`` (which vertices belong to each
   community) is built with a count + parallel exclusive scan + scatter;
2. the super-vertex graph ``G''`` is stored in a **holey CSR**: per-super-
   vertex capacity is overestimated as the community's total degree
   (count + exclusive scan), so edges can be written without a second
   compaction pass — rows keep slack at their tail;
3. per-community neighbor weights accumulate in per-thread collision-free
   hashtables (loop engine) or one segmented sort-reduce (batch engine,
   the algebraic equivalent of all threads' hashtables at once).

Both engines return the same graph (identical offsets/degrees; edge order
within a row may differ).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.local_move import scan_communities
from repro.core.result import PHASE_AGGREGATE
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime
from repro.parallel.scan import csr_offsets_from_counts
from repro.types import ACCUM_DTYPE, OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["aggregate_batch", "aggregate_loop", "community_vertices_csr"]


def community_vertices_csr(
    membership: np.ndarray, num_communities: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The ``G'_C'`` CSR: ``(offsets, vertices)`` grouped by community.

    ``vertices[offsets[c]:offsets[c+1]]`` lists community ``c``'s members
    in ascending vertex order (lines 3-6 of Algorithm 4: count, exclusive
    scan, atomic scatter — realized here as a stable argsort).
    """
    counts = np.bincount(membership, minlength=num_communities)
    offsets = csr_offsets_from_counts(counts)
    vertices = np.argsort(membership, kind="stable").astype(VERTEX_DTYPE)
    return offsets, vertices


def aggregate_batch(
    graph: CSRGraph,
    membership: np.ndarray,
    num_communities: int,
    *,
    runtime: Runtime,
    phase: str = PHASE_AGGREGATE,
) -> CSRGraph:
    """Vectorized aggregation; returns the holey-CSR super-vertex graph.

    ``membership`` must be renumbered to compact ids ``0..k-1``.
    """
    k = int(num_communities)
    C = membership
    src, dst, wgt = graph.to_coo()

    # Community-vertices CSR (work: one pass over vertices + scan).
    cv_offsets, _cv_vertices = community_vertices_csr(C, k)
    runtime.record_parallel(
        np.ones(graph.num_vertices), phase=phase, atomics=float(graph.num_vertices)
    )
    runtime.record_serial(float(k), phase=phase)

    # Overestimated super-vertex degrees: total degree of each community
    # (lines 8-9) — this is what makes the CSR holey.
    comm_total_degree = np.bincount(C[src], minlength=k).astype(OFFSET_DTYPE)
    offsets = csr_offsets_from_counts(comm_total_degree)

    if src.shape[0] == 0:
        return CSRGraph(
            offsets,
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
            degrees=np.zeros(k, dtype=OFFSET_DTYPE),
            validate=False,
        )

    # Segmented sort-reduce over (community(src), community(dst)) pairs —
    # the batch equivalent of scanning every member's edges into H_t
    # (lines 11-16).  Self-edges are *included* (``self = true``), so
    # intra-community weight lands on the super-vertex's self-loop.
    cs = C[src].astype(np.int64)
    cd = C[dst].astype(np.int64)
    key = cs * k + cd
    order = np.argsort(key, kind="stable")
    ksort = key[order]
    wsort = wgt[order].astype(ACCUM_DTYPE)
    boundary = np.empty(ksort.shape[0], dtype=bool)
    boundary[0] = True
    np.not_equal(ksort[1:], ksort[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    usum = np.add.reduceat(wsort, starts)
    ukey = ksort[starts]
    usrc = (ukey // k).astype(np.int64)
    udst = (ukey % k).astype(VERTEX_DTYPE)

    # Placement into the holey CSR: position = row offset + rank-in-row.
    degrees = np.bincount(usrc, minlength=k).astype(OFFSET_DTYPE)
    group_boundary = np.empty(usrc.shape[0], dtype=bool)
    group_boundary[0] = True
    np.not_equal(usrc[1:], usrc[:-1], out=group_boundary[1:])
    group_id = np.cumsum(group_boundary) - 1
    group_first = np.flatnonzero(group_boundary)
    rank = np.arange(usrc.shape[0], dtype=np.int64) - group_first[group_id]
    positions = offsets[usrc] + rank

    capacity = int(offsets[-1])
    targets = np.zeros(capacity, dtype=VERTEX_DTYPE)
    weights = np.zeros(capacity, dtype=WEIGHT_DTYPE)
    targets[positions] = udst
    weights[positions] = usum.astype(WEIGHT_DTYPE)

    # Work: every community scans its members' full edge lists, then
    # writes its deduplicated neighbor set atomically.  Costs are
    # recorded at member-vertex granularity (ordered by community): the
    # total matches the per-community loop exactly, and at paper scale —
    # where even the largest community is a tiny fraction of the graph —
    # the chunked load balance of the two formulations coincides, while
    # per-community items would overstate imbalance on the 1000x-smaller
    # stand-ins whose largest communities span whole chunks.
    order_by_comm = np.argsort(C, kind="stable")
    runtime.record_parallel(
        graph.degrees[order_by_comm].astype(np.float64) + 1.0,
        phase=phase,
        atomics=float(usrc.shape[0]),
    )
    runtime.record_serial(float(k), phase=phase)
    if runtime.tracer.enabled:
        runtime.tracer.count("aggregate_super_vertices", k)
        runtime.tracer.count("aggregate_edge_writes", usrc.shape[0])

    return CSRGraph(offsets, targets, weights, degrees=degrees, validate=False)


def aggregate_loop(
    graph: CSRGraph,
    membership: np.ndarray,
    num_communities: int,
    *,
    runtime: Runtime,
    phase: str = PHASE_AGGREGATE,
) -> CSRGraph:
    """Reference aggregation: the literal per-community hashtable loop."""
    k = int(num_communities)
    C = membership
    cv_offsets, cv_vertices = community_vertices_csr(C, k)

    # Overestimate degrees (communityTotalDegree + exclusive scan).
    comm_total_degree = np.zeros(k, dtype=OFFSET_DTYPE)
    np.add.at(comm_total_degree, C, graph.degrees)
    offsets = csr_offsets_from_counts(comm_total_degree)

    capacity = int(offsets[-1])
    targets = np.zeros(capacity, dtype=VERTEX_DTYPE)
    weights = np.zeros(capacity, dtype=WEIGHT_DTYPE)
    degrees = np.zeros(k, dtype=OFFSET_DTYPE)

    tables = runtime.hashtables(k)
    work = np.ones(k, dtype=np.float64)
    edge_writes = 0
    for c in range(k):
        table = tables[c % len(tables)]
        table.clear()
        members = cv_vertices[cv_offsets[c] : cv_offsets[c + 1]]
        for i in members.tolist():
            scan_communities(table, graph, C, i, include_self=True)
            work[c] += graph.degree(i)
        pos = int(offsets[c])
        for d, w in table.items():
            targets[pos] = d
            weights[pos] = w
            pos += 1
            edge_writes += 1
        degrees[c] = pos - offsets[c]

    runtime.record_parallel(
        np.ones(graph.num_vertices), phase=phase, atomics=float(graph.num_vertices)
    )
    runtime.record_parallel(work, phase=phase, atomics=float(edge_writes))
    runtime.record_serial(float(2 * k), phase=phase)
    if runtime.tracer.enabled:
        runtime.tracer.count("aggregate_super_vertices", k)
        runtime.tracer.count("aggregate_edge_writes", edge_writes)

    return CSRGraph(offsets, targets, weights, degrees=degrees, validate=False)
