"""GVE-Louvain: the Louvain method with the same optimizations.

The paper derives its Leiden optimizations from the authors' Louvain
implementation (GVE-Louvain, reference [23]); the Leiden algorithm is
Louvain plus the refinement phase.  Disabling refinement in the shared
driver therefore *is* GVE-Louvain: local-moving then aggregation by the
move-phase communities, with threshold scaling, aggregation tolerance,
vertex pruning and the CSR aggregation intact.

Louvain is also the reference point for the quality comparisons: it may
produce internally-disconnected communities, which Leiden's refinement
provably avoids — our test suite checks both sides of that claim.
"""

from __future__ import annotations

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime

__all__ = ["louvain"]


def louvain(
    graph: CSRGraph,
    config: LeidenConfig | None = None,
    *,
    runtime: Runtime | None = None,
) -> LeidenResult:
    """Detect communities with GVE-Louvain (no refinement phase)."""
    cfg = config or LeidenConfig()
    cfg = cfg.with_(use_refinement=False)
    return leiden(graph, cfg, runtime=runtime)
