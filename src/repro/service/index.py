"""Query-side index over a partition: O(1) lookups, O(deg) aggregation.

A :class:`CommunityIndex` is built once per partition version and makes
the three serving queries cheap:

- ``community_of(v)`` — O(1) array read;
- ``members(c)`` — O(|c|) slice of a community→members CSR;
- ``neighbor_communities(graph, v)`` — O(deg(v) log deg(v)), aggregating
  edge weight per adjacent community.

The members CSR is the standard counting-sort layout (bincount of the
membership, prefix sum, stable argsort), mirroring the community-
vertices CSR the aggregation kernels build — but retained for the
lifetime of the partition version instead of one pass.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE

__all__ = ["CommunityIndex"]


class CommunityIndex:
    """Immutable lookup structures for one membership vector.

    ``layout`` optionally attaches the :class:`repro.graph.relabel.
    Relabeling` the server derived from this membership.  When the
    layout is community-contiguous (``membership[layout.perm]`` is
    grouped — true by construction when the layout was built from this
    membership), :meth:`members_slice` serves each community as a
    *slice* of ``layout.perm`` instead of the gathered ``members_``
    row: zero-copy member ranges over the contiguous layout.
    """

    __slots__ = ("membership", "offsets", "members_", "sizes",
                 "layout", "_slice_order")

    def __init__(self, membership, *, layout=None) -> None:
        m = np.ascontiguousarray(membership, dtype=VERTEX_DTYPE)
        self.membership: np.ndarray = m
        k = int(m.max()) + 1 if m.shape[0] else 0
        counts = np.bincount(m, minlength=k).astype(OFFSET_DTYPE)
        self.offsets: np.ndarray = np.zeros(k + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=self.offsets[1:])
        # Stable sort keeps members in ascending vertex order per row.
        self.members_: np.ndarray = np.argsort(
            m, kind="stable").astype(VERTEX_DTYPE)
        self.sizes: np.ndarray = counts
        self.layout = layout
        self._slice_order: np.ndarray | None = None
        if layout is not None:
            perm = np.asarray(layout.perm)
            if perm.shape[0] == m.shape[0]:
                grouped = m[perm]
                # Contiguity detection via the relabel metadata: the
                # permuted membership must be non-decreasing, so the
                # index's own offsets address slices of ``perm``.
                if grouped.shape[0] == 0 or bool(
                        np.all(grouped[1:] >= grouped[:-1])):
                    self._slice_order = perm.astype(
                        VERTEX_DTYPE, copy=False)

    # -- basic queries ----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.membership.shape[0]

    @property
    def num_communities(self) -> int:
        return self.offsets.shape[0] - 1

    def community_of(self, vertex: int) -> int:
        """Community id of ``vertex`` (O(1))."""
        return int(self.membership[vertex])

    def members(self, community: int) -> np.ndarray:
        """Vertices of ``community`` in ascending order (a view)."""
        s, e = self.offsets[community], self.offsets[community + 1]
        return self.members_[s:e]

    @property
    def is_contiguous_layout(self) -> bool:
        """True when :meth:`members_slice` serves layout-order slices."""
        return self._slice_order is not None

    def members_slice(self, community: int) -> np.ndarray:
        """Vertices of ``community``, preferring the layout fast path.

        With a community-contiguous layout attached, this is a view into
        ``layout.perm`` — the members in *layout order* (ascending ids
        for mode ``"community"``, descending degree for
        ``"community-degree"``) with no gather.  Without one, falls back
        to :meth:`members` (ascending ids).  Both return the same member
        *set*.
        """
        if self._slice_order is not None:
            s, e = self.offsets[community], self.offsets[community + 1]
            return self._slice_order[s:e]
        return self.members(community)

    def size(self, community: int) -> int:
        return int(self.sizes[community])

    def neighbor_communities(
        self, graph: CSRGraph, vertex: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Adjacent communities of ``vertex`` and total edge weight to each.

        Returns ``(community_ids, weights)`` sorted by community id;
        ``vertex``'s own community appears when it has intra-community
        edges.  O(deg log deg) via one small sort over the vertex's row.
        """
        nbrs, wgts = graph.edges(vertex)
        if nbrs.shape[0] == 0:
            return (np.empty(0, dtype=VERTEX_DTYPE),
                    np.empty(0, dtype=np.float64))
        comms = self.membership[nbrs]
        order = np.argsort(comms, kind="stable")
        sorted_comms = comms[order]
        boundaries = np.ones(sorted_comms.shape[0], dtype=bool)
        boundaries[1:] = sorted_comms[1:] != sorted_comms[:-1]
        starts = np.flatnonzero(boundaries)
        totals = np.add.reduceat(
            wgts[order].astype(np.float64), starts)
        return sorted_comms[starts].copy(), totals

    # -- accounting -------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Bytes held by the index arrays (the store's budget unit)."""
        total = int(self.membership.nbytes + self.offsets.nbytes
                    + self.members_.nbytes + self.sizes.nbytes)
        if self._slice_order is not None:
            total += int(self._slice_order.nbytes)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CommunityIndex(n={self.num_vertices}, "
                f"communities={self.num_communities})")
