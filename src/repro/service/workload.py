"""Seeded closed-loop client generator for the partition server.

A workload drives one :class:`~repro.service.server.PartitionServer`
through the full request lifecycle, deterministically for a given
``(profile, seed)``:

1. **warm-up** — a DETECT per registry graph, plus duplicate DETECTs
   submitted while the originals are still queued (exercising request
   coalescing);
2. **steady state** — a Zipf-skewed query mix (``community_of`` /
   ``members`` / ``neighbor_communities`` / ``membership``) submitted
   closed-loop (one in flight at a time), interrupted by bursts of
   UPDATE requests that are accepted immediately and micro-batched into
   refreshes — queries issued between a burst and its flush are served
   stale;
3. **drain** — flush pending updates and reconcile, then (optionally)
   verify that the membership served for every graph is *identical* to
   a from-scratch :func:`~repro.core.leiden.leiden` run on the final
   graph (initial graph plus every submitted batch, applied in order).

The resulting stats document contains no wall-clock fields, so two runs
with the same profile and seed emit byte-identical JSON — which is what
the committed service baseline gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.dynamic.batch import EdgeBatch, apply_batch, random_batch
from repro.errors import ConfigError, ServiceOverloadError
from repro.service.requests import (
    DetectRequest,
    QueryRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.service.server import PartitionServer, ServiceConfig

__all__ = ["WorkloadProfile", "WorkloadResult", "PROFILES", "run_workload"]

#: Version tag of the workload result document.
WORKLOAD_SCHEMA = "repro.service-workload/1"


@dataclass(frozen=True)
class WorkloadProfile:
    """One named request mix."""

    name: str
    graphs: tuple
    #: Steady-state QUERY requests (total, across graphs).
    num_queries: int
    #: UPDATE bursts injected across the steady state.
    update_bursts: int
    #: UPDATE requests per burst.
    burst_size: int
    #: Insertions (and deletions) per UPDATE batch.
    edges_per_update: int
    #: Duplicate DETECTs submitted behind each original (coalescing).
    duplicate_detects: int
    #: A STATS request every this many queries.
    stats_every: int
    #: Zipf exponent of the query-vertex distribution.
    zipf_exponent: float = 1.3


PROFILES: Dict[str, WorkloadProfile] = {
    p.name: p
    for p in [
        WorkloadProfile("tiny", ("com-Orkut",), 40, 1, 4, 3, 1, 16),
        WorkloadProfile("quick", ("com-Orkut", "asia_osm"),
                        160, 2, 6, 4, 2, 40),
        WorkloadProfile("smoke", ("asia_osm", "uk-2002", "com-Orkut"),
                        400, 3, 8, 6, 2, 80),
    ]
}


@dataclass
class WorkloadResult:
    """Everything one workload run produced."""

    profile: str
    seed: int
    stats: dict
    #: graph name -> bool: served membership == from-scratch solve.
    membership_matches_scratch: Dict[str, bool]
    #: graph name -> store key.
    keys: Dict[str, str]
    #: Submissions rejected by backpressure (resubmitted after drain).
    overloads: int

    def to_json_dict(self) -> dict:
        return {
            "schema": WORKLOAD_SCHEMA,
            "profile": self.profile,
            "seed": self.seed,
            "overloads": self.overloads,
            "membership_matches_scratch": dict(
                sorted(self.membership_matches_scratch.items())),
            "stats": self.stats,
        }


def _zipf_vertex(rng: np.random.Generator, n: int, s: float) -> int:
    """A Zipf-skewed vertex id in ``[0, n)``."""
    return int((int(rng.zipf(s)) - 1) % n)


def run_workload(
    profile: str | WorkloadProfile = "quick",
    *,
    seed: int = 0,
    server: Optional[PartitionServer] = None,
    service_config: Optional[ServiceConfig] = None,
    verify: bool = True,
) -> WorkloadResult:
    """Drive a server through ``profile``; returns the deterministic
    result document.

    ``server`` lets callers supply a preconfigured instance (fault
    hooks, tracer); otherwise one is built from ``service_config``.
    """
    if isinstance(profile, str):
        try:
            prof = PROFILES[profile]
        except KeyError:
            raise ConfigError(
                f"unknown workload profile {profile!r}; "
                f"known: {sorted(PROFILES)}") from None
    else:
        prof = profile
    srv = server or PartitionServer(service_config)
    rng = np.random.default_rng(seed)
    overloads = 0

    def submit(request):
        """Closed-loop submit: on backpressure, drain then resubmit."""
        nonlocal overloads
        try:
            return srv.submit(request)
        except ServiceOverloadError:
            overloads += 1
            while srv.step() is not None:
                pass
            return srv.submit(request)

    # -- warm-up: DETECT (+ duplicates) per graph ------------------------
    graphs = {name: load_graph(name) for name in prof.graphs}
    detect_tickets = {}
    for name, graph in graphs.items():
        detect_tickets[name] = submit(DetectRequest(graph))
        for _ in range(prof.duplicate_detects):
            submit(DetectRequest(graph))  # coalesces onto the original
    while srv.step() is not None:
        pass
    keys = {name: t.response["key"] for name, t in detect_tickets.items()}

    # -- steady state: Zipf queries + update bursts ----------------------
    names = list(prof.graphs)
    burst_at = {
        (i + 1) * prof.num_queries // (prof.update_bursts + 1)
        for i in range(prof.update_bursts)
    }
    submitted_batches: Dict[str, List[EdgeBatch]] = {n: [] for n in names}
    burst_index = 0
    for i in range(prof.num_queries):
        if i in burst_at:
            # A burst of updates for one graph, submitted back-to-back
            # so the queue-level micro-batching kicks in.
            target = names[burst_index % len(names)]
            for j in range(prof.burst_size):
                batch = random_batch(
                    graphs[target],
                    num_insertions=prof.edges_per_update,
                    num_deletions=prof.edges_per_update,
                    seed=seed + 1000 * (burst_index + 1) + j,
                )
                submitted_batches[target].append(batch)
                submit(UpdateRequest(keys[target], batch))
            burst_index += 1
        name = names[int(rng.integers(0, len(names)))]
        graph = graphs[name]
        kind_draw = float(rng.random())
        vertex = _zipf_vertex(rng, graph.num_vertices, prof.zipf_exponent)
        if kind_draw < 0.70:
            req = QueryRequest(keys[name], "community_of", vertex=vertex)
        elif kind_draw < 0.85:
            # Member listing for the Zipf vertex's own community: the
            # hot-community read pattern.
            entry = srv.store.peek(keys[name])
            community = (entry.index.community_of(vertex)
                         if entry is not None else 0)
            req = QueryRequest(keys[name], "members", community=community)
        elif kind_draw < 0.95:
            req = QueryRequest(keys[name], "neighbor_communities",
                               vertex=vertex)
        else:
            req = QueryRequest(keys[name], "membership")
        submit(req)
        if prof.stats_every and (i + 1) % prof.stats_every == 0:
            submit(StatsRequest())
        while srv.step() is not None:  # closed loop: drain before next
            pass

    # -- drain: flush + reconcile ----------------------------------------
    srv.drain()

    # -- verification: served membership == from-scratch solve ----------
    matches: Dict[str, bool] = {}
    if verify:
        for name in names:
            entry = srv.store.peek(keys[name])
            final_graph = graphs[name]
            for batch in submitted_batches[name]:
                final_graph = apply_batch(final_graph, batch)
            scratch = leiden(final_graph, srv.config.leiden)
            matches[name] = (
                entry is not None
                and entry.graph == final_graph
                and np.array_equal(entry.membership, scratch.membership)
            )

    return WorkloadResult(
        profile=prof.name,
        seed=seed,
        stats=srv.stats(),
        membership_matches_scratch=matches,
        keys=keys,
        overloads=overloads,
    )
