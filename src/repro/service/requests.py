"""Typed requests, the bounded admission queue, and UPDATE coalescing.

Four request kinds flow through the service:

- **DETECT** — register a graph and compute (or reuse) its partition;
- **QUERY** — membership lookups against a served partition;
- **UPDATE** — an :class:`~repro.dynamic.batch.EdgeBatch` to fold in;
- **STATS** — a snapshot of the service counters.

The :class:`AdmissionQueue` is bounded: ``submit`` raises
:class:`~repro.errors.ServiceOverloadError` when full (backpressure —
closed-loop clients drain and retry).  Identical in-flight DETECTs
(same graph content and config, by fingerprint) are deduplicated onto
one ticket, so a thundering herd for a cold graph costs one detection.

:func:`coalesce_update_batches` merges a run of UPDATE batches into a
single batch whose one-shot application is equivalent to applying the
batches sequentially: for every undirected pair, insertions *before*
its last deletion are cancelled, and the pair is deleted first iff any
batch deleted it.  (Within one batch, :func:`~repro.dynamic.batch.
apply_batch` already applies deletions before insertions.)
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import LeidenConfig
from repro.dynamic.batch import EdgeBatch
from repro.errors import ServiceOverloadError
from repro.graph.csr import CSRGraph
from repro.service.fingerprint import partition_key
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = [
    "DETECT", "QUERY", "UPDATE", "STATS",
    "PENDING", "DONE", "FAILED", "NOT_FOUND",
    "DetectRequest", "QueryRequest", "UpdateRequest", "StatsRequest",
    "Ticket", "AdmissionQueue", "coalesce_update_batches",
]

#: Request kinds.
DETECT = "detect"
QUERY = "query"
UPDATE = "update"
STATS = "stats"

#: Ticket statuses.
PENDING = "pending"
DONE = "done"
FAILED = "failed"
NOT_FOUND = "not_found"

#: Query flavours a :class:`QueryRequest` may carry.
QUERY_KINDS = ("community_of", "members", "neighbor_communities",
               "membership")


@dataclass
class DetectRequest:
    """Register ``graph`` and ensure a partition exists for it."""

    graph: CSRGraph
    config: Optional[LeidenConfig] = None
    kind: str = field(default=DETECT, init=False)

    def store_key(self) -> str:
        return partition_key(self.graph, self.config)


@dataclass
class QueryRequest:
    """A membership lookup against the partition stored under ``key``."""

    key: str
    query: str = "community_of"
    vertex: Optional[int] = None
    community: Optional[int] = None
    kind: str = field(default=QUERY, init=False)

    def __post_init__(self) -> None:
        if self.query not in QUERY_KINDS:
            raise ValueError(
                f"query must be one of {QUERY_KINDS}, got {self.query!r}")


@dataclass
class UpdateRequest:
    """Fold ``batch`` into the partition stored under ``key``."""

    key: str
    batch: EdgeBatch = field(default_factory=EdgeBatch)
    kind: str = field(default=UPDATE, init=False)


@dataclass
class StatsRequest:
    """Snapshot the service counters."""

    kind: str = field(default=STATS, init=False)


@dataclass
class Ticket:
    """Tracks one submitted request through to its response."""

    id: int
    request: object
    status: str = PENDING
    #: JSON-ready response payload (query answers carry numpy arrays).
    response: dict = field(default_factory=dict)
    #: Logical-clock tick at submission (set by the server).
    enqueued_at: int = 0
    #: Logical-clock tick at completion.
    completed_at: int = 0
    #: How many duplicate DETECT submissions were coalesced onto this
    #: ticket (0 for every other request).
    coalesced: int = 0
    #: Request-trace context riding this ticket (a
    #: :class:`~repro.fleet.tracectx.TraceContext`), or ``None`` when
    #: request tracing is off.  Duck-typed: the server records spans via
    #: ``trace.span(...)`` behind a ``trace is not None`` guard and never
    #: serializes it, so responses stay byte-identical either way.
    trace: Optional[object] = None

    @property
    def kind(self) -> str:
        return self.request.kind  # type: ignore[attr-defined]

    @property
    def latency_units(self) -> int:
        return max(self.completed_at - self.enqueued_at, 0)

    @property
    def done(self) -> bool:
        return self.status != PENDING


class AdmissionQueue:
    """Bounded FIFO of tickets with DETECT deduplication.

    ``metrics`` (a :class:`~repro.observability.metrics.MetricsRegistry`)
    makes rejections visible as the ``queue_rejected_total`` counter —
    overflow otherwise surfaces only through the raised
    :class:`~repro.errors.ServiceOverloadError` and the ``rejected``
    stats field, which dashboards never scrape.
    """

    def __init__(self, capacity: int = 256, *, metrics=None) -> None:
        from repro.observability.metrics import NULL_REGISTRY

        self.capacity = int(capacity)
        self._queue: Deque[Ticket] = deque()
        self._ids = itertools.count(1)
        #: In-flight DETECT tickets by store key (queued or computing).
        self._inflight_detects: Dict[str, Ticket] = {}
        self.submitted = 0
        self.rejected = 0
        self.coalesced_detects = 0
        self.max_depth = 0
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_rejected = self.metrics.counter(
            "queue_rejected_total",
            "submissions rejected by admission-queue backpressure")

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def submit(self, request, *, now: int = 0) -> Ticket:
        """Enqueue ``request``; dedup DETECTs; raise when full."""
        if request.kind == DETECT:
            existing = self._inflight_detects.get(request.store_key())
            if existing is not None and not existing.done:
                existing.coalesced += 1
                self.coalesced_detects += 1
                self.submitted += 1
                return existing
        if len(self._queue) >= self.capacity:
            self.rejected += 1
            self._m_rejected.inc()
            raise ServiceOverloadError(
                f"admission queue full ({self.capacity} requests); "
                "drain or back off and resubmit")
        ticket = Ticket(id=next(self._ids), request=request, enqueued_at=now)
        self._queue.append(ticket)
        self.submitted += 1
        if request.kind == DETECT:
            self._inflight_detects[request.store_key()] = ticket
        self.max_depth = max(self.max_depth, len(self._queue))
        return ticket

    def pop(self) -> Optional[Ticket]:
        """Next ticket in FIFO order, or ``None`` when idle."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def pop_matching_updates(self, key: str) -> List[Ticket]:
        """Dequeue every queued UPDATE for ``key`` (micro-batching).

        Called when an UPDATE for ``key`` reaches the head: the whole
        backlog for that partition rides the same refresh.
        """
        matched = [t for t in self._queue
                   if t.kind == UPDATE and t.request.key == key]
        if matched:
            taken = set(map(id, matched))
            self._queue = deque(
                t for t in self._queue if id(t) not in taken)
        return matched

    def finish_detect(self, key: str) -> None:
        """Drop the in-flight marker once a DETECT completed."""
        self._inflight_detects.pop(key, None)

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "depth": self.depth,
            "submitted": self.submitted,
            "rejected": self.rejected,
            "coalesced_detects": self.coalesced_detects,
            "max_depth": self.max_depth,
        }


def coalesce_update_batches(batches: Sequence[EdgeBatch]) -> EdgeBatch:
    """Merge ``batches`` into one sequentially-equivalent batch.

    Per canonical undirected pair: the merged batch deletes the pair iff
    any input batch deleted it, and keeps only the insertions issued
    *after* the pair's last deletion (earlier ones would have been wiped
    by that deletion).  Since one-shot application removes deleted pairs
    before adding insertions, the surviving insertions land on the same
    post-deletion state as in sequential application.
    """
    if len(batches) == 1:
        return batches[0]
    if not batches:
        return EdgeBatch()

    isrc = [b.insert_sources for b in batches]
    idst = [b.insert_targets for b in batches]
    iwgt = [b.insert_weights for b in batches]
    dsrc = [b.delete_sources for b in batches]
    ddst = [b.delete_targets for b in batches]
    # Operation order: batch index is enough — within one batch,
    # deletions precede insertions (apply_batch semantics), so an
    # insertion in batch i survives a deletion in batch j iff i >= j.
    ins_order = np.concatenate([
        np.full(s.shape[0], i, dtype=np.int64)
        for i, s in enumerate(isrc)]) if isrc else np.empty(0, dtype=np.int64)
    del_order = np.concatenate([
        np.full(s.shape[0], i, dtype=np.int64)
        for i, s in enumerate(dsrc)]) if dsrc else np.empty(0, dtype=np.int64)
    isrc_all = np.concatenate(isrc) if isrc else np.empty(0, VERTEX_DTYPE)
    idst_all = np.concatenate(idst) if idst else np.empty(0, VERTEX_DTYPE)
    iwgt_all = np.concatenate(iwgt) if iwgt else np.empty(0, WEIGHT_DTYPE)
    dsrc_all = np.concatenate(dsrc) if dsrc else np.empty(0, VERTEX_DTYPE)
    ddst_all = np.concatenate(ddst) if ddst else np.empty(0, VERTEX_DTYPE)

    if dsrc_all.shape[0] == 0:
        return EdgeBatch(isrc_all, idst_all, iwgt_all, dsrc_all, ddst_all)

    n = int(max(isrc_all.max(initial=-1), idst_all.max(initial=-1),
                dsrc_all.max(initial=-1), ddst_all.max(initial=-1))) + 1
    dlo = np.minimum(dsrc_all, ddst_all).astype(np.int64)
    dhi = np.maximum(dsrc_all, ddst_all).astype(np.int64)
    dkeys = dlo * n + dhi
    # Last batch index that deleted each pair.
    uniq_dkeys, inverse = np.unique(dkeys, return_inverse=True)
    last_del = np.full(uniq_dkeys.shape[0], -1, dtype=np.int64)
    np.maximum.at(last_del, inverse, del_order)

    if isrc_all.shape[0]:
        ilo = np.minimum(isrc_all, idst_all).astype(np.int64)
        ihi = np.maximum(isrc_all, idst_all).astype(np.int64)
        ikeys = ilo * n + ihi
        slot = np.searchsorted(uniq_dkeys, ikeys)
        slot = np.clip(slot, 0, uniq_dkeys.shape[0] - 1)
        deleted = uniq_dkeys[slot] == ikeys
        # Keep insertions from batches at-or-after the pair's last delete.
        keep = ~deleted | (ins_order >= last_del[slot])
        isrc_all, idst_all = isrc_all[keep], idst_all[keep]
        iwgt_all = iwgt_all[keep]

    # Deduplicate the deletion list (first occurrence per canonical pair).
    order = np.argsort(dkeys, kind="stable")
    sorted_keys = dkeys[order]
    firsts = order[np.concatenate([
        [True], sorted_keys[1:] != sorted_keys[:-1]])]
    return EdgeBatch(isrc_all, idst_all, iwgt_all,
                     dsrc_all[firsts], ddst_all[firsts])
