"""The partition server: a deterministic in-process event loop.

:class:`PartitionServer` routes typed requests from the bounded
admission queue to the store, the detection engine and the incremental
updater:

- **DETECT** computes a partition (or reuses a fresh cached one keyed by
  graph fingerprint + config) and registers the graph for serving;
- **QUERY** is answered from the stored :class:`~repro.service.index.
  CommunityIndex` — fresh or stale, never by recomputing — so the query
  path stays O(1)/O(deg) regardless of refresh traffic;
- **UPDATE** batches are *accepted* cheaply (the entry turns stale and
  keeps serving) and folded in lazily: a refresh fires once the pending
  backlog reaches ``max_pending_updates`` or on :meth:`drain`, and a
  whole backlog rides one coalesced
  :func:`~repro.dynamic.update.dynamic_leiden`-style solve;
- **STATS** snapshots the counters.

Refreshes fall back from incremental to a full recompute when the
affected-vertex fraction (the frontier estimate: touched vertices over
graph size) exceeds ``full_recompute_threshold``.  Every solve runs
under an injectable fault hook with bounded retry-with-backoff; after
the retry budget the entry degrades to its last good partition instead
of failing the serving path.  On :meth:`drain` the server reconciles:
incrementally-refreshed partitions are recomputed from scratch so the
served membership is identical to a cold :func:`~repro.core.leiden.
leiden` run on the final graph.

Time is a logical clock (work units from the solver ledger, one unit
per queue operation), which makes latency percentiles — and the whole
stats document — deterministic for a given request sequence.  Wall-clock
latencies are reported separately through the tracer histogram
(``service_latency_units`` / per-request spans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.dynamic.batch import apply_batch
from repro.dynamic.strategies import affected_vertices
from repro.errors import ServiceError
from repro.observability.metrics import NULL_REGISTRY, exact_percentile
from repro.observability.tracer import NULL_TRACER
from repro.parallel.runtime import Runtime
from repro.service.index import CommunityIndex
from repro.service.requests import (
    DETECT,
    DONE,
    FAILED,
    NOT_FOUND,
    QUERY,
    STATS,
    UPDATE,
    AdmissionQueue,
    DetectRequest,
    QueryRequest,
    StatsRequest,
    Ticket,
    UpdateRequest,
    coalesce_update_batches,
)
from repro.service.store import DEGRADED, FRESH, STALE, PartitionEntry, PartitionStore
from repro.types import VERTEX_DTYPE

__all__ = ["ServiceConfig", "PartitionServer", "percentile"]

#: Version tag of the deterministic stats document.
STATS_SCHEMA = "repro.service-stats/1"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the partition server."""

    #: Detection config every solve uses (also part of the store key).
    leiden: LeidenConfig = field(default_factory=LeidenConfig)
    #: Byte budget of the partition store's LRU.
    store_budget_bytes: int = 256 * 2**20
    #: Admission queue capacity (backpressure beyond this).
    queue_capacity: int = 256
    #: Pending update batches that trigger a refresh before drain.
    max_pending_updates: int = 8
    #: Affected-vertex fraction above which a refresh recomputes from
    #: scratch instead of warm-starting (the incremental fallback).
    full_recompute_threshold: float = 0.25
    #: Affected-vertex strategy for incremental refreshes.
    approach: str = "frontier"
    #: Merge a flush's pending batches into one solve (the micro-batching
    #: optimization; disable for the one-solve-per-update ablation).
    coalesce_updates: bool = True
    #: Recompute incrementally-refreshed partitions from scratch when the
    #: queue drains, making served memberships identical to a cold run.
    reconcile_on_drain: bool = True
    #: Community-aware serving layout: when not ``"none"``, every
    #: committed partition doubles as a locality preprocessor — the
    #: server derives a :class:`repro.graph.relabel.Relabeling` from the
    #: membership it just computed (on detect, refresh and reconcile)
    #: and attaches it to the entry and its :class:`~repro.service.
    #: index.CommunityIndex`, so ``members`` queries are served as
    #: contiguous slices of the layout instead of gathers.  To also run
    #: the *solves* on a relabeled graph, set ``leiden.relabel`` (the
    #: warm-started refresh then reuses the stored partition as its
    #: layout source).
    relabel: str = "none"
    #: Retries per failing solve before degrading to last-good.
    max_retries: int = 2
    #: Logical-clock units added per retry (doubles per attempt).
    backoff_units: int = 64
    #: Logical-clock units a queue/lookup operation costs.
    query_cost_units: int = 1

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ServiceError("queue_capacity must be >= 1")
        if self.max_pending_updates < 1:
            raise ServiceError("max_pending_updates must be >= 1")
        if not (0.0 <= self.full_recompute_threshold <= 1.0):
            raise ServiceError(
                "full_recompute_threshold must be in [0, 1]")
        if self.max_retries < 0:
            raise ServiceError("max_retries must be >= 0")
        from repro.graph.relabel import RELABEL_MODES

        if self.relabel not in RELABEL_MODES:
            raise ServiceError(
                f"relabel must be one of {RELABEL_MODES}")


def percentile(values: List[int], q: float) -> int:
    """Nearest-rank percentile of ``values`` (0 for an empty list).

    Thin integer wrapper over the shared
    :func:`repro.observability.metrics.exact_percentile` — kept so the
    committed service-stats baselines stay bitwise identical.
    """
    return int(exact_percentile(values, q))


class _ComputeFailed(ServiceError):
    """Internal: a solve exhausted its retry budget."""


class PartitionServer:
    """Deterministic single-threaded partition-serving event loop.

    Parameters
    ----------
    config:
        Service tunables (:class:`ServiceConfig`).
    tracer:
        Observability tracer; spans and the wall-latency histogram are
        reported here.  Defaults to the disabled tracer.
    profiler:
        Thread-timeline profiler; request intervals land on a dedicated
        ``service`` lane of the Chrome trace (on the logical clock) and
        the per-region events of every solve join the same event
        stream.  Defaults to the disabled profiler.
    fault_hook:
        ``callable(op, attempt)`` invoked before every solve attempt
        (``op`` in ``{"detect", "refresh", "reconcile"}``).  Raising
        makes the attempt fail; the server retries with backoff and
        degrades to the last good partition when the budget is spent.
        The injection point for fault testing.
    metrics:
        :class:`~repro.observability.metrics.MetricsRegistry` the server
        (and every solve it runs) reports typed instruments to; defaults
        to the disabled :data:`~repro.observability.metrics.NULL_REGISTRY`.
    health:
        :class:`~repro.observability.health.HealthEvaluator` fed with
        per-request latency/error/staleness signals on the logical
        clock; when attached, :meth:`stats` gains a ``health`` block.
        Defaults to ``None`` (off — keeps the stats document identical
        to an uninstrumented server's).
    reqtrace:
        :class:`~repro.observability.reqtrace.RequestTracer` for
        *standalone* request tracing (``repro serve --reqtrace``): the
        server mints a trace per submission, records queue-wait / serve
        / refresh spans on its :attr:`lane`, links DETECT-dedup
        followers to their leader's trace, and finishes each trace at
        completion.  Leave ``None`` under a fleet — there the router
        owns the trace lifecycle and the server only appends spans to
        whatever context rides each ticket.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        tracer=None,
        profiler=None,
        fault_hook: Optional[Callable[[str, int], None]] = None,
        metrics=None,
        health=None,
        reqtrace=None,
        memory=None,
    ) -> None:
        from repro.observability.profiler import NULL_PROFILER

        self.config = config or ServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.reqtrace = reqtrace
        self.memory = memory
        #: Request-trace lane name of this server's spans (the fleet
        #: overwrites it with the shard id, so merged Chrome views get
        #: one lane per shard).
        self.lane = "server"
        #: DETECT-dedup follower contexts by leader ticket id (standalone
        #: tracing only): finished alongside the leader's completion.
        self._trace_followers: Dict[int, List[object]] = {}
        #: ``{mode, frontier_frac, affected}`` of the most recent
        #: :meth:`_refresh_once` — picked up by ``_flush`` for the
        #: refresh spans of member tickets' traces.
        self._last_refresh_info: Dict[str, object] = {}
        self.store = PartitionStore(self.config.store_budget_bytes,
                                    metrics=self.metrics,
                                    memory=memory)
        self.queue = AdmissionQueue(self.config.queue_capacity,
                                    metrics=self.metrics)
        self.fault_hook = fault_hook
        m = self.metrics
        self._m_requests = m.counter(
            "service_requests_total",
            "requests completed, by kind and final status",
            ("kind", "status"))
        self._m_latency = m.histogram(
            "service_latency_units",
            "request latency in logical-clock units, by kind", ("kind",))
        self._m_queue_depth = m.gauge(
            "service_queue_depth", "admission-queue depth after last op")
        self._m_detect_dedups = m.counter(
            "service_detect_dedups_total",
            "DETECT submissions coalesced onto an in-flight ticket")
        self._m_coalesced = m.counter(
            "service_updates_coalesced_total",
            "update batches merged into another batch's solve")
        self._m_refreshes = m.counter(
            "service_refreshes_total",
            "partition refreshes, by solve mode", ("mode",))
        self._m_retries = m.counter(
            "service_solve_retries_total", "solve attempts retried")
        self._m_failures = m.counter(
            "service_solve_failures_total",
            "solves failed past the retry budget")
        self._m_flush_batches = m.histogram(
            "service_flush_batches", "pending batches folded per flush")
        #: Logical clock, in solver work units.
        self.clock = 0
        self.counters: Dict[str, int] = {
            "detect_runs": 0,
            "detect_cache_hits": 0,
            "queries_served": 0,
            "queries_served_stale": 0,
            "queries_not_found": 0,
            "updates_accepted": 0,
            "updates_coalesced": 0,
            "update_flushes": 0,
            "incremental_refreshes": 0,
            "full_recomputes": 0,
            "reconciles": 0,
            "solve_retries": 0,
            "solve_failures": 0,
        }
        self._requests_by_kind: Dict[str, int] = {
            DETECT: 0, QUERY: 0, UPDATE: 0, STATS: 0,
        }
        self._latencies: Dict[str, List[int]] = {
            DETECT: [], QUERY: [], UPDATE: [], STATS: [],
        }
        #: Update tickets awaiting their flush, per store key.
        self._pending_tickets: Dict[str, List[Ticket]] = {}
        #: Keys whose current partition came from an incremental refresh
        #: (reconcile targets).
        self._unreconciled: set[str] = set()

    # -- client API -------------------------------------------------------

    def submit(self, request) -> Ticket:
        """Admit ``request``; raises ``ServiceOverloadError`` when full."""
        dedups_before = self.queue.coalesced_detects
        ticket = self.queue.submit(request, now=self.clock)
        self._requests_by_kind[request.kind] += 1
        if self.metrics.enabled:
            self._m_detect_dedups.inc(
                self.queue.coalesced_detects - dedups_before)
            self._m_queue_depth.set(self.queue.depth)
        if self.reqtrace is not None and self.reqtrace.enabled:
            # Standalone tracing: this server owns the trace lifecycle.
            key = getattr(request, "key", None)
            if key is None:
                key = request.store_key() if request.kind == DETECT else ""
            ctx = self.reqtrace.begin(request.kind, key, self.clock)
            if ticket.trace is None:
                ticket.trace = ctx
            else:
                # DETECT dedup: the queue returned an in-flight leader.
                # The follower's trace records the join and links to the
                # leader; it finishes alongside the leader's completion.
                ctx.span("dedup_join", self.lane, self.clock, self.clock,
                         link=ticket.trace.trace_id,
                         leader_seq=ticket.trace.seq)
                self._trace_followers.setdefault(ticket.id, []).append(ctx)
        return ticket

    def step(self) -> Optional[Ticket]:
        """Process the next queued request; ``None`` when idle."""
        ticket = self.queue.pop()
        if ticket is None:
            return None
        req = ticket.request
        tracer = self.tracer
        t0 = perf_counter() if tracer.enabled else 0.0
        u0 = self.clock
        trace = ticket.trace
        if trace is not None:
            trace.span("queue_wait", self.lane,
                       float(ticket.enqueued_at), float(u0))
        hits0 = self.counters["detect_cache_hits"]
        with tracer.span(f"service.{req.kind}"):
            if req.kind == DETECT:
                self._process_detect(ticket)
            elif req.kind == QUERY:
                self._process_query(ticket)
            elif req.kind == UPDATE:
                self._process_update(ticket)
            else:
                self._process_stats(ticket)
            if tracer.enabled:
                tracer.observe("service_request_seconds",
                               perf_counter() - t0)
        if trace is not None:
            attrs = {"status": ticket.status}
            state = ticket.response.get("state") if ticket.response else None
            if state is not None:
                attrs["state"] = state
            if req.kind == DETECT:
                attrs["cache_hit"] = (
                    self.counters["detect_cache_hits"] > hits0)
            trace.span(f"serve.{req.kind}", self.lane,
                       float(u0), float(self.clock), **attrs)
        if self.profiler.enabled:
            # Request-latency event on the service lane, measured on the
            # logical clock (work units) — deterministic like the stats.
            self.profiler.request(
                f"service.{req.kind}",
                max(float(self.clock - u0), 1.0),
                status=ticket.status,
            )
        if self.metrics.enabled:
            self._m_queue_depth.set(self.queue.depth)
        return ticket

    def drain(self) -> int:
        """Run until idle: empty the queue, flush every pending update,
        then reconcile (when configured).  Returns processed requests."""
        processed = 0
        while self.step() is not None:
            processed += 1
        for key in self.store.keys():
            self._flush(key)
        if self.config.reconcile_on_drain:
            # Sorted: set order depends on hash randomization, and the
            # reconcile order is observable (last-solve gauges, float
            # accumulation order in metric counters).
            for key in sorted(self._unreconciled):
                self._reconcile(key)
        return processed

    # -- convenience (submit + drain) -------------------------------------

    def detect(self, graph, config: LeidenConfig | None = None) -> Ticket:
        """Synchronous DETECT: submit, process, return the ticket."""
        ticket = self.submit(DetectRequest(graph, config))
        while not ticket.done:
            self.step()
        return ticket

    def query(self, key: str, query: str = "community_of", *,
              vertex: int | None = None,
              community: int | None = None) -> Ticket:
        """Synchronous QUERY."""
        ticket = self.submit(QueryRequest(key, query, vertex=vertex,
                                          community=community))
        while not ticket.done:
            self.step()
        return ticket

    def update(self, key: str, batch) -> Ticket:
        """Asynchronous UPDATE: accepted now, committed at flush."""
        return self.submit(UpdateRequest(key, batch))

    def stats_snapshot(self) -> dict:
        """Synchronous STATS."""
        ticket = self.submit(StatsRequest())
        while not ticket.done:
            self.step()
        return ticket.response

    # -- request processing ----------------------------------------------

    def _tick(self, units: int) -> None:
        self.clock += int(units)

    def _complete(self, ticket: Ticket, status: str = DONE) -> None:
        ticket.status = status
        ticket.completed_at = self.clock
        lat = ticket.latency_units
        self._latencies[ticket.kind].append(lat)
        tracer = self.tracer
        if tracer.enabled:
            tracer.observe("service_latency_units", float(lat))
        if self.metrics.enabled:
            self._m_requests.labels(ticket.kind, status).inc()
            self._m_latency.labels(ticket.kind).observe(
                float(lat),
                ticket.trace.trace_id if ticket.trace is not None else None)
        if self.health is not None:
            self.health.record_value(
                f"{ticket.kind}_latency_units", self.clock, float(lat))
            self.health.record_event(
                "request_errors", self.clock, status == FAILED)
        if self.reqtrace is not None and self.reqtrace.enabled \
                and ticket.trace is not None:
            # Standalone tracing: seal the trace (and any dedup
            # followers riding this ticket) at completion.  Under a
            # fleet ``self.reqtrace`` is None and the router seals.
            self.reqtrace.finish(
                ticket.trace, status=status, clock=self.clock,
                latency_units=float(lat))
            for ctx in self._trace_followers.pop(ticket.id, ()):
                self.reqtrace.finish(
                    ctx, status=status, clock=self.clock,
                    latency_units=float(lat))
            if self.health is not None:
                self.reqtrace.observe_health(
                    self.health.state(self.clock), self.clock)

    def _record_memory_health(self) -> None:
        """Feed the ``mem_peak_to_budget`` SLO after a store mutation:
        the high-water resident bytes as a fraction of the budget."""
        if self.health is not None and self.store.budget_bytes > 0:
            self.health.record_value(
                "mem_peak_to_budget_ratio", self.clock,
                self.store.peak_bytes / self.store.budget_bytes)

    def _layout_index(self, graph, membership):
        """``(layout, index)`` for a freshly committed membership.

        With ``config.relabel`` off this is just the plain index; on,
        the membership is also turned into its community-contiguous
        :class:`~repro.graph.relabel.Relabeling` so member queries are
        served as slices over the layout (the partition doubling as the
        locality preprocessor for its own serving path).
        """
        if self.config.relabel == "none":
            return None, CommunityIndex(membership)
        from repro.graph.relabel import community_relabeling

        layout = community_relabeling(
            graph, [membership], mode=self.config.relabel)
        return layout, CommunityIndex(membership, layout=layout)

    def _process_detect(self, ticket: Ticket) -> None:
        req: DetectRequest = ticket.request
        key = req.store_key()
        cfg = req.config or self.config.leiden
        entry = self.store.peek(key)
        fp = req.graph.fingerprint()
        try:
            if entry is not None and entry.state == FRESH \
                    and entry.fingerprint == fp:
                self.counters["detect_cache_hits"] += 1
                self._tick(self.config.query_cost_units)
            else:
                result = self._solve(
                    "detect", lambda rt: leiden(req.graph, cfg, runtime=rt))
                membership = np.ascontiguousarray(
                    result.membership, dtype=VERTEX_DTYPE)
                layout, index = self._layout_index(req.graph, membership)
                entry = PartitionEntry(
                    key=key,
                    fingerprint=fp,
                    graph=req.graph,
                    membership=membership,
                    index=index,
                    layout=layout,
                )
                self.store.put(entry)
                self._record_memory_health()
                self.counters["detect_runs"] += 1
                self._unreconciled.discard(key)
        except _ComputeFailed:
            self.queue.finish_detect(key)
            ticket.response = {"key": key, "error": "detection failed"}
            self._complete(ticket, FAILED)
            return
        self.queue.finish_detect(key)
        ticket.response = {
            "key": key,
            "fingerprint": entry.fingerprint,
            "version": entry.version,
            "num_communities": entry.num_communities,
        }
        self._complete(ticket)

    def _process_query(self, ticket: Ticket) -> None:
        req: QueryRequest = ticket.request
        entry = self.store.get(req.key)
        self._tick(self.config.query_cost_units)
        if entry is None:
            self.counters["queries_not_found"] += 1
            ticket.response = {"key": req.key, "error": "unknown partition"}
            self._complete(ticket, NOT_FOUND)
            return
        index = entry.index
        if req.query == "community_of":
            value = index.community_of(req.vertex)
        elif req.query == "members":
            # The layout fast path (a slice of the contiguous order)
            # when the entry carries one; the gathered row otherwise.
            value = index.members_slice(req.community).copy()
        elif req.query == "neighbor_communities":
            comms, weights = index.neighbor_communities(
                entry.graph, req.vertex)
            value = {"communities": comms, "weights": weights}
        else:  # membership
            value = entry.membership
        self.counters["queries_served"] += 1
        if entry.state != FRESH:
            self.counters["queries_served_stale"] += 1
        if self.health is not None:
            self.health.record_event(
                "stale_serves", self.clock, entry.state != FRESH)
        ticket.response = {
            "key": req.key,
            "value": value,
            "version": entry.version,
            "state": entry.state,
        }
        self._complete(ticket)

    def _process_update(self, ticket: Ticket) -> None:
        req: UpdateRequest = ticket.request
        entry = self.store.peek(req.key)
        self._tick(self.config.query_cost_units)
        if entry is None:
            ticket.response = {"key": req.key, "error": "unknown partition"}
            self._complete(ticket, NOT_FOUND)
            return
        # Micro-batching: the whole queued backlog for this partition
        # rides the same refresh as the head request.
        accepted = [ticket] + self.queue.pop_matching_updates(req.key)
        for t in accepted:
            entry.pending.append(t.request.batch)
            self._pending_tickets.setdefault(req.key, []).append(t)
            self.counters["updates_accepted"] += 1
            if t is not ticket and t.trace is not None:
                # Coalesced members ride the head request's refresh;
                # they never pass through ``step`` so their queue wait
                # ends here, at micro-batch admission.
                t.trace.span("coalesce_accept", self.lane,
                             float(t.enqueued_at), float(self.clock),
                             head_seq=(ticket.trace.seq
                                       if ticket.trace is not None else None))
        entry.state = STALE
        if len(entry.pending) >= self.config.max_pending_updates:
            self._flush(req.key)

    def _process_stats(self, ticket: Ticket) -> None:
        self._tick(self.config.query_cost_units)
        ticket.response = self.stats()
        self._complete(ticket)

    # -- refresh ----------------------------------------------------------

    def _flush(self, key: str) -> None:
        """Fold the pending update batches of ``key`` into its partition."""
        entry = self.store.peek(key)
        if entry is None or not entry.pending:
            return
        batches = entry.pending
        entry.pending = []
        tickets = self._pending_tickets.pop(key, [])
        if self.config.coalesce_updates and len(batches) > 1:
            self.counters["updates_coalesced"] += len(batches) - 1
            self._m_coalesced.inc(len(batches) - 1)
            batches = [coalesce_update_batches(batches)]
        self.counters["update_flushes"] += 1
        self._m_flush_batches.observe(len(batches))

        graph, membership = entry.graph, entry.membership
        status = DONE
        last_was_full = False
        #: ``(start, end, info)`` per refresh solve — replayed onto every
        #: member ticket's trace below (each trace is its own document,
        #: so the shared flush appears in each).
        refresh_spans: List[tuple] = []
        with self.tracer.span("service.flush", key=key,
                              batches=len(batches)):
            for batch in batches:
                b0 = self.clock
                try:
                    graph, membership, incremental = self._refresh_once(
                        graph, membership, batch)
                    last_was_full = not incremental
                    refresh_spans.append(
                        (b0, self.clock, self._last_refresh_info))
                except _ComputeFailed:
                    # Keep serving the last good partition; the
                    # remaining batches of this flush are dropped.
                    entry.state = DEGRADED
                    status = FAILED
                    refresh_spans.append(
                        (b0, self.clock, {"mode": "degraded"}))
                    break
        if status == DONE:
            entry.graph = graph
            entry.membership = np.ascontiguousarray(
                membership, dtype=VERTEX_DTYPE)
            entry.layout, entry.index = self._layout_index(
                graph, entry.membership)
            entry.fingerprint = graph.fingerprint()
            entry.version += 1
            entry.state = FRESH
            if last_was_full:
                self._unreconciled.discard(key)
            else:
                self._unreconciled.add(key)
        self.store.put(entry)
        self._record_memory_health()
        for t in tickets:
            if t.trace is not None:
                for b0, b1, info in refresh_spans:
                    t.trace.span(
                        "refresh", self.lane, float(b0), float(b1),
                        coalesced_members=len(tickets),
                        flush_batches=len(batches), **info)
            t.response = {"key": key, "version": entry.version,
                          "state": entry.state}
            self._complete(t, status)

    def _refresh_once(self, graph, membership, batch):
        """One solve folding ``batch`` in; incremental or full fallback.

        The fallback decision uses the frontier estimate — touched
        vertices over current graph size — which for the default
        ``frontier`` approach equals the exact affected fraction,
        without paying for the batch application up front.
        """
        n = max(graph.num_vertices, 1)
        frontier_frac = batch.touched_vertices().shape[0] / n
        updated = apply_batch(graph, batch)
        if frontier_frac > self.config.full_recompute_threshold:
            result = self._solve(
                "refresh",
                lambda rt: leiden(updated, self.config.leiden, runtime=rt))
            self.counters["full_recomputes"] += 1
            self._m_refreshes.labels("full").inc()
            self._last_refresh_info = {
                "mode": "full",
                "frontier_frac": round(float(frontier_frac), 6),
                "affected": int(updated.num_vertices),
            }
            return updated, result.membership, False
        warm = self._pad_membership(membership, updated.num_vertices)
        mask = affected_vertices(updated, warm, batch,
                                 approach=self.config.approach)
        result = self._solve(
            "refresh",
            lambda rt: leiden(updated, self.config.leiden, runtime=rt,
                              initial_membership=warm, affected=mask))
        self.counters["incremental_refreshes"] += 1
        self._m_refreshes.labels("incremental").inc()
        if self.tracer.enabled:
            self.tracer.observe("service_affected_fraction",
                                float(mask.mean()) if mask.shape[0] else 0.0)
        self._last_refresh_info = {
            "mode": "incremental",
            "frontier_frac": round(float(frontier_frac), 6),
            "affected": int(mask.sum()),
        }
        return updated, result.membership, True

    @staticmethod
    def _pad_membership(membership, n_new: int) -> np.ndarray:
        """Extend a membership over newly appearing vertices (fresh
        singleton communities), mirroring ``dynamic_leiden``."""
        old = np.asarray(membership, dtype=VERTEX_DTYPE)
        if n_new > old.shape[0]:
            extra = np.arange(n_new - old.shape[0], dtype=VERTEX_DTYPE)
            return np.concatenate([old, old.max(initial=-1) + 1 + extra])
        return old[:n_new].copy()

    def _reconcile(self, key: str) -> None:
        """Replace an incrementally-refreshed partition with a
        from-scratch solve on the entry's current graph."""
        entry = self.store.peek(key)
        if entry is None:
            self._unreconciled.discard(key)
            return
        try:
            result = self._solve(
                "reconcile",
                lambda rt: leiden(entry.graph, self.config.leiden,
                                  runtime=rt))
        except _ComputeFailed:
            entry.state = DEGRADED
            return
        entry.membership = np.ascontiguousarray(
            result.membership, dtype=VERTEX_DTYPE)
        entry.layout, entry.index = self._layout_index(
            entry.graph, entry.membership)
        entry.version += 1
        entry.state = FRESH
        self.counters["reconciles"] += 1
        self._m_refreshes.labels("reconcile").inc()
        self._unreconciled.discard(key)

    # -- solving with fault tolerance --------------------------------------

    def _solve(self, op: str, fn):
        """Run one solve with retry-with-backoff around the fault hook.

        A fresh :class:`~repro.parallel.runtime.Runtime` per attempt
        keeps every solve deterministic and independent of history; the
        shared tracer still collects all spans.  Advances the logical
        clock by the solve's ledger work (and by the backoff on
        retries).  Raises :class:`_ComputeFailed` past the retry budget.
        """
        last_exc: Exception | None = None
        for attempt in range(self.config.max_retries + 1):
            try:
                if self.fault_hook is not None:
                    self.fault_hook(op, attempt)
                rt = Runtime(num_threads=1, seed=self.config.leiden.seed,
                             tracer=self.tracer, profiler=self.profiler,
                             metrics=self.metrics)
                result = fn(rt)
            except _ComputeFailed:
                raise
            except Exception as exc:  # injected faults, solver errors
                last_exc = exc
                if attempt < self.config.max_retries:
                    self.counters["solve_retries"] += 1
                    self._m_retries.inc()
                    self._tick(self.config.backoff_units << attempt)
                continue
            self._tick(round(result.ledger.total_work))
            return result
        self.counters["solve_failures"] += 1
        self._m_failures.inc()
        raise _ComputeFailed(
            f"{op} failed after {self.config.max_retries + 1} attempts"
        ) from last_exc

    # -- observability ----------------------------------------------------

    def stats(self) -> dict:
        """Deterministic stats document (no wall-clock fields)."""
        lat = {
            kind: {
                "count": len(values),
                "p50": percentile(values, 50.0),
                "p99": percentile(values, 99.0),
                "max": max(values) if values else 0,
            }
            for kind, values in sorted(self._latencies.items())
        }
        queries = self.counters["queries_served"]
        not_found = self.counters["queries_not_found"]
        served_frac = (queries / (queries + not_found)
                       if queries + not_found else 0.0)
        doc = {
            "schema": STATS_SCHEMA,
            "clock_units": int(self.clock),
            "requests": dict(sorted(self._requests_by_kind.items())),
            "counters": dict(sorted(self.counters.items())),
            "queue": self.queue.stats(),
            "store": self.store.stats(),
            "derived": {
                "cache_hit_rate": round(self.store.hit_rate(), 6),
                "query_served_fraction": round(served_frac, 6),
                "stale_serve_fraction": round(
                    self.counters["queries_served_stale"] / queries, 6)
                    if queries else 0.0,
            },
            "latency_units": lat,
            "partitions": {
                key: self.store.peek(key).describe()
                for key in sorted(self.store.keys())
            },
        }
        # Only when an evaluator is attached: the default stats document
        # stays bitwise identical to the committed service baselines.
        if self.health is not None:
            doc["health"] = self.health.evaluate(self.clock)
        return doc
