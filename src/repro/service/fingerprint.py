"""Content hashes that key the partition store.

The store must answer "do I already have a partition for *this* graph
under *this* configuration?" without trusting object identity — the same
registry graph loaded twice, or the same file parsed in two processes,
must map to the same cache slot.  Three hashes compose:

- :func:`graph_fingerprint` — :meth:`repro.graph.csr.CSRGraph.fingerprint`,
  a blake2b digest over the dense CSR arrays;
- :func:`config_fingerprint` — digest of the canonical JSON encoding of a
  :class:`~repro.core.config.LeidenConfig` (field order independent);
- :func:`partition_key` — the combination of both, the store key.

:func:`membership_fingerprint` additionally hashes a membership array so
responses and persisted partitions can carry a verifiable identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.core.config import LeidenConfig
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "config_fingerprint",
    "graph_fingerprint",
    "membership_fingerprint",
    "partition_key",
]


def graph_fingerprint(graph: CSRGraph) -> str:
    """Content hash of ``graph`` (delegates to the cached CSR digest)."""
    return graph.fingerprint()


def config_fingerprint(config: LeidenConfig | None) -> str:
    """Digest of a config's canonical JSON encoding (``None`` = default).

    Fields still at their default value are omitted from the encoding,
    so adding a new (defaulted) knob to :class:`LeidenConfig` does not
    rotate every store key and invalidate persisted partitions.
    """
    cfg = config or LeidenConfig()
    base = dataclasses.asdict(LeidenConfig())
    doc = json.dumps(
        {k: v for k, v in dataclasses.asdict(cfg).items() if v != base[k]},
        sort_keys=True)
    return hashlib.blake2b(doc.encode(), digest_size=8).hexdigest()


def partition_key(graph: CSRGraph, config: LeidenConfig | None = None) -> str:
    """Store key for (graph content, detection config)."""
    return f"{graph_fingerprint(graph)}:{config_fingerprint(config)}"


def membership_fingerprint(membership) -> str:
    """Content hash of a membership vector."""
    arr = np.ascontiguousarray(membership, dtype=VERTEX_DTYPE)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.shape[0]).encode())
    h.update(arr.tobytes())
    return h.hexdigest()
