"""Partition-serving subsystem: keep partitions fresh, answer queries.

The batch layers (:mod:`repro.core`, :mod:`repro.dynamic`) end at a
computed :class:`~repro.core.result.LeidenResult`; this package is the
layer above that serves it — the shape the ROADMAP's "heavy traffic"
north star and the dynamic-frontier line of work both point at: fast
recomputation and cheap incremental updates are only valuable when
something keeps partitions fresh *while* answering membership queries.

- :mod:`repro.service.fingerprint` — content hashes keying partitions
  by graph identity;
- :mod:`repro.service.store` — versioned byte-budgeted LRU with
  stale-while-revalidate;
- :mod:`repro.service.index` — O(1)/O(deg) query structures per
  partition version;
- :mod:`repro.service.requests` — typed DETECT/QUERY/UPDATE/STATS
  requests, the bounded admission queue, update coalescing;
- :mod:`repro.service.server` — the deterministic event loop;
- :mod:`repro.service.workload` — seeded closed-loop client generator
  for the bench harness.

See ``docs/SERVICE.md`` for the architecture and request lifecycle, and
``examples/partition_server.py`` for a runnable demo.
"""

from repro.service.fingerprint import (
    config_fingerprint,
    graph_fingerprint,
    membership_fingerprint,
    partition_key,
)
from repro.service.index import CommunityIndex
from repro.service.requests import (
    AdmissionQueue,
    DetectRequest,
    QueryRequest,
    StatsRequest,
    Ticket,
    UpdateRequest,
    coalesce_update_batches,
)
from repro.service.server import PartitionServer, ServiceConfig
from repro.service.store import PartitionEntry, PartitionStore
from repro.service.workload import (
    PROFILES,
    WorkloadProfile,
    WorkloadResult,
    run_workload,
)

__all__ = [
    "AdmissionQueue",
    "CommunityIndex",
    "DetectRequest",
    "PartitionEntry",
    "PartitionServer",
    "PartitionStore",
    "PROFILES",
    "QueryRequest",
    "ServiceConfig",
    "StatsRequest",
    "Ticket",
    "UpdateRequest",
    "WorkloadProfile",
    "WorkloadResult",
    "coalesce_update_batches",
    "config_fingerprint",
    "graph_fingerprint",
    "membership_fingerprint",
    "partition_key",
    "run_workload",
]
