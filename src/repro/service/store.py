"""Versioned partition store: byte-budgeted LRU with staleness states.

One :class:`PartitionEntry` holds everything needed to serve a graph:
the graph itself, the current membership, the prebuilt
:class:`~repro.service.index.CommunityIndex`, a monotonically increasing
version and a freshness state.  The store implements
*stale-while-revalidate*: a lookup returns stale entries too (callers
serve them and count a ``stale_hit``) so the query path never blocks on
a refresh; the server swaps in the fresh version when its refresh
commits.

Eviction is least-recently-used over a byte budget.  Entry size counts
the graph arrays, the membership and the index; the most recently
touched entry is never evicted, so a store whose budget is smaller than
a single partition still serves it (and reports being over budget).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.dynamic.batch import EdgeBatch
from repro.graph.csr import CSRGraph
from repro.observability.metrics import NULL_REGISTRY
from repro.service.index import CommunityIndex

__all__ = ["FRESH", "STALE", "DEGRADED", "PartitionEntry", "PartitionStore"]

#: Entry states.  ``FRESH`` — partition matches the entry's graph;
#: ``STALE`` — updates are pending or a refresh is in flight, the stored
#: partition is the last good one; ``DEGRADED`` — the last refresh
#: failed permanently, the stored partition is the last good one.
FRESH = "fresh"
STALE = "stale"
DEGRADED = "degraded"


@dataclass
class PartitionEntry:
    """One served graph: partition, index and refresh bookkeeping."""

    key: str
    fingerprint: str
    graph: CSRGraph
    membership: np.ndarray
    index: CommunityIndex
    version: int = 1
    state: str = FRESH
    #: Update batches accepted but not yet folded into the partition.
    pending: List[EdgeBatch] = field(default_factory=list)
    #: Community layout (:class:`repro.graph.relabel.Relabeling`)
    #: derived from this partition when the server runs with
    #: ``ServiceConfig.relabel != "none"`` — the stored partition
    #: doubling as a locality preprocessor.  ``None`` otherwise.
    layout: Optional[object] = None

    @property
    def nbytes(self) -> int:
        g = self.graph
        return int(g.offsets.nbytes + g.targets.nbytes + g.weights.nbytes
                   + g.degrees.nbytes + self.membership.nbytes
                   + self.index.nbytes)

    @property
    def num_communities(self) -> int:
        return self.index.num_communities

    def describe(self) -> dict:
        """Deterministic JSON-ready snapshot (no wall-clock fields).

        The ``layout`` block appears only when a relabel layout is
        attached, keeping the default document (and the committed
        service baselines) byte-identical to a layout-free server's.
        """
        doc = {
            "fingerprint": self.fingerprint,
            "version": self.version,
            "state": self.state,
            "num_vertices": int(self.graph.num_vertices),
            "num_edges": int(self.graph.num_edges),
            "num_communities": int(self.num_communities),
            "pending_updates": len(self.pending),
        }
        if self.layout is not None:
            doc["layout"] = self.layout.describe()
        return doc


class PartitionStore:
    """Byte-budgeted LRU of :class:`PartitionEntry` objects.

    When a :class:`~repro.observability.memtrack.MemoryLedger` is
    attached via ``memory``, every resident entry is a live ``store``
    allocation (freed on eviction/discard/replace), so the memory
    report shows LRU bytes next to CSR/workspace/shm bytes — and
    :attr:`peak_bytes` is the watermark the ``mem_peak_to_budget`` SLO
    divides by the budget.
    """

    def __init__(self, budget_bytes: int = 256 * 2**20, *,
                 metrics=None, memory=None) -> None:
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[str, PartitionEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0
        #: High-water mark of resident bytes across the store's life.
        self.peak_bytes = 0
        self.memory = memory
        self._mem_handles: Dict[str, int] = {}
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        m_lookups = self.metrics.counter(
            "service_store_lookups_total",
            "partition-store lookups, by outcome", ("outcome",))
        self._m_hit = m_lookups.labels("hit")
        self._m_stale = m_lookups.labels("stale_hit")
        self._m_miss = m_lookups.labels("miss")
        self._m_evictions = self.metrics.counter(
            "service_store_evictions_total", "LRU evictions over budget")
        self._m_bytes = self.metrics.gauge(
            "mem_store_bytes", "resident bytes across all entries")

    # -- lookup -----------------------------------------------------------

    def get(self, key: str, *, touch: bool = True) -> Optional[PartitionEntry]:
        """The entry for ``key`` or ``None``; counts hit/miss/stale-hit.

        Stale and degraded entries are returned (stale-while-revalidate);
        the caller decides whether serving them is acceptable.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            self._m_miss.inc()
            return None
        if touch:
            self._entries.move_to_end(key)
        self.hits += 1
        self._m_hit.inc()
        if entry.state != FRESH:
            self.stale_hits += 1
            self._m_stale.inc()
        return entry

    def peek(self, key: str) -> Optional[PartitionEntry]:
        """Lookup without touching LRU order or counters."""
        return self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> List[str]:
        return list(self._entries)

    # -- mutation ---------------------------------------------------------

    def put(self, entry: PartitionEntry) -> None:
        """Insert or replace ``entry`` and evict LRU past the budget."""
        self._mem_free(entry.key)
        self._entries[entry.key] = entry
        self._entries.move_to_end(entry.key)
        memory = self.memory
        if memory is not None and memory.enabled:
            self._mem_handles[entry.key] = memory.alloc(
                "store", entry.key, entry.nbytes, phase="service")
        self._evict()
        total = self.total_bytes
        if total > self.peak_bytes:
            self.peak_bytes = total
        if self.metrics.enabled:
            self._m_bytes.set(total)

    def discard(self, key: str) -> None:
        self._entries.pop(key, None)
        self._mem_free(key)

    def _evict(self) -> None:
        # Never evict the most recently touched entry: a single
        # over-budget partition must still be servable.
        while len(self._entries) > 1 and self.total_bytes > self.budget_bytes:
            key, _ = self._entries.popitem(last=False)
            self._mem_free(key)
            self.evictions += 1
            self._m_evictions.inc()

    def _mem_free(self, key: str) -> None:
        handle = self._mem_handles.pop(key, None)
        if handle is not None:
            self.memory.free(handle)

    # -- accounting -------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, object]:
        return {
            "entries": len(self._entries),
            "bytes": int(self.total_bytes),
            "budget_bytes": int(self.budget_bytes),
            "peak_bytes": int(self.peak_bytes),
            "hits": self.hits,
            "misses": self.misses,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
        }
