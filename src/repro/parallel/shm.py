"""Shared-memory numpy arenas for the process-parallel executor.

The process engine's whole premise is *zero-copy* state sharing: the CSR
arrays, membership, community weights and kernel scratch live in
:mod:`multiprocessing.shared_memory` segments, and every worker process
maps numpy views onto the same physical pages.  Task messages then carry
only chunk bounds and scalar parameters — never array payloads.

Two classes implement the owner/attacher split:

- :class:`ShmArena` (parent side) allocates named segments, exposes them
  as numpy arrays, and owns the unlink;
- :class:`AttachedArena` (worker side) maps an arena from its pickled
  :meth:`~ShmArena.spec` and only ever closes its local mapping.

Lifecycle discipline is the hard part on CPython < 3.13: attaching to an
existing segment re-registers it with the global
:mod:`multiprocessing.resource_tracker`, which then (a) warns about
"leaked" segments at interpreter shutdown and (b) may unlink segments the
parent still owns.  :func:`attach_array` therefore unregisters the
attached segment from the worker's tracker immediately — the parent
remains the single tracked owner.  Both close paths are idempotent
(double ``close``/``unlink`` is a no-op), and ``__del__`` backstops
leaked arenas so a crashed caller cannot strand segments past garbage
collection.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = [
    "ArenaSpec",
    "AttachedArena",
    "ShmArena",
    "attach_array",
]

#: Pickled arena description: ``key -> (segment_name, shape, dtype_str)``.
ArenaSpec = Dict[str, Tuple[str, Tuple[int, ...], str]]


def attach_array(
    name: str, shape: Tuple[int, ...], dtype: str
) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map an existing segment as a numpy array (worker side).

    CPython < 3.13 registers a segment with the resource tracker on
    *attach* as well as on create.  That double tracking is what
    produces the spurious ``leaked shared_memory objects`` warnings and
    — worse — a spawn-started worker's tracker unlinking segments the
    parent still owns at worker exit.  The creating process is the
    single owner here, so registration is suppressed for the duration
    of the attach (the equivalent of 3.13's ``track=False``).
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        seg = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
    return arr, seg


class ShmArena:
    """A named family of shared-memory numpy arrays (owner side).

    Use as a context manager — ``__exit__`` closes *and unlinks* every
    segment, so worker crashes or a ``KeyboardInterrupt`` in the parent
    cannot leak kernel-state segments::

        with ShmArena() as arena:
            C = arena.from_array("membership", membership)
            ...  # dispatch tasks referencing arena.spec()

    Segment names carry a short random tag so concurrent arenas (test
    processes, parallel benches) never collide.

    Parameters
    ----------
    tag:
        Segment-name tag; random when omitted.
    memory:
        A :class:`~repro.observability.memtrack.MemoryLedger` the arena
        records its segments to (``None`` disables recording).  Segment
        bytes are logical-ledger events; pass ``per_worker`` on
        :meth:`create` for arrays whose leading axis is the worker
        count, so the logical report stays worker-count-invariant.
    phase:
        Phase label the arena's allocation events carry.
    """

    def __init__(self, tag: str | None = None, *, memory=None,
                 phase: str = "other") -> None:
        self._tag = tag if tag is not None else secrets.token_hex(4)
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._arrays: Dict[str, np.ndarray] = {}
        self._spec: ArenaSpec = {}
        self._closed = False
        self._unlinked = False
        self._memory = memory
        self._phase = phase
        self._mem_handles: Dict[str, int] = {}

    # -- allocation --------------------------------------------------------

    def create(self, key: str, shape, dtype, *,
               per_worker: int = 1) -> np.ndarray:
        """Allocate a zero-initialized array under ``key``.

        ``per_worker`` declares that the segment is a per-worker
        replication (e.g. the ``(workers, n)`` scratch grid): the memory
        ledger then records one worker's share as the logical size with
        ``replicas=per_worker``, keeping logical totals invariant under
        the worker count while the physical section scales.
        """
        if self._closed:
            raise ValueError("arena is closed")
        if key in self._segments:
            raise ValueError(f"arena already holds {key!r}")
        shape = tuple(int(s) for s in np.atleast_1d(np.asarray(shape, dtype=np.int64)))
        dt = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dt.itemsize, 1)
        seg = shared_memory.SharedMemory(
            create=True, size=nbytes, name=f"repro_{self._tag}_{key}"
        )
        arr = np.ndarray(shape, dtype=dt, buffer=seg.buf)
        arr[...] = np.zeros((), dtype=dt)
        self._segments[key] = seg
        self._arrays[key] = arr
        self._spec[key] = (seg.name, shape, dt.str)
        memory = self._memory
        if memory is not None and memory.enabled:
            replicas = max(int(per_worker), 1)
            self._mem_handles[key] = memory.alloc(
                "shm", key, nbytes // replicas, phase=self._phase,
                dtype=dt.name, replicas=replicas)
        return arr

    def from_array(self, key: str, source: np.ndarray) -> np.ndarray:
        """Allocate ``key`` shaped like ``source`` and copy it in."""
        src = np.ascontiguousarray(source)
        arr = self.create(key, src.shape, src.dtype)
        arr[...] = src
        return arr

    # -- access ------------------------------------------------------------

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def keys(self) -> Iterator[str]:
        return iter(self._arrays)

    def spec(self) -> ArenaSpec:
        """The pickle-friendly description workers attach from."""
        return dict(self._spec)

    @property
    def nbytes(self) -> int:
        """Total bytes across all segments (capacity accounting)."""
        return sum(seg.size for seg in self._segments.values())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drop the parent's mappings; idempotent."""
        if self._closed:
            return
        self._closed = True
        # Views must be released before the mmap can close.
        self._arrays.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - exported view alive
                pass

    def unlink(self) -> None:
        """Destroy the segments; idempotent, implies :meth:`close`."""
        self.close()
        if self._unlinked:
            return
        self._unlinked = True
        for seg in self._segments.values():
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        memory = self._memory
        if memory is not None and memory.enabled:
            for handle in self._mem_handles.values():
                memory.free(handle)
            self._mem_handles.clear()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.unlink()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "unlinked" if self._unlinked else (
            "closed" if self._closed else "open")
        return (f"ShmArena(tag={self._tag!r}, arrays={len(self._spec)}, "
                f"{state})")


class AttachedArena:
    """Worker-side view of a parent's :class:`ShmArena`.

    Attaches every segment named by ``spec`` and exposes the arrays by
    key.  :meth:`close` releases the local mappings only — unlinking is
    the owner's job.  Idempotent like the owner side.
    """

    def __init__(self, spec: ArenaSpec) -> None:
        self._arrays: Dict[str, np.ndarray] = {}
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False
        try:
            for key, (name, shape, dtype) in spec.items():
                arr, seg = attach_array(name, tuple(shape), dtype)
                self._arrays[key] = arr
                self._segments[key] = seg
        except Exception:
            self.close()
            raise

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        for seg in self._segments.values():
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view still exported
                pass

    def __enter__(self) -> "AttachedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
