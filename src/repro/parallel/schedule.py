"""OpenMP-style loop schedules and their makespan under simulation.

GVE-Leiden uses OpenMP's *dynamic* schedule (chunk 2048) for the vertex
loops.  The simulated runtime needs two things from a schedule: how a loop
is split into chunks, and which thread executes each chunk — from which
the per-thread finishing times (and hence the region makespan) follow.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

DEFAULT_CHUNK = 2048


@dataclass(frozen=True)
class Schedule:
    """A loop schedule: ``kind`` is ``"static"``, ``"dynamic"`` or ``"guided"``."""

    kind: str = "dynamic"
    chunk: int = DEFAULT_CHUNK

    def __post_init__(self) -> None:
        if self.kind not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule kind {self.kind!r}")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")


def chunk_spans(n_items: int, schedule: Schedule, num_threads: int) -> List[Tuple[int, int]]:
    """Split ``[0, n_items)`` into ``(start, stop)`` chunks per the schedule.

    - ``static``: ``num_threads`` contiguous near-equal blocks;
    - ``dynamic``: fixed-size chunks of ``schedule.chunk`` items;
    - ``guided``: exponentially shrinking chunks with floor ``schedule.chunk``.
    """
    if n_items <= 0:
        return []
    if schedule.kind == "static":
        bounds = np.linspace(0, n_items, num_threads + 1).astype(np.int64)
        return [
            (int(bounds[t]), int(bounds[t + 1]))
            for t in range(num_threads)
            if bounds[t + 1] > bounds[t]
        ]
    if schedule.kind == "dynamic":
        starts = list(range(0, n_items, schedule.chunk))
        return [(s, min(s + schedule.chunk, n_items)) for s in starts]
    # guided
    spans: List[Tuple[int, int]] = []
    remaining, start = n_items, 0
    while remaining > 0:
        size = max(schedule.chunk, remaining // (2 * num_threads))
        size = min(size, remaining)
        spans.append((start, start + size))
        start += size
        remaining -= size
    return spans


def seeded_chunk_order(n_chunks: int, seed: int) -> np.ndarray:
    """A deterministic seeded permutation of ``[0, n_chunks)``.

    The process executor hands chunks to its task queue in this order: a
    xorshift32 Fisher-Yates shuffle, so the dispatch sequence (a) is
    byte-reproducible for a given seed — the scheduling analogue of the
    simulated runtime's determinism — and (b) decorrelates chunk cost
    from queue position, which is what OpenMP's dynamic schedule achieves
    by handing out chunks to whichever thread frees first.
    """
    from repro.parallel.rng import Xorshift32

    order = np.arange(n_chunks, dtype=np.int64)
    if n_chunks <= 1:
        return order
    rng = Xorshift32((seed & 0xFFFFFFFF) or 1)
    for i in range(n_chunks - 1, 0, -1):
        j = rng.next_below(i + 1)
        order[i], order[j] = order[j], order[i]
    return order


def assign_chunks(
    chunk_costs: np.ndarray,
    num_threads: int,
    schedule: Schedule,
) -> np.ndarray:
    """Which thread runs each chunk, per the schedule semantics.

    ``static`` assigns chunks round-robin; ``dynamic``/``guided`` hand each
    chunk to the earliest-free thread (greedy list scheduling, which is
    what an OpenMP dynamic loop does up to tie-breaking).
    Returns an int array of thread ids parallel to ``chunk_costs``.
    """
    n = chunk_costs.shape[0]
    owner = np.empty(n, dtype=np.int32)
    if n == 0:
        return owner
    if schedule.kind == "static":
        owner[:] = np.arange(n, dtype=np.int32) % num_threads
        return owner
    heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    for c in range(n):
        busy_until, t = heapq.heappop(heap)
        owner[c] = t
        heapq.heappush(heap, (busy_until + float(chunk_costs[c]), t))
    return owner


def makespan(
    chunk_costs: np.ndarray,
    num_threads: int,
    schedule: Schedule,
    *,
    per_chunk_overhead: float = 0.0,
) -> float:
    """Finish time of the slowest thread for one parallel region.

    ``per_chunk_overhead`` models the scheduler handshake each chunk costs
    under dynamic scheduling.
    """
    costs = np.asarray(chunk_costs, dtype=np.float64)
    if costs.shape[0] == 0:
        return 0.0
    if per_chunk_overhead:
        costs = costs + per_chunk_overhead
    if num_threads <= 1:
        return float(costs.sum())
    if schedule.kind == "static":
        owner = np.arange(costs.shape[0], dtype=np.int64) % num_threads
        per_thread = np.bincount(owner, weights=costs, minlength=num_threads)
        return float(per_thread.max())
    # dynamic/guided: greedy earliest-free assignment
    heap = [0.0] * num_threads
    heapq.heapify(heap)
    for c in costs:
        t = heapq.heappop(heap)
        heapq.heappush(heap, t + float(c))
    return max(heap)
