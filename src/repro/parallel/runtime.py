"""Runtime facade: thread count, schedule, executors and accounting.

A :class:`Runtime` is passed through every phase of the algorithms.  It
owns the work ledger (for modelled time), the per-thread RNGs and
hashtables, and an executor that can run chunked loops either serially
(default — deterministic, used by the simulated machine) or on real
Python threads (`executor="threads"`, useful to exercise the thread-safe
code paths even though the GIL serializes them).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.observability.memtrack import NULL_LEDGER
from repro.observability.metrics import NULL_REGISTRY
from repro.observability.profiler import NULL_PROFILER
from repro.observability.tracer import NULL_TRACER
from repro.parallel.costmodel import PAPER_MACHINE, MachineModel
from repro.parallel.hashtable import CollisionFreeHashtable
from repro.parallel.rng import Xorshift32
from repro.parallel.schedule import DEFAULT_CHUNK, Schedule, chunk_spans
from repro.parallel.simthread import SimulatedTime, WorkLedger

_EXECUTORS = ("serial", "threads", "process")


class Runtime:
    """Execution context for one algorithm run.

    Parameters
    ----------
    num_threads:
        Thread count the run models (and uses, with ``executor="threads"``).
    schedule:
        Loop schedule; the paper uses OpenMP ``dynamic`` (chunked).
    seed:
        Seed for the master xorshift32; per-thread generators are spawned
        from it.
    executor:
        ``"serial"`` (deterministic, default), ``"threads"`` or
        ``"process"`` (worker processes over shared memory; phases use
        :meth:`procpool` — ``map_chunks`` still runs serially because
        arbitrary closures cannot cross process boundaries).
    machine:
        Machine model used by :meth:`simulate`; defaults to the paper's
        dual-Xeon testbed.
    tracer:
        Observability tracer the phases report spans and counters to;
        defaults to the disabled :data:`~repro.observability.tracer.NULL_TRACER`
        (zero cost).
    profiler:
        Thread-timeline profiler capturing every recorded region as an
        event-log entry; defaults to the disabled
        :data:`~repro.observability.profiler.NULL_PROFILER` (zero cost).
    metrics:
        Metric registry the runtime and phases report typed instruments
        to; defaults to the disabled
        :data:`~repro.observability.metrics.NULL_REGISTRY` (zero cost).
    memory:
        :class:`~repro.observability.memtrack.MemoryLedger` the buffer
        owners (workspaces, shm arenas, CSR builds) record logical
        allocation events to; defaults to the disabled
        :data:`~repro.observability.memtrack.NULL_LEDGER` (zero cost).
    """

    def __init__(
        self,
        num_threads: int = 1,
        *,
        schedule: Schedule | None = None,
        seed: int = 12345,
        executor: str = "serial",
        machine: MachineModel | None = None,
        tracer=None,
        profiler=None,
        metrics=None,
        memory=None,
    ) -> None:
        if num_threads < 1:
            raise ConfigError("num_threads must be >= 1")
        if executor not in _EXECUTORS:
            raise ConfigError(f"executor must be one of {_EXECUTORS}")
        self.num_threads = int(num_threads)
        self.schedule = schedule or Schedule("dynamic", DEFAULT_CHUNK)
        self.executor = executor
        self.machine = machine or PAPER_MACHINE
        self.ledger = WorkLedger()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.memory = memory if memory is not None else NULL_LEDGER
        m = self.metrics
        self._m_parallel_regions = m.counter(
            "runtime_parallel_regions_total",
            "parallel regions recorded in the work ledger", ("phase",))
        self._m_chunks = m.counter(
            "runtime_chunks_total",
            "loop chunks dispatched, by phase and scheduling policy",
            ("phase", "policy"))
        self._m_atomics = m.counter(
            "runtime_atomic_ops_total",
            "modelled atomic operations", ("phase",))
        self._m_barriers = m.counter(
            "runtime_barriers_total",
            "implicit end-of-region barriers", ("phase",))
        self._m_work = m.counter(
            "runtime_work_units_total",
            "parallel work units recorded", ("phase",))
        self._m_serial_work = m.counter(
            "runtime_serial_work_units_total",
            "sequential work units recorded", ("phase",))
        self.seed = int(seed)
        self.master_rng = Xorshift32(seed)
        self.thread_rngs: List[Xorshift32] = self.master_rng.spawn(self.num_threads)
        self._pool: ThreadPoolExecutor | None = None
        self._procpool = None

    # -- per-thread resources ------------------------------------------------

    def hashtables(self, capacity: int) -> List[CollisionFreeHashtable]:
        """One collision-free hashtable per thread (Algorithms 2-4)."""
        return [CollisionFreeHashtable(capacity) for _ in range(self.num_threads)]

    def workspace(self, num_vertices: int, *, engine: str = "count",
                  phase: str = "other"):
        """A :class:`~repro.core.workspace.KernelWorkspace` whose scratch
        allocation is accounted in this runtime's ledger — the batch
        engine's analogue of :meth:`hashtables` (one up-front allocation
        per pass instead of per-thread tables)."""
        from repro.core.workspace import KernelWorkspace

        return KernelWorkspace(
            num_vertices, engine=engine, runtime=self, phase=phase
        )

    # -- execution -------------------------------------------------------------

    def map_chunks(
        self,
        n_items: int,
        body: Callable[[int, int, int], None],
        *,
        schedule: Schedule | None = None,
    ) -> None:
        """Run ``body(start, stop, thread_id)`` over chunks of ``[0, n_items)``.

        With the serial executor, chunks run in order with a synthetic
        round-robin thread id; with the thread executor they are submitted
        to a real pool of ``num_threads`` workers.
        """
        sched = schedule or self.schedule
        spans = chunk_spans(n_items, sched, self.num_threads)
        if not spans:
            return
        # The process executor parallelizes through named pool kernels
        # (closures don't cross process boundaries) — chunked closure
        # loops run serially there, exactly like the simulated machine.
        if self.executor in ("serial", "process") or self.num_threads == 1:
            for c, (lo, hi) in enumerate(spans):
                body(lo, hi, c % self.num_threads)
            return
        pool = self._ensure_pool()
        futures = [
            pool.submit(body, lo, hi, c % self.num_threads)
            for c, (lo, hi) in enumerate(spans)
        ]
        for f in futures:
            f.result()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    def procpool(self, num_workers: int | None = None):
        """The runtime's persistent worker-process pool (lazily created).

        ``num_threads`` doubles as the worker count — the modelled width
        and the real width stay in lockstep.  The pool persists across
        passes (workers start once; arenas are bound per phase) and is
        reaped by :meth:`close`.
        """
        from repro.parallel.procpool import ProcessPool

        if self._procpool is None:
            self._procpool = ProcessPool(
                num_workers if num_workers is not None else self.num_threads,
                seed=self.seed,
                memory=self.memory,
            )
            if self.metrics.enabled:
                self.metrics.gauge(
                    "proc_pool_workers",
                    "worker processes in the runtime's pool",
                ).set(self._procpool.num_workers)
        return self._procpool

    def close(self) -> None:
        """Shut down the thread pool and process pool, if created."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procpool is not None:
            self._procpool.close()
            self._procpool = None

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting --------------------------------------------------------------

    def record_parallel(
        self,
        item_costs,
        *,
        phase: str,
        atomics: float = 0.0,
        schedule: Schedule | None = None,
    ) -> None:
        """Record one parallel region's per-item work in the ledger.

        With tracing enabled, the region is also reported to the tracer:
        atomic-op and barrier counts, total work units, and the modelled
        per-thread clock skew (slowest-thread minus mean work at the
        machine's full thread count — the load-imbalance signal).
        """
        n_before = len(self.ledger.regions)
        self.ledger.parallel(
            item_costs,
            phase=phase,
            schedule=schedule or self.schedule,
            atomics=atomics,
        )
        tracer = self.tracer
        if len(self.ledger.regions) > n_before:
            region = self.ledger.regions[-1]
            if self.metrics.enabled:
                sched = schedule or self.schedule
                self._m_parallel_regions.labels(phase).inc()
                self._m_barriers.labels(phase).inc()
                self._m_chunks.labels(phase, sched.kind).inc(
                    region.chunk_costs.shape[0])
                self._m_atomics.labels(phase).inc(region.atomics)
                self._m_work.labels(phase).inc(
                    float(region.chunk_costs.sum()))
            if tracer.enabled:
                tracer.count("parallel_regions")
                # Every modelled parallel-for ends in an implicit barrier.
                tracer.count("barriers")
                tracer.count("atomic_ops", region.atomics)
                tracer.count("work_units", float(region.chunk_costs.sum()))
                t = self.machine.max_threads
                span = WorkLedger._region_span(region, self.machine, t, 1.0)
                mean = (
                    float(region.chunk_costs.sum())
                    + self.machine.chunk_overhead_units * region.chunk_costs.shape[0]
                ) / t
                tracer.count("clock_skew_units", max(0.0, span - mean))
            if self.profiler.enabled:
                seconds = self.profiler.record_region(
                    region, label=tracer.span_path() or phase)
                if tracer.enabled:
                    tracer.count("modeled_region_seconds", seconds)

    def record_serial(self, cost: float, *, phase: str) -> None:
        """Record sequential work in the ledger."""
        n_before = len(self.ledger.regions)
        self.ledger.serial(cost, phase=phase)
        tracer = self.tracer
        if self.metrics.enabled and cost > 0:
            self._m_serial_work.labels(phase).inc(float(cost))
        if tracer.enabled and cost > 0:
            tracer.count("serial_regions")
            tracer.count("serial_work_units", float(cost))
        if self.profiler.enabled and len(self.ledger.regions) > n_before:
            seconds = self.profiler.record_region(
                self.ledger.regions[-1],
                label=tracer.span_path() or phase)
            if tracer.enabled:
                tracer.count("modeled_region_seconds", seconds)

    def simulate(
        self,
        *,
        machine: MachineModel | None = None,
        num_threads: int | None = None,
    ) -> SimulatedTime:
        """Modelled runtime of everything recorded so far."""
        return self.ledger.simulate(
            machine or self.machine,
            num_threads if num_threads is not None else self.num_threads,
        )

    # -- misc -------------------------------------------------------------------

    def batch_order(self, n_items: int) -> Sequence[np.ndarray]:
        """Vertex-id batches matching the schedule's chunking.

        The batch-parallel kernels process one batch as "the set of
        vertices concurrently in flight", which is how the asynchronous
        OpenMP loop behaves with a dynamic schedule.
        """
        spans = chunk_spans(n_items, self.schedule, self.num_threads)
        return [np.arange(lo, hi, dtype=np.int64) for lo, hi in spans]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Runtime(threads={self.num_threads}, schedule={self.schedule.kind}"
            f"/{self.schedule.chunk}, executor={self.executor})"
        )
