"""Work ledger: records every parallel region for later time modelling.

Real thread scaling is unobservable in pure Python (GIL + this container
has one core), so the runtime instead *records* what the OpenMP
implementation would execute: for every parallel region, the per-chunk
work (in abstract work units — edge scans, hashtable updates, writes);
for every sequential step, its work.  A single execution of the algorithm
then yields modelled runtimes for *any* thread count via
:meth:`WorkLedger.simulate`, which is how the strong-scaling experiment
(Figure 9) is reproduced.

Work units are deliberately machine-independent; the
:class:`repro.parallel.costmodel.MachineModel` converts them to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

import numpy as np

from repro.parallel.schedule import DEFAULT_CHUNK, Schedule, makespan

#: Cap on stored chunks per region; beyond this, chunks are re-aggregated.
_MAX_CHUNKS = 16384


@dataclass
class Region:
    """One recorded execution region.

    ``kind`` is ``"parallel"`` or ``"serial"``.  For parallel regions
    ``chunk_costs`` holds per-chunk work; for serial regions it is a
    single-element array.
    """

    kind: str
    phase: str
    chunk_costs: np.ndarray
    schedule: Schedule = field(default_factory=Schedule)
    atomics: float = 0.0

    @property
    def total_work(self) -> float:
        return float(self.chunk_costs.sum()) + self.atomics


class WorkLedger:
    """Accumulates :class:`Region` records during one algorithm run."""

    def __init__(self) -> None:
        self.regions: List[Region] = []

    # -- recording ---------------------------------------------------------

    def parallel(
        self,
        item_costs,
        *,
        phase: str,
        schedule: Schedule | None = None,
        atomics: float = 0.0,
    ) -> None:
        """Record a parallel-for whose items cost ``item_costs`` work units.

        Items are pre-aggregated into schedule-sized chunks, so ledger
        memory stays bounded even for million-vertex loops.
        """
        if schedule is None:
            schedule = Schedule("dynamic", DEFAULT_CHUNK)
        costs = np.asarray(item_costs, dtype=np.float64).ravel()
        if costs.shape[0] == 0:
            return
        chunk = schedule.chunk
        n_chunks = (costs.shape[0] + chunk - 1) // chunk
        if n_chunks > _MAX_CHUNKS:
            chunk = (costs.shape[0] + _MAX_CHUNKS - 1) // _MAX_CHUNKS
            n_chunks = (costs.shape[0] + chunk - 1) // chunk
        pad = n_chunks * chunk - costs.shape[0]
        if pad:
            costs = np.concatenate([costs, np.zeros(pad)])
        chunk_costs = costs.reshape(n_chunks, chunk).sum(axis=1)
        self.regions.append(
            Region("parallel", phase, chunk_costs, schedule, float(atomics))
        )

    def serial(self, cost: float, *, phase: str) -> None:
        """Record sequential work of ``cost`` units."""
        if cost <= 0:
            return
        self.regions.append(
            Region("serial", phase, np.asarray([float(cost)]))
        )

    def merge(self, other: "WorkLedger") -> None:
        """Append all regions of ``other`` (sub-phase composition)."""
        self.regions.extend(other.regions)

    def clear(self) -> None:
        self.regions.clear()

    # -- inspection ----------------------------------------------------------

    @property
    def total_work(self) -> float:
        """Sum of all recorded work units (serial + parallel + atomics)."""
        return sum(r.total_work for r in self.regions)

    def work_by_phase(self) -> Dict[str, float]:
        """Total work units per phase tag."""
        out: Dict[str, float] = {}
        for r in self.regions:
            out[r.phase] = out.get(r.phase, 0.0) + r.total_work
        return out

    def atomics_by_phase(self) -> Dict[str, float]:
        """Recorded atomic-operation units per phase tag.

        Only phases with a nonzero atomic count appear, so the dict is
        a stable, deterministic summary of the contention profile (the
        layout experiments report its deltas between graph layouts).
        """
        out: Dict[str, float] = {}
        for r in self.regions:
            if r.atomics:
                out[r.phase] = out.get(r.phase, 0.0) + r.atomics
        return out

    def phases(self) -> List[str]:
        """Phase tags in first-appearance order."""
        seen: List[str] = []
        for r in self.regions:
            if r.phase not in seen:
                seen.append(r.phase)
        return seen

    # -- modelling -------------------------------------------------------------

    def simulate(
        self, machine, num_threads: int, *, work_scale: float = 1.0
    ) -> "SimulatedTime":
        """Modelled runtime at ``num_threads`` threads under ``machine``.

        Serial regions run on one core; parallel regions pay scheduler
        overhead per chunk, memory contention, SMT and NUMA effects as
        defined by the machine model.

        ``work_scale`` models the same execution on a ``work_scale``-times
        larger input: every region has proportionally more chunks of the
        same per-chunk cost (and proportionally more atomics), while
        per-region fixed costs (barriers) stay constant.  This is how the
        registry stand-ins are extrapolated to the paper-scale graphs.
        """
        phase_seconds: Dict[str, float] = {}
        total = 0.0
        for region in self.regions:
            if region.kind == "serial":
                seconds = (
                    float(region.chunk_costs[0]) * work_scale
                    * machine.time_per_unit
                )
            else:
                span = self._region_span(
                    region, machine, num_threads, work_scale
                )
                slowdown = machine.parallel_slowdown(num_threads)
                seconds = span * machine.time_per_unit * slowdown
                # Atomics execute on the worker threads: distribute them,
                # with the same contention/NUMA slowdown as regular work.
                seconds += (
                    region.atomics * work_scale * machine.atomic_seconds
                    * slowdown / max(1, num_threads)
                )
                seconds += machine.barrier_seconds(num_threads)
            phase_seconds[region.phase] = (
                phase_seconds.get(region.phase, 0.0) + seconds
            )
            total += seconds
        return SimulatedTime(total, phase_seconds, num_threads)

    @staticmethod
    def _region_span(
        region: Region, machine, num_threads: int, work_scale: float
    ) -> float:
        """Slowest-thread work units for one parallel region.

        Exact greedy list-scheduling when the chunk count is modest;
        for scaled-up runs (many chunks) the classic Graham bound
        ``W/T + (1 - 1/T) * max_chunk`` is exact enough and O(1).
        """
        costs = region.chunk_costs
        n_chunks = costs.shape[0] * work_scale
        overhead = machine.chunk_overhead_units
        if work_scale == 1.0 and n_chunks <= 4 * num_threads * 8:
            return makespan(
                costs, num_threads, region.schedule,
                per_chunk_overhead=overhead,
            )
        total = (float(costs.sum()) + overhead * costs.shape[0]) * work_scale
        if num_threads <= 1:
            return total
        max_chunk = float(costs.max()) + overhead
        return total / num_threads + (1.0 - 1.0 / num_threads) * max_chunk


@dataclass
class SimulatedTime:
    """Modelled wall-clock outcome for one run at one thread count."""

    seconds: float
    phase_seconds: Dict[str, float]
    num_threads: int

    def phase_fraction(self, phase: str) -> float:
        """Fraction of modelled time spent in ``phase``."""
        if self.seconds <= 0:
            return 0.0
        return self.phase_seconds.get(phase, 0.0) / self.seconds


def scaling_curve(
    ledger: WorkLedger, machine, thread_counts: Iterable[int]
) -> Dict[int, SimulatedTime]:
    """Modelled time for each thread count (Figure 9 helper)."""
    return {t: ledger.simulate(machine, t) for t in thread_counts}
