"""Machine and implementation cost models.

The paper's testbed is a dual-socket server with two 16-core Intel Xeon
Gold 6226R processors (32 physical cores, 64 hardware threads) — the
machine we do not have.  :class:`MachineModel` encodes its behaviour as a
small analytic model: core capacity with diminishing SMT returns, memory
bandwidth contention that grows with active cores, and a NUMA penalty once
threads span both sockets.  The work ledger multiplies through this model
to convert counted work units into modelled seconds.

:class:`ImplementationProfile` captures the *constant-factor* efficiency
of each competing implementation (C++ sequential original Leiden, igraph,
NetworKit's parallel C++, cuGraph on an A100).  Relative runtimes in the
reproduction come from (a) work units actually counted while executing our
faithful reimplementation of each competitor's algorithm and (b) these
documented constants, calibrated once against the paper's reported average
speedups (Table 1).  The calibration is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MachineModel:
    """Analytic model of a shared-memory NUMA machine.

    Work units are abstract (roughly: one edge scan plus its hashtable
    update).  ``time_per_unit`` anchors them to seconds for a single
    thread of the modelled machine running the reference implementation.
    """

    name: str = "dual-xeon-6226r"
    cores_per_socket: int = 16
    sockets: int = 2
    smt: int = 2
    #: Fraction of a core the second SMT thread contributes.
    smt_gain: float = 0.55
    #: Memory-contention growth per additional active core.
    contention_beta: float = 0.018
    #: Extra slowdown when threads span both sockets (at full spread).
    numa_factor: float = 1.24
    #: Additional penalty at full SMT occupancy (paper: NUMA effects at 64).
    smt_pressure: float = 1.12
    #: Seconds per work unit on one dedicated core.
    time_per_unit: float = 2.0e-8
    #: Dynamic-schedule handshake, expressed in work units per chunk.
    chunk_overhead_units: float = 40.0
    #: Seconds per atomic RMW (uncontended).
    atomic_seconds: float = 6.0e-9
    #: Base cost of one barrier / region teardown, seconds per log2(T).
    barrier_base_seconds: float = 3.0e-6

    @property
    def physical_cores(self) -> int:
        return self.cores_per_socket * self.sockets

    @property
    def max_threads(self) -> int:
        return self.physical_cores * self.smt

    def capacity(self, num_threads: int) -> float:
        """Effective core-equivalents delivered by ``num_threads`` threads."""
        t = max(1, int(num_threads))
        cores = min(t, self.physical_cores)
        smt_threads = min(max(t - self.physical_cores, 0),
                          self.physical_cores * (self.smt - 1))
        return cores + self.smt_gain * smt_threads

    def contention(self, num_threads: int) -> float:
        """Memory-bandwidth contention multiplier (>= 1)."""
        active_cores = min(max(1, num_threads), self.physical_cores)
        return 1.0 + self.contention_beta * (active_cores - 1)

    def numa(self, num_threads: int) -> float:
        """NUMA + SMT-pressure multiplier (>= 1)."""
        t = max(1, int(num_threads))
        cps = self.cores_per_socket
        mult = 1.0
        if t > cps:
            # Ramp in the cross-socket penalty as the second socket fills.
            frac = min(t - cps, cps) / cps
            mult *= 1.0 + (self.numa_factor - 1.0) * frac
        if t > self.physical_cores:
            frac = min(t - self.physical_cores, self.physical_cores) / self.physical_cores
            mult *= 1.0 + (self.smt_pressure - 1.0) * frac
        return mult

    def parallel_slowdown(self, num_threads: int) -> float:
        """Per-thread slowdown vs a dedicated core.

        A parallel region whose slowest thread holds ``W`` work units
        takes ``W * time_per_unit * parallel_slowdown(T)`` seconds.
        """
        t = max(1, int(num_threads))
        return (t / self.capacity(t)) * self.contention(t) * self.numa(t)

    def barrier_seconds(self, num_threads: int) -> float:
        """Cost of one barrier at ``num_threads`` threads."""
        t = max(1, int(num_threads))
        if t == 1:
            return 0.0
        return self.barrier_base_seconds * float(np.log2(t))

    def region_speedup(self, num_threads: int) -> float:
        """Ideal speedup of a perfectly balanced parallel region."""
        t = max(1, int(num_threads))
        return t / self.parallel_slowdown(t)

    def as_dict(self) -> dict:
        """JSON-ready description (embedded in trace document metadata)."""
        return {
            "name": self.name,
            "cores_per_socket": self.cores_per_socket,
            "sockets": self.sockets,
            "smt": self.smt,
            "physical_cores": self.physical_cores,
            "max_threads": self.max_threads,
            "time_per_unit": self.time_per_unit,
            "atomic_seconds": self.atomic_seconds,
            "barrier_base_seconds": self.barrier_base_seconds,
            "chunk_overhead_units": self.chunk_overhead_units,
        }

    def scaled(self, work_scale: float) -> "MachineModel":
        """Model a ``work_scale``-times larger input on this machine.

        Per-unit and per-atomic costs scale with the work (there are
        simply more of them); per-region fixed costs (barriers, the
        dynamic-schedule handshake per chunk) do not — large inputs have
        proportionally more chunks, which the chunked ledger regions
        already capture, but not proportionally more barriers.
        """
        return MachineModel(
            name=f"{self.name}x{work_scale:g}",
            cores_per_socket=self.cores_per_socket,
            sockets=self.sockets,
            smt=self.smt,
            smt_gain=self.smt_gain,
            contention_beta=self.contention_beta,
            numa_factor=self.numa_factor,
            smt_pressure=self.smt_pressure,
            time_per_unit=self.time_per_unit * work_scale,
            chunk_overhead_units=self.chunk_overhead_units,
            atomic_seconds=self.atomic_seconds * work_scale,
            barrier_base_seconds=self.barrier_base_seconds,
        )


@dataclass(frozen=True)
class ImplementationProfile:
    """Constant-factor efficiency of one implementation.

    ``unit_cost`` scales the machine's ``time_per_unit``; ``parallel``
    says whether the implementation uses all requested threads or is
    sequential; ``fixed_overhead_seconds`` models per-run setup.
    """

    name: str
    unit_cost: float
    parallel: bool
    fixed_overhead_seconds: float = 0.0
    description: str = ""

    def machine_for(self, base: MachineModel) -> MachineModel:
        """The machine model with this implementation's unit cost applied."""
        return MachineModel(
            name=f"{base.name}/{self.name}",
            cores_per_socket=base.cores_per_socket,
            sockets=base.sockets,
            smt=base.smt,
            smt_gain=base.smt_gain,
            contention_beta=base.contention_beta,
            numa_factor=base.numa_factor,
            smt_pressure=base.smt_pressure,
            time_per_unit=base.time_per_unit * self.unit_cost,
            chunk_overhead_units=base.chunk_overhead_units,
            atomic_seconds=base.atomic_seconds * self.unit_cost,
            barrier_base_seconds=base.barrier_base_seconds,
        )

    def effective_threads(self, requested: int) -> int:
        return requested if self.parallel else 1


#: The paper's CPU testbed (Section 5.1.1).
PAPER_MACHINE = MachineModel()

#: The A100 GPU testbed, folded into the same abstraction: a "machine"
#: with massive flat parallelism and no NUMA, but a higher per-unit cost
#: for the irregular, hashtable-heavy inner loops of community detection.
GPU_MACHINE = MachineModel(
    name="a100",
    cores_per_socket=108,  # SMs
    sockets=1,
    smt=1,
    smt_gain=0.0,
    contention_beta=0.004,
    numa_factor=1.0,
    smt_pressure=1.0,
    time_per_unit=1.25e-7,  # per-SM serial rate on irregular work
    chunk_overhead_units=0.0,
    atomic_seconds=2.0e-9,
    barrier_base_seconds=1.0e-5,
)

#: Constant-factor profiles, calibrated against Table 1 / Figure 6(b).
#: The *work* each implementation performs is measured, not assumed; these
#: constants only encode language/runtime efficiency differences.
IMPLEMENTATION_PROFILES: dict[str, ImplementationProfile] = {
    "gve": ImplementationProfile(
        "gve", 1.0, True,
        description="GVE-Leiden: asynchronous, flag-pruned, per-thread tables",
    ),
    "original": ImplementationProfile(
        "original", 21.0, False,
        fixed_overhead_seconds=0.05,
        description="libleidenalg: sequential C++, flexible containers, "
                    "randomized refinement run to full convergence",
    ),
    "igraph": ImplementationProfile(
        "igraph", 5.1, False,
        fixed_overhead_seconds=0.05,
        description="igraph_community_leiden: sequential C, run to convergence",
    ),
    "networkit": ImplementationProfile(
        "networkit", 4.0, True,
        fixed_overhead_seconds=0.02,
        description="NetworKit ParallelLeiden: global queues + vertex/"
                    "community locking",
    ),
    "cugraph": ImplementationProfile(
        "cugraph", 1.0, True,
        fixed_overhead_seconds=0.01,
        description="cuGraph Leiden on the A100 device model (BSP moves)",
    ),
}
