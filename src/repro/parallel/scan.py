"""Exclusive/inclusive prefix sums, including the blocked parallel form.

Algorithm 4 uses parallel exclusive scans to turn per-community counts
into CSR offsets.  ``exclusive_scan`` is the fast single-call form;
``blocked_exclusive_scan`` performs the classic three-phase parallel scan
(per-block reduce, scan of block sums, per-block rescan) so the work
ledger can account for it the way the OpenMP implementation executes it.
"""

from __future__ import annotations

import numpy as np

from repro.types import OFFSET_DTYPE


def inclusive_scan(values, out=None) -> np.ndarray:
    """Inclusive prefix sum."""
    values = np.asarray(values)
    if out is None:
        out = np.empty_like(values)
    np.cumsum(values, out=out)
    return out


def exclusive_scan(values, out=None) -> np.ndarray:
    """Exclusive prefix sum: ``out[i] = sum(values[:i])``.

    When ``out`` is provided it must have length ``len(values)``; the
    total is returned separately by :func:`exclusive_scan_total` callers
    that need it, or simply ``out[-1] + values[-1]``.
    """
    values = np.asarray(values)
    if out is None:
        out = np.empty_like(values)
    if values.shape[0] == 0:
        return out
    np.cumsum(values[:-1], out=out[1:])
    out[0] = 0
    return out


def exclusive_scan_with_total(values) -> tuple[np.ndarray, int]:
    """Exclusive scan plus the grand total (CSR offsets helper)."""
    values = np.asarray(values, dtype=OFFSET_DTYPE)
    out = np.zeros(values.shape[0] + 1, dtype=OFFSET_DTYPE)
    np.cumsum(values, out=out[1:])
    return out[:-1], int(out[-1])


def csr_offsets_from_counts(counts) -> np.ndarray:
    """Offsets array of length ``n + 1`` from per-row counts."""
    counts = np.asarray(counts, dtype=OFFSET_DTYPE)
    offsets = np.zeros(counts.shape[0] + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def blocked_exclusive_scan(
    values,
    num_blocks: int,
    *,
    ledger=None,
    phase: str = "scan",
) -> np.ndarray:
    """Three-phase parallel exclusive scan over ``num_blocks`` blocks.

    Produces exactly the same result as :func:`exclusive_scan`; the block
    structure exists so per-block work can be recorded in ``ledger``
    (2 passes over each block plus a sequential scan of block sums),
    matching how the OpenMP implementation would run it.
    """
    values = np.asarray(values)
    n = values.shape[0]
    out = np.empty_like(values)
    if n == 0:
        return out
    num_blocks = max(1, min(int(num_blocks), n))
    bounds = np.linspace(0, n, num_blocks + 1).astype(np.int64)
    block_sums = np.empty(num_blocks, dtype=values.dtype)
    for b in range(num_blocks):  # phase 1: per-block reduce
        block_sums[b] = values[bounds[b] : bounds[b + 1]].sum()
    block_offsets = exclusive_scan(block_sums)  # phase 2: scan block sums
    for b in range(num_blocks):  # phase 3: per-block exclusive rescan
        lo, hi = bounds[b], bounds[b + 1]
        exclusive_scan(values[lo:hi], out=out[lo:hi])
        out[lo:hi] += block_offsets[b]
    if ledger is not None:
        block_work = np.diff(bounds).astype(np.float64) * 2.0
        ledger.parallel(block_work, phase=phase)
        ledger.serial(float(num_blocks), phase=phase)
    return out
