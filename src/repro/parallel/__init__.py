"""Simulated shared-memory parallel runtime.

The paper runs on a dual-socket 32-core Xeon with OpenMP.  This package
provides the equivalent abstractions for a pure-Python reproduction:

- :mod:`repro.parallel.rng` — the xorshift32 generators the paper uses for
  randomized refinement;
- :mod:`repro.parallel.hashtable` — the collision-free per-thread
  hashtables of Algorithms 2-4;
- :mod:`repro.parallel.scan` — (parallel) exclusive prefix sums;
- :mod:`repro.parallel.schedule` — OpenMP-style static/dynamic/guided
  loop schedules;
- :mod:`repro.parallel.simthread` — a work ledger recording every parallel
  region so runtimes can be *modelled* for any thread count after a single
  execution (the GIL makes real thread scaling unobservable in Python);
- :mod:`repro.parallel.costmodel` — the machine model (cores, SMT, memory
  contention, NUMA) that converts ledger work into modelled seconds;
- :mod:`repro.parallel.atomics` — atomic-op emulation with accounting,
  plus real cross-process atomics over shared memory;
- :mod:`repro.parallel.shm` — shared-memory numpy arenas (owner/attacher);
- :mod:`repro.parallel.procpool` — the persistent worker-process pool
  behind the ``process`` engine (the one executor that sidesteps the GIL);
- :mod:`repro.parallel.runtime` — the facade tying it all together.
"""

from repro.parallel.atomics import AtomicArray, SharedAtomicArray
from repro.parallel.costmodel import (
    IMPLEMENTATION_PROFILES,
    PAPER_MACHINE,
    ImplementationProfile,
    MachineModel,
)
from repro.parallel.hashtable import CollisionFreeHashtable
from repro.parallel.procpool import (
    ProcessPool,
    TaskResult,
    WorkerCrashError,
    pool_kernel,
)
from repro.parallel.rng import Xorshift32
from repro.parallel.runtime import Runtime
from repro.parallel.scan import blocked_exclusive_scan, exclusive_scan, inclusive_scan
from repro.parallel.schedule import Schedule, assign_chunks, chunk_spans, makespan
from repro.parallel.shm import AttachedArena, ShmArena
from repro.parallel.simthread import Region, WorkLedger

__all__ = [
    "AttachedArena",
    "ProcessPool",
    "SharedAtomicArray",
    "ShmArena",
    "TaskResult",
    "WorkerCrashError",
    "pool_kernel",
    "Xorshift32",
    "CollisionFreeHashtable",
    "exclusive_scan",
    "inclusive_scan",
    "blocked_exclusive_scan",
    "Schedule",
    "chunk_spans",
    "assign_chunks",
    "makespan",
    "WorkLedger",
    "Region",
    "MachineModel",
    "ImplementationProfile",
    "PAPER_MACHINE",
    "IMPLEMENTATION_PROFILES",
    "AtomicArray",
    "Runtime",
]
