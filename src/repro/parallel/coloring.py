"""Parallel greedy graph coloring (Jones-Plassmann style).

The batch-parallel local-moving kernel processes vertices in batches that
share one snapshot of the memberships.  If two *adjacent* vertices decide
in the same batch they can swap or chase each other's communities forever
— the classic oscillation of synchronous Louvain.  Ordering vertices by a
proper coloring (a technique the paper cites from Grappolo [11]) removes
the problem: within a color class no two vertices are adjacent, so batch
decisions are exactly as independent as the asynchronous algorithm's.

The coloring itself is the standard parallel maximal-independent-set
iteration with random priorities: in each round, every uncolored vertex
that is a local priority maximum among its uncolored neighbors takes the
round's color.  Rounds only touch the *active* (still uncolored) vertex
set: their CSR rows are gathered and reduced per row with one
``maximum.reduceat`` — so per-round work shrinks with the frontier
instead of re-scanning every edge with a ``np.maximum.at`` scatter.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.segments import ragged_indices

__all__ = ["color_graph", "color_classes", "verify_coloring"]


def color_graph(
    graph: CSRGraph,
    *,
    seed: int = 0,
    max_rounds: int = 256,
) -> np.ndarray:
    """Proper vertex coloring; returns a color id per vertex.

    Colors are dense ``0..k-1``.  If ``max_rounds`` is hit (pathological
    inputs), all remaining vertices are given mutually distinct fresh
    colors, preserving properness.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    # Flat (owner, neighbor) edge arrays from the symmetric CSR, self
    # loops dropped.  An edge only matters while *both* endpoints are
    # uncolored, so the arrays are compacted in place every round — the
    # filtering preserves the by-owner grouping, letting the per-owner
    # maximum stay a single ``reduceat``.  Per-round cost tracks the
    # shrinking frontier's live edges, not the whole graph.
    seg, idx = ragged_indices(graph.offsets[:-1], graph.degrees)
    owner = seg
    nbr = graph.targets[idx].astype(np.int64)
    notself = owner != nbr
    owner, nbr = owner[notself], nbr[notself]

    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)
    uncolored = np.ones(n, dtype=bool)
    active = np.arange(n, dtype=np.int64)
    color = 0
    while active.shape[0] > 0:
        if color >= max_rounds:
            colors[active] = color + np.arange(active.shape[0])
            break
        # Max uncolored-neighbor priority per uncolored vertex.  Owners
        # with no live edges left keep best == -1 and win immediately
        # (isolated vertices never enter the edge arrays at all).
        best = np.full(n, -1, dtype=np.int64)
        if owner.shape[0] > 0:
            boundary = np.empty(owner.shape[0], dtype=bool)
            boundary[0] = True
            np.not_equal(owner[1:], owner[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            best[owner[starts]] = np.maximum.reduceat(priority[nbr], starts)
        winners = priority[active] > best[active]
        won = active[winners]
        colors[won] = color
        uncolored[won] = False
        active = active[~winners]
        color += 1
        if won.shape[0] > 0 and owner.shape[0] > 0:
            live = uncolored[owner] & uncolored[nbr]
            owner, nbr = owner[live], nbr[live]
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Vertex-id arrays per color, ascending color then ascending id."""
    if colors.shape[0] == 0:
        return []
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_colors[1:] != sorted_colors[:-1]])
    )
    return np.split(order, boundaries[1:])


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no edge connects two vertices of the same color."""
    src, dst, _ = graph.to_coo()
    notself = src != dst
    return not bool(np.any(colors[src[notself]] == colors[dst[notself]]))
