"""Parallel greedy graph coloring (Jones-Plassmann style).

The batch-parallel local-moving kernel processes vertices in batches that
share one snapshot of the memberships.  If two *adjacent* vertices decide
in the same batch they can swap or chase each other's communities forever
— the classic oscillation of synchronous Louvain.  Ordering vertices by a
proper coloring (a technique the paper cites from Grappolo [11]) removes
the problem: within a color class no two vertices are adjacent, so batch
decisions are exactly as independent as the asynchronous algorithm's.

The coloring itself is the standard parallel maximal-independent-set
iteration with random priorities: in each round, every uncolored vertex
that is a local priority maximum among its uncolored neighbors takes the
round's color.  Rounds are fully vectorized (one ``np.maximum.at`` pass
over the edges each).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["color_graph", "color_classes", "verify_coloring"]


def color_graph(
    graph: CSRGraph,
    *,
    seed: int = 0,
    max_rounds: int = 256,
) -> np.ndarray:
    """Proper vertex coloring; returns a color id per vertex.

    Colors are dense ``0..k-1``.  If ``max_rounds`` is hit (pathological
    inputs), all remaining vertices are given mutually distinct fresh
    colors, preserving properness.
    """
    n = graph.num_vertices
    colors = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return colors
    src, dst, _ = graph.to_coo()
    notself = src != dst
    src, dst = src[notself], dst[notself]

    rng = np.random.default_rng(seed)
    priority = rng.permutation(n)
    uncolored = np.ones(n, dtype=bool)
    color = 0
    while uncolored.any():
        if color >= max_rounds:
            remaining = np.flatnonzero(uncolored)
            colors[remaining] = color + np.arange(remaining.shape[0])
            break
        # Max uncolored-neighbor priority per uncolored vertex.
        live = uncolored[src] & uncolored[dst]
        best = np.full(n, -1, dtype=np.int64)
        if live.any():
            np.maximum.at(best, dst[live], priority[src[live]])
        winners = uncolored & (priority > best)
        colors[winners] = color
        uncolored[winners] = False
        color += 1
    return colors


def color_classes(colors: np.ndarray) -> list[np.ndarray]:
    """Vertex-id arrays per color, ascending color then ascending id."""
    if colors.shape[0] == 0:
        return []
    order = np.argsort(colors, kind="stable")
    sorted_colors = colors[order]
    boundaries = np.flatnonzero(
        np.concatenate([[True], sorted_colors[1:] != sorted_colors[:-1]])
    )
    return np.split(order, boundaries[1:])


def verify_coloring(graph: CSRGraph, colors: np.ndarray) -> bool:
    """True iff no edge connects two vertices of the same color."""
    src, dst, _ = graph.to_coo()
    notself = src != dst
    return not bool(np.any(colors[src[notself]] == colors[dst[notself]]))
