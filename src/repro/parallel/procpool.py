"""Persistent worker-process pool for the ``process`` engine.

CPython's GIL makes the ``threads`` executor a correctness exerciser, not
a speedup: every interpreter instruction serializes.  This pool is the
real shared-memory executor the paper's OpenMP runtime corresponds to —
N long-lived worker *processes*, each with its own interpreter (hence its
own GIL), all mapping the same :class:`~repro.parallel.shm.ShmArena`
segments.

Design points:

- **pickling-free kernels** — workers never receive code or arrays.
  Kernels are module-level functions registered under a string name with
  :func:`pool_kernel`; a task message is ``(index, kernel_name, payload)``
  where the payload is a dict of scalars (chunk bounds, parameters).
  Results are written into shared output arrays at chunk offsets; the
  completion token carries only the task index, timings and a small
  reduction value.
- **real synchronization** — dispatch and completion ride
  ``multiprocessing`` queues; the end-of-phase barrier is the parent
  draining one completion token per task.  Worker-side mutual exclusion
  (when a kernel must update shared state) uses
  :class:`~repro.parallel.atomics.SharedAtomicArray`'s process lock.
- **deterministic seeded dispatch order** — tasks are enqueued in a
  seeded xorshift32 permutation (:func:`~repro.parallel.schedule.
  seeded_chunk_order`).  Which worker runs which chunk is racy by
  nature; engines built on the pool must make results
  position-addressed so membership is reproducible at any worker count.
- **crash containment** — :meth:`ProcessPool.run` polls worker liveness
  while waiting; a dead worker raises :class:`WorkerCrashError` instead
  of hanging the barrier, and ``close()``/context-exit always reaps the
  children.
"""

from __future__ import annotations

import importlib
import os
import queue as queue_mod
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

import multiprocessing as mp
import numpy as np

from repro.errors import ConfigError
from repro.parallel.rng import Xorshift32
from repro.parallel.schedule import seeded_chunk_order
from repro.parallel.shm import ArenaSpec, AttachedArena

__all__ = [
    "POOL_KERNELS",
    "ProcessPool",
    "TaskResult",
    "WorkerCrashError",
    "pool_kernel",
    "worker_context",
]

#: Registry of kernels workers can execute, by name.  Populated by
#: :func:`pool_kernel` at import time of the defining module — the pool
#: ships *module import paths* to workers, never code objects.
POOL_KERNELS: Dict[str, Callable] = {}

#: Default liveness-poll interval while waiting on the completion queue.
_POLL_SECONDS = 0.05


class WorkerCrashError(RuntimeError):
    """A worker process died while tasks were outstanding."""


def pool_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register a module-level function as a pool kernel.

    The kernel is called as ``fn(ctx, **payload)`` where ``ctx`` is the
    :class:`WorkerContext` (attached arena + per-worker scratch).  Its
    return value must be cheap to pickle (scalars / small tuples) — bulk
    output belongs in shared arrays.
    """

    def decorate(fn: Callable) -> Callable:
        POOL_KERNELS[name] = fn
        return fn

    return decorate


class WorkerContext:
    """What a kernel sees: the attached arena, the pool's shared lock
    (for :class:`~repro.parallel.atomics.SharedAtomicArray` critical
    sections) and worker-local scratch."""

    def __init__(self, worker_id: int, num_workers: int, lock=None) -> None:
        self.worker_id = worker_id
        self.num_workers = num_workers
        self.lock = lock
        self.arena: Optional[AttachedArena] = None
        self.scratch: Dict[str, object] = {}

    def __getitem__(self, key: str):
        if self.arena is None:
            raise KeyError(f"no arena bound (requested {key!r})")
        return self.arena[key]


#: Module-global context inside a worker process (one per interpreter).
_WORKER_CTX: Optional[WorkerContext] = None


def worker_context() -> WorkerContext:
    """The executing worker's context (kernels may call this)."""
    if _WORKER_CTX is None:
        raise RuntimeError("worker_context() outside a pool worker")
    return _WORKER_CTX


class TaskResult:
    """Completion token for one task."""

    __slots__ = ("index", "value", "worker_id", "start", "end")

    def __init__(self, index, value, worker_id, start, end):
        self.index = index
        self.value = value
        self.worker_id = worker_id
        self.start = start
        self.end = end

    @property
    def seconds(self) -> float:
        return self.end - self.start


def _sync(barrier) -> None:
    """Pass the control barrier; tolerate it breaking on a crash path."""
    try:
        barrier.wait(timeout=60.0)
    except threading.BrokenBarrierError:  # pragma: no cover - crash path
        pass


def _worker_main(
    worker_id: int,
    num_workers: int,
    kernel_modules: Sequence[str],
    task_queue,
    done_queue,
    lock=None,
    barrier=None,
) -> None:
    """Worker loop: bind/release arenas, execute named kernels.

    Control messages ("bind"/"release") are broadcast as one queue entry
    per worker; after handling one, the worker waits on a real
    ``multiprocessing.Barrier`` so a fast worker cannot also consume a
    sibling's copy while that sibling is still attaching.
    """
    global _WORKER_CTX
    ctx = WorkerContext(worker_id, num_workers, lock)
    _WORKER_CTX = ctx
    for module in kernel_modules:
        importlib.import_module(module)
    try:
        while True:
            msg = task_queue.get()
            if msg is None:
                break
            kind = msg[0]
            if kind == "bind":
                spec: ArenaSpec = msg[1]
                if ctx.arena is not None:
                    ctx.arena.close()
                ctx.arena = AttachedArena(spec)
                ctx.scratch.clear()
                done_queue.put(("bound", worker_id))
                _sync(barrier)
            elif kind == "release":
                if ctx.arena is not None:
                    ctx.arena.close()
                    ctx.arena = None
                ctx.scratch.clear()
                done_queue.put(("released", worker_id))
                _sync(barrier)
            elif kind == "task":
                _, index, kernel, payload = msg
                t0 = time.perf_counter()
                try:
                    value = POOL_KERNELS[kernel](ctx, **payload)
                except BaseException as exc:
                    done_queue.put(("error", worker_id, index,
                                    f"{type(exc).__name__}: {exc}"))
                    continue
                t1 = time.perf_counter()
                done_queue.put(("done", worker_id, index, value, t0, t1))
            # Unknown kinds are dropped silently: forward compatibility.
    finally:
        if ctx.arena is not None:
            ctx.arena.close()


class ProcessPool:
    """A persistent pool of worker processes executing registered kernels.

    Parameters
    ----------
    num_workers:
        Worker-process count (the engine's real parallel width).
    kernel_modules:
        Import paths whose module-level :func:`pool_kernel` registrations
        the workers need.  Imported inside each worker at startup, so
        spawn-started workers resolve the same kernels fork-started ones
        inherit.
    context:
        ``multiprocessing`` start method; default ``fork`` where
        available (fastest, Linux) else ``spawn``.
    seed:
        Seed for the deterministic task dispatch order.
    memory:
        A :class:`~repro.observability.memtrack.MemoryLedger`; each
        :meth:`bind` records the spec's segment bytes × worker count as
        a *physical* attach (worker mappings share pages — they are not
        logical allocations, so the logical report stays invariant).
    """

    #: Kernel modules every pool loads (the engine kernels).
    DEFAULT_KERNEL_MODULES = ("repro.core.proc_kernels",)

    def __init__(
        self,
        num_workers: int,
        *,
        kernel_modules: Sequence[str] | None = None,
        context: str | None = None,
        seed: int = 12345,
        memory=None,
    ) -> None:
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if context is None:
            context = ("fork" if "fork" in mp.get_all_start_methods()
                       else "spawn")
        self.num_workers = int(num_workers)
        self.kernel_modules = tuple(
            kernel_modules if kernel_modules is not None
            else self.DEFAULT_KERNEL_MODULES)
        self._ctx = mp.get_context(context)
        self._order_rng = Xorshift32(seed)
        self._tasks = self._ctx.Queue()
        self._done = self._ctx.Queue()
        #: Shared cross-process lock handed to every worker — the mutual
        #: exclusion primitive behind :class:`SharedAtomicArray` updates.
        self.lock = self._ctx.Lock()
        #: Real cross-process barrier serializing control broadcasts: every
        #: worker must handle exactly one copy of a bind/release message.
        self.barrier = self._ctx.Barrier(self.num_workers)
        self._workers: List = []
        self._closed = False
        self._bound = False
        self.memory = memory
        self.tasks_dispatched = 0
        self.epoch = time.perf_counter()

    # -- lifecycle ---------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._closed:
            raise ValueError("pool is closed")
        if self._workers:
            return
        for w in range(self.num_workers):
            p = self._ctx.Process(
                target=_worker_main,
                args=(w, self.num_workers, self.kernel_modules,
                      self._tasks, self._done, self.lock, self.barrier),
                daemon=True,
                name=f"repro-worker-{w}",
            )
            p.start()
            self._workers.append(p)

    def alive(self) -> bool:
        """True when every started worker is still running."""
        return bool(self._workers) and all(p.is_alive() for p in self._workers)

    def close(self) -> None:
        """Stop the workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue gone
                break
        deadline = time.monotonic() + 5.0
        for p in self._workers:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in self._workers:
            if p.is_alive():
                p.terminate()
                p.join(timeout=1.0)
        self._workers.clear()
        for q in (self._tasks, self._done):
            try:
                q.close()
                q.join_thread()
            except (ValueError, OSError):  # pragma: no cover
                pass

    def terminate(self) -> None:
        """Kill the workers immediately (crash path); idempotent."""
        self._closed = True
        for p in self._workers:
            if p.is_alive():
                p.terminate()
        for p in self._workers:
            p.join(timeout=1.0)
        self._workers.clear()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.terminate()
        except Exception:
            pass

    # -- barriers ----------------------------------------------------------

    def _drain(self, expect: str, count: int, *, timeout: float = 60.0):
        """Collect ``count`` tokens of kind ``expect``; poll liveness."""
        results = []
        deadline = time.monotonic() + timeout
        while len(results) < count:
            try:
                msg = self._done.get(timeout=_POLL_SECONDS)
            except queue_mod.Empty:
                if not self.alive():
                    self.terminate()
                    raise WorkerCrashError(
                        "worker process died while "
                        f"{count - len(results)} task(s) outstanding"
                    ) from None
                if time.monotonic() > deadline:
                    self.terminate()
                    raise WorkerCrashError(
                        f"pool barrier timed out after {timeout:.0f}s"
                    ) from None
                continue
            if msg[0] == "error":
                _, worker_id, index, text = msg
                self.terminate()
                raise WorkerCrashError(
                    f"task {index} failed on worker {worker_id}: {text}")
            if msg[0] != expect:  # pragma: no cover - stale token
                continue
            results.append(msg)
        return results

    # -- API ---------------------------------------------------------------

    def bind(self, spec: ArenaSpec, *, timeout: float = 60.0) -> None:
        """Broadcast an arena to every worker and barrier on attachment."""
        self._ensure_started()
        for _ in self._workers:
            self._tasks.put(("bind", spec))
        self._drain("bound", len(self._workers), timeout=timeout)
        self._bound = True
        memory = self.memory
        if memory is not None and memory.enabled:
            # Worker mappings of the owner's segments: physical-only
            # accounting (the pages are shared; the owner's ShmArena
            # already recorded the logical allocation events).
            nbytes = sum(
                max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
                for (_, shape, dtype) in spec.values())
            memory.attach("procpool", "arena_map", nbytes,
                          replicas=self.num_workers)

    def release(self, *, timeout: float = 60.0) -> None:
        """Detach the bound arena everywhere (before the owner unlinks)."""
        if not self._bound or not self._workers or self._closed:
            self._bound = False
            return
        for _ in self._workers:
            self._tasks.put(("release", None))
        self._drain("released", len(self._workers), timeout=timeout)
        self._bound = False

    def run(
        self,
        kernel: str,
        payloads: Sequence[dict],
        *,
        timeout: float = 600.0,
    ) -> List[TaskResult]:
        """Execute ``kernel`` once per payload; barrier until all done.

        Tasks are enqueued in a seeded deterministic permutation (the
        dispatch-order analogue of OpenMP's dynamic chunk hand-out);
        results are returned sorted by task index.  Raises
        :class:`WorkerCrashError` if a worker dies or a kernel raises.
        """
        self._ensure_started()
        n = len(payloads)
        if n == 0:
            return []
        order = seeded_chunk_order(n, self._order_rng.next_uint32())
        for i in order:
            self._tasks.put(("task", int(i), kernel, payloads[int(i)]))
        self.tasks_dispatched += n
        tokens = self._drain("done", n, timeout=timeout)
        results = [
            TaskResult(index, value, worker_id,
                       start - self.epoch, end - self.epoch)
            for (_, worker_id, index, value, start, end) in tokens
        ]
        results.sort(key=lambda r: r.index)
        return results

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "running" if self._workers else "cold")
        return f"ProcessPool(workers={self.num_workers}, {state})"


def default_worker_count() -> int:
    """A sensible worker count for benches: physical cores, capped at 4."""
    return max(1, min(4, os.cpu_count() or 1))
