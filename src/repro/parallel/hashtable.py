"""Collision-free per-thread hashtable (``H_t`` of Algorithms 2-4).

GVE-Leiden sidesteps hash collisions entirely: community ids are dense
integers below the vertex count, so each thread owns a direct-indexed
table of ``capacity`` float64 slots plus a compact list of the keys it has
touched.  ``clear()`` only resets the touched slots, making repeated use
O(keys) instead of O(capacity) — the property that makes per-thread
preallocation worthwhile.  Each instance owns its own numpy buffers, so
per-thread instances are "well separated in their memory addresses" as the
paper requires.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.types import ACCUM_DTYPE, VERTEX_DTYPE


class CollisionFreeHashtable:
    """Direct-indexed accumulator keyed by dense non-negative integers."""

    __slots__ = ("_values", "_keys", "_used", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._values = np.zeros(capacity, dtype=ACCUM_DTYPE)
        self._keys = np.empty(capacity, dtype=VERTEX_DTYPE)
        self._used = np.zeros(capacity, dtype=bool)
        self._count = 0

    @property
    def capacity(self) -> int:
        return self._values.shape[0]

    def __len__(self) -> int:
        """Number of distinct keys currently stored."""
        return self._count

    def accumulate(self, key: int, weight: float) -> None:
        """``H[key] += weight``, registering the key on first touch."""
        if not self._used[key]:
            self._used[key] = True
            self._keys[self._count] = key
            self._count += 1
        self._values[key] += weight

    def accumulate_many(self, keys: np.ndarray, weights: np.ndarray) -> None:
        """Vectorized ``H[k] += w`` for parallel key/weight arrays."""
        keys = np.asarray(keys)
        fresh = np.unique(keys[~self._used[keys]])
        if fresh.size:
            self._used[fresh] = True
            self._keys[self._count : self._count + fresh.size] = fresh
            self._count += fresh.size
        np.add.at(self._values, keys, np.asarray(weights, dtype=ACCUM_DTYPE))

    def get(self, key: int, default: float = 0.0) -> float:
        """Current accumulated value for ``key``."""
        if 0 <= key < self.capacity and self._used[key]:
            return float(self._values[key])
        return default

    def __contains__(self, key: int) -> bool:
        return 0 <= int(key) < self.capacity and bool(self._used[key])

    def keys(self) -> np.ndarray:
        """The touched keys, in first-touch order (a view; do not mutate)."""
        return self._keys[: self._count]

    def values(self) -> np.ndarray:
        """Values parallel to :meth:`keys`."""
        return self._values[self.keys()]

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate ``(key, value)`` pairs in first-touch order."""
        keys = self.keys()
        vals = self._values[keys]
        for k, v in zip(keys.tolist(), vals.tolist()):
            yield k, v

    def max_key(self) -> Tuple[int, float]:
        """``(key, value)`` of the maximum value; raises if empty."""
        if self._count == 0:
            raise KeyError("hashtable is empty")
        keys = self.keys()
        vals = self._values[keys]
        pos = int(np.argmax(vals))
        return int(keys[pos]), float(vals[pos])

    def clear(self) -> None:
        """Reset, touching only the used slots (O(len), not O(capacity))."""
        keys = self.keys()
        self._values[keys] = 0.0
        self._used[keys] = False
        self._count = 0

    def to_dict(self) -> dict[int, float]:
        """Copy out as a plain dict (test/debug helper)."""
        return {int(k): float(v) for k, v in self.items()}
