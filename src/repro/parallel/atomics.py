"""Atomic-operation emulation with accounting.

In the OpenMP implementation, community weights ``Σ'`` are updated with
atomic adds, and the refinement phase guards moves with a compare-and-swap
(Algorithm 3).  Executed serially (or under the GIL) these are ordinary
array operations; what matters for the reproduction is (a) preserving the
exact success/failure semantics of the CAS and (b) *counting* the atomics
so the machine model can charge for them.
"""

from __future__ import annotations

import threading

import numpy as np


class AtomicArray:
    """A float64 array with atomic add / CAS and an operation counter.

    ``thread_safe=True`` takes a real lock around each operation, making
    the structure usable from Python threads; the default skips the lock
    since the simulated runtime executes regions serially.
    """

    __slots__ = ("values", "op_count", "_lock")

    def __init__(self, values: np.ndarray, *, thread_safe: bool = False) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.op_count = 0
        self._lock = threading.Lock() if thread_safe else None

    def __len__(self) -> int:
        return self.values.shape[0]

    def __getitem__(self, idx):
        return self.values[idx]

    def load(self, idx: int) -> float:
        return float(self.values[idx])

    def add(self, idx: int, delta: float) -> float:
        """Atomic ``values[idx] += delta``; returns the new value."""
        if self._lock is not None:
            with self._lock:
                self.values[idx] += delta
                self.op_count += 1
                return float(self.values[idx])
        self.values[idx] += delta
        self.op_count += 1
        return float(self.values[idx])

    def add_many(self, idx: np.ndarray, deltas) -> None:
        """Batch of atomic adds (duplicate indices accumulate, as atomics do)."""
        idx = np.asarray(idx)
        if self._lock is not None:
            with self._lock:
                np.add.at(self.values, idx, deltas)
                self.op_count += int(idx.shape[0])
            return
        np.add.at(self.values, idx, deltas)
        self.op_count += int(idx.shape[0])

    def compare_and_swap(self, idx: int, expected: float, new: float) -> float:
        """Atomic CAS: if ``values[idx] == expected`` store ``new``.

        Returns the value observed *before* the operation (Algorithm 3's
        ``atomicCAS`` convention: success iff the return equals
        ``expected``).
        """
        if self._lock is not None:
            with self._lock:
                return self._cas_unlocked(idx, expected, new)
        return self._cas_unlocked(idx, expected, new)

    def _cas_unlocked(self, idx: int, expected: float, new: float) -> float:
        old = float(self.values[idx])
        self.op_count += 1
        if old == expected:
            self.values[idx] = new
        return old
