"""Atomic-operation emulation with accounting.

In the OpenMP implementation, community weights ``Σ'`` are updated with
atomic adds, and the refinement phase guards moves with a compare-and-swap
(Algorithm 3).  Executed serially (or under the GIL) these are ordinary
array operations; what matters for the reproduction is (a) preserving the
exact success/failure semantics of the CAS and (b) *counting* the atomics
so the machine model can charge for them.

:class:`AtomicArray` covers the serial and thread executors (optionally
lock-guarded with a ``threading.Lock``).  :class:`SharedAtomicArray` is
the process-executor variant: the values live in a
:class:`~repro.parallel.shm.ShmArena` segment mapped by every worker, and
each operation holds a real ``multiprocessing.Lock`` — genuine
cross-process atomicity, the same structure OpenMP's ``atomic``/
``critical`` pair provides.  The op count also lives in shared memory so
the parent can fold worker-side atomics into the cost-model ledger after
a barrier.
"""

from __future__ import annotations

import threading

import numpy as np


class AtomicArray:
    """A float64 array with atomic add / CAS and an operation counter.

    ``thread_safe=True`` takes a real lock around each operation, making
    the structure usable from Python threads; the default skips the lock
    since the simulated runtime executes regions serially.
    """

    __slots__ = ("values", "op_count", "_lock")

    def __init__(self, values: np.ndarray, *, thread_safe: bool = False) -> None:
        self.values = np.asarray(values, dtype=np.float64)
        self.op_count = 0
        self._lock = threading.Lock() if thread_safe else None

    def __len__(self) -> int:
        return self.values.shape[0]

    def __getitem__(self, idx):
        return self.values[idx]

    def load(self, idx: int) -> float:
        return float(self.values[idx])

    def add(self, idx: int, delta: float) -> float:
        """Atomic ``values[idx] += delta``; returns the new value."""
        if self._lock is not None:
            with self._lock:
                self.values[idx] += delta
                self.op_count += 1
                return float(self.values[idx])
        self.values[idx] += delta
        self.op_count += 1
        return float(self.values[idx])

    def add_many(self, idx: np.ndarray, deltas) -> None:
        """Batch of atomic adds (duplicate indices accumulate, as atomics do)."""
        idx = np.asarray(idx)
        if self._lock is not None:
            with self._lock:
                np.add.at(self.values, idx, deltas)
                self.op_count += int(idx.shape[0])
            return
        np.add.at(self.values, idx, deltas)
        self.op_count += int(idx.shape[0])

    def compare_and_swap(self, idx: int, expected: float, new: float) -> float:
        """Atomic CAS: if ``values[idx] == expected`` store ``new``.

        Returns the value observed *before* the operation (Algorithm 3's
        ``atomicCAS`` convention: success iff the return equals
        ``expected``).
        """
        if self._lock is not None:
            with self._lock:
                return self._cas_unlocked(idx, expected, new)
        return self._cas_unlocked(idx, expected, new)

    def _cas_unlocked(self, idx: int, expected: float, new: float) -> float:
        old = float(self.values[idx])
        self.op_count += 1
        if old == expected:
            self.values[idx] = new
        return old


class SharedAtomicArray:
    """A float64 array in shared memory with *cross-process* atomic ops.

    Construction is two-sided, mirroring the arena's owner/attacher
    split:

    - the parent calls :meth:`create`, which places ``values`` (and a
      one-slot op counter) in the given arena and allocates a real
      ``multiprocessing.Lock``;
    - workers rebuild the wrapper from ``(arena_key, lock)`` against the
      arena views they attached — same pages, same lock.

    Each ``add``/``compare_and_swap`` holds the lock across the
    read-modify-write, which is exactly what an OpenMP ``critical``
    provides (and what ``atomic`` compiles to on contended cache lines).
    The op counter is itself shared so the parent can charge worker-side
    atomics to the machine model after a barrier.
    """

    __slots__ = ("values", "_ops", "_lock")

    #: Arena-key suffix under which the op counter is stored.
    OPS_SUFFIX = "__ops"

    def __init__(self, values: np.ndarray, ops: np.ndarray, lock) -> None:
        self.values = values
        self._ops = ops
        self._lock = lock

    @classmethod
    def create(cls, arena, key: str, source: np.ndarray, ctx):
        """Parent side: copy ``source`` into ``arena`` under ``key``."""
        values = arena.from_array(key, np.asarray(source, dtype=np.float64))
        ops = arena.create(key + cls.OPS_SUFFIX, (1,), np.float64)
        return cls(values, ops, ctx.Lock())

    @classmethod
    def attach(cls, arena, key: str, lock) -> "SharedAtomicArray":
        """Worker side: wrap the already-attached arena views."""
        return cls(arena[key], arena[key + cls.OPS_SUFFIX], lock)

    def __len__(self) -> int:
        return self.values.shape[0]

    def __getitem__(self, idx):
        return self.values[idx]

    @property
    def op_count(self) -> int:
        return int(self._ops[0])

    def load(self, idx: int) -> float:
        with self._lock:
            return float(self.values[idx])

    def add(self, idx: int, delta: float) -> float:
        """Cross-process atomic ``values[idx] += delta``."""
        with self._lock:
            self.values[idx] += delta
            self._ops[0] += 1
            return float(self.values[idx])

    def add_many(self, idx: np.ndarray, deltas) -> None:
        """One critical section covering a batch of adds."""
        idx = np.asarray(idx)
        with self._lock:
            np.add.at(self.values, idx, deltas)
            self._ops[0] += idx.shape[0]

    def compare_and_swap(self, idx: int, expected: float, new: float) -> float:
        """Cross-process CAS; returns the value observed before."""
        with self._lock:
            old = float(self.values[idx])
            self._ops[0] += 1
            if old == expected:
                self.values[idx] = new
            return old
