"""Request-scoped distributed tracing on the fleet's logical clock.

The fourth observability pillar: where the tracer answers *how much*,
the profiler *where on the machine*, and metrics *what the p99 is*,
this module answers **why a specific request was slow** — which queue
it waited in, which shard served it, whether it joined an in-flight
DETECT, failed over to a replica, or triggered an incremental vs full
refresh.

Every workload-injected request mints a deterministic
:func:`mint_trace_id` (blake2b of seed and submission sequence — no
wall clock anywhere), and a ``TraceContext``
(:mod:`repro.fleet.tracectx`) rides the ticket through
:mod:`repro.fleet.router` → per-shard
:class:`~repro.service.server.PartitionServer` → refresh solves,
appending causal :class:`ReqSpan` records: admission, queue wait,
dedup joins (follower spans ``link`` to the leader's trace), coalesce
membership, failover hops, store state at serve time, and
incremental-vs-full refresh with the affected-frontier size.

Emission is byte-deterministic:

- :meth:`RequestTracer.to_json_dict` — the :data:`REQTRACE_SCHEMA`
  document (``repro reqtrace`` inspects it, CI byte-compares double
  runs, :func:`validate_reqtrace` re-derives every trace_id);
- :meth:`RequestTracer.to_chrome_trace` — a merged Chrome-trace view:
  one lane per shard plus the router lane under
  :data:`~repro.observability.profiler.PID_FLEET`, with flow events
  (``s``/``t``/``f``) stitching each request's cross-shard hops;
  :func:`merge_chrome_trace` grafts those lanes onto an existing
  profiler document so one file shows solver timeline and request
  journeys side by side.

**Tail sampling** (:class:`TailSamplingConfig`) is deterministic:
errors, DEGRADED serves and failovers are always kept, the top-K
slowest per seq-window are kept, and a seeded hash reservoir keeps a
deterministic fraction of the rest — :func:`select_kept` is the single
rule implementation, applied post-hoc in full mode and per window in
sampled mode, so the two modes agree on the kept set by construction
(the ``ext_fleet_reqtrace`` A/B pins this).  The reservoir and
always-keep rules depend only on the trace itself (never on shard
placement), so their kept set is invariant to fleet width.

The :class:`FlightRecorder` is a bounded ring of the last N finished
traces; :meth:`RequestTracer.observe_health` dumps it whenever the
:class:`~repro.observability.health.HealthEvaluator` state transitions
into PAGE — the post-incident "what was in flight" artifact.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, List, Optional, Tuple

from repro.observability.profiler import PID_FLEET, PROFILE_SCHEMA

__all__ = [
    "REQTRACE_SCHEMA",
    "DETERMINISTIC_KEEP_REASONS",
    "ReqSpan",
    "RequestTrace",
    "RequestTracer",
    "NullRequestTracer",
    "NULL_REQTRACE",
    "TailSamplingConfig",
    "FlightRecorder",
    "mint_trace_id",
    "select_kept",
    "merge_chrome_trace",
    "validate_reqtrace",
]

#: Version tag embedded in every emitted request-trace document.
REQTRACE_SCHEMA = "repro.reqtrace/1"

#: Keep reasons that depend only on the trace itself (status, id), never
#: on shard placement or timing — the kept set restricted to these is
#: invariant to fleet width.  ``slowest`` is deliberately absent:
#: latency depends on sharding.
DETERMINISTIC_KEEP_REASONS = frozenset(
    {"error", "degraded", "failover", "reservoir"})


def mint_trace_id(seed: int, sequence: int) -> str:
    """Deterministic 16-hex-char trace id for one injected request.

    blake2b of ``"{seed}:{sequence}"`` — no wall clock, no randomness —
    so double runs mint identical ids and :func:`validate_reqtrace` can
    re-derive every id from the document's own metadata.
    """
    return blake2b(f"{seed}:{sequence}".encode(), digest_size=8).hexdigest()


def _reservoir_hash(seed: int, trace_id: str) -> int:
    """Seeded reservoir draw for one trace (independent of the id hash)."""
    digest = blake2b(f"{seed}:reservoir:{trace_id}".encode(),
                     digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class ReqSpan:
    """One causal span of a request's journey, on the logical clock.

    ``lane`` names where it happened (``router`` or a shard id);
    ``link`` carries the leader's trace_id for dedup-join follower
    spans.
    """

    name: str
    lane: str
    start_units: float
    end_units: float
    attrs: Dict[str, object]
    link: Optional[str] = None

    def to_json_dict(self) -> dict:
        out: Dict[str, object] = {
            "name": self.name,
            "lane": self.lane,
            "start_units": self.start_units,
            "end_units": self.end_units,
        }
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        if self.link is not None:
            out["link"] = self.link
        return out


class RequestTrace:
    """The full record of one request: identity, outcome, spans."""

    __slots__ = ("trace_id", "seq", "kind", "key", "start_units",
                 "end_units", "status", "fleet_state", "failover",
                 "latency_units", "spans", "keep_reasons")

    def __init__(self, trace_id: str, seq: int, kind: str, key: str,
                 start_units: float) -> None:
        self.trace_id = trace_id
        self.seq = seq
        self.kind = kind
        self.key = key
        self.start_units = float(start_units)
        self.end_units = self.start_units
        self.status = "pending"
        self.fleet_state = ""
        self.failover = False
        self.latency_units = 0.0
        self.spans: List[ReqSpan] = []
        self.keep_reasons: List[str] = []

    @property
    def is_error(self) -> bool:
        return self.status not in ("pending", "done")

    def lanes(self) -> List[str]:
        """Distinct lanes touched, in first-touch order."""
        seen: List[str] = []
        for s in self.spans:
            if s.lane not in seen:
                seen.append(s.lane)
        return seen

    def to_json_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "seq": self.seq,
            "kind": self.kind,
            "key": self.key,
            "status": self.status,
            "fleet_state": self.fleet_state,
            "failover": self.failover,
            "start_units": self.start_units,
            "end_units": self.end_units,
            "latency_units": self.latency_units,
            "keep_reasons": list(self.keep_reasons),
            "spans": [s.to_json_dict() for s in self.spans],
        }


@dataclass(frozen=True)
class TailSamplingConfig:
    """Deterministic tail-sampling rules.

    Requests are windowed by submission sequence (``seq // window``).
    Within each window the always-keep rules fire first (errors,
    DEGRADED, failovers), then the ``top_k`` slowest by
    ``latency_units`` (ties broken toward the earlier seq), then a
    seeded hash reservoir keeping ~``reservoir``-of-``window`` of
    everything — all pure functions of the traces, so the kept set is
    identical however the sampler is driven.
    """

    window: int = 32
    top_k: int = 4
    reservoir: int = 4

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.top_k < 0 or self.reservoir < 0:
            raise ValueError("top_k and reservoir must be >= 0")

    def to_json_dict(self) -> dict:
        return {"window": self.window, "top_k": self.top_k,
                "reservoir": self.reservoir}


def select_kept(
    traces: List[RequestTrace],
    config: TailSamplingConfig,
    seed: int,
) -> Dict[str, List[str]]:
    """Apply the tail-sampling rules; ``trace_id -> sorted keep reasons``.

    The single implementation of the keep rules: full-mode documents
    annotate reasons post-hoc with it, sampled-mode documents drop
    whatever it leaves unkept, and the ``ext_fleet_reqtrace`` bench
    asserts both agree.  Pure and order-insensitive — only ``seq``,
    outcome fields and ``latency_units`` of each trace matter.
    """
    windows: Dict[int, List[RequestTrace]] = {}
    for t in traces:
        windows.setdefault(t.seq // config.window, []).append(t)
    reasons: Dict[str, List[str]] = {}

    def add(trace: RequestTrace, reason: str) -> None:
        reasons.setdefault(trace.trace_id, []).append(reason)

    for _, members in sorted(windows.items()):
        for t in members:
            if t.is_error:
                add(t, "error")
            if t.fleet_state == "degraded":
                add(t, "degraded")
            if t.failover:
                add(t, "failover")
            if (_reservoir_hash(seed, t.trace_id) % config.window
                    < config.reservoir):
                add(t, "reservoir")
        ranked = sorted(members, key=lambda t: (-t.latency_units, t.seq))
        for t in ranked[:config.top_k]:
            add(t, "slowest")
    return {tid: sorted(rs) for tid, rs in reasons.items()}


class FlightRecorder:
    """Bounded ring of the last N finished traces, dumped on PAGE.

    :meth:`record` is called for *every* finished trace (sampling never
    thins the ring — the whole point is seeing what was in flight right
    before the page, kept or not); :meth:`dump` snapshots the ring into
    :attr:`dumps`, which the emitted document carries under
    ``"flight"``.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self.dumps: List[dict] = []

    def record(self, trace: RequestTrace) -> None:
        self._ring.append(trace)

    def dump(self, *, reason: str, clock: float) -> dict:
        doc = {
            "reason": reason,
            "at_units": float(clock),
            "traces": [t.to_json_dict() for t in self._ring],
        }
        self.dumps.append(doc)
        return doc

    def to_json_dict(self) -> dict:
        return {"capacity": self.capacity, "dumps": list(self.dumps)}


class RequestTracer:
    """Mints, collects and emits request traces for one run.

    ``mode="full"`` keeps every finished trace (reasons still
    annotated); ``mode="sampled"`` keeps only what :func:`select_kept`
    keeps and counts the rest as dropped.  :meth:`begin` returns a
    :class:`~repro.fleet.tracectx.TraceContext` that the router/server
    thread through tickets; :meth:`finish` seals the outcome.
    """

    enabled = True

    def __init__(
        self,
        *,
        seed: int = 0,
        mode: str = "full",
        sampling: Optional[TailSamplingConfig] = None,
        flight_capacity: int = 16,
    ) -> None:
        if mode not in ("full", "sampled"):
            raise ValueError(f"unknown reqtrace mode {mode!r}")
        self.seed = int(seed)
        self.mode = mode
        self.sampling = sampling or TailSamplingConfig()
        self.flight = FlightRecorder(flight_capacity)
        self._seq = 0
        self._finished: List[RequestTrace] = []
        self._open = 0
        self._health_state = "OK"

    # -- lifecycle ---------------------------------------------------------

    def begin(self, kind: str, key: str, clock: float):
        """Mint a new trace; returns the propagation ``TraceContext``."""
        # Runtime-only import: the context class lives beside the fleet
        # code it threads through, and importing it at module load would
        # invert the fleet -> observability layering.
        from repro.fleet.tracectx import TraceContext

        seq = self._seq
        self._seq += 1
        trace = RequestTrace(
            mint_trace_id(self.seed, seq), seq, kind, key, float(clock))
        self._open += 1
        return TraceContext(self, trace)

    def finish(
        self,
        ctx,
        *,
        status: str,
        clock: float,
        fleet_state: str = "",
        failover: bool = False,
        latency_units: Optional[float] = None,
    ) -> RequestTrace:
        """Seal one trace's outcome and hand it to ring + retention."""
        t = ctx.trace
        t.status = str(status)
        t.fleet_state = str(fleet_state)
        t.failover = bool(failover)
        t.end_units = float(clock)
        t.latency_units = float(
            latency_units if latency_units is not None
            else t.end_units - t.start_units)
        self._open -= 1
        self._finished.append(t)
        self.flight.record(t)
        return t

    def observe_health(self, state: str, clock: float) -> None:
        """Feed the current health state; dump the ring entering PAGE."""
        prev = self._health_state
        self._health_state = state
        if state == "PAGE" and prev != "PAGE":
            self.flight.dump(reason=f"{prev}->PAGE", clock=clock)

    # -- retention ---------------------------------------------------------

    def kept_traces(self) -> List[RequestTrace]:
        """Finished traces surviving the mode's retention, seq order.

        Annotates ``keep_reasons`` on every finished trace as a side
        effect (full mode keeps unmatched traces with no reasons).
        """
        reasons = select_kept(self._finished, self.sampling, self.seed)
        for t in self._finished:
            t.keep_reasons = reasons.get(t.trace_id, [])
        if self.mode == "full":
            kept = list(self._finished)
        else:
            kept = [t for t in self._finished if t.keep_reasons]
        return sorted(kept, key=lambda t: t.seq)

    # -- emission ----------------------------------------------------------

    def to_json_dict(self, **meta) -> dict:
        """The :data:`REQTRACE_SCHEMA` document (byte-deterministic)."""
        kept = self.kept_traces()
        by_reason: Dict[str, int] = {}
        for t in kept:
            for r in t.keep_reasons:
                by_reason[r] = by_reason.get(r, 0) + 1
        return {
            "schema": REQTRACE_SCHEMA,
            "meta": {"seed": self.seed, **meta},
            "sampling": {"mode": self.mode,
                         **self.sampling.to_json_dict()},
            "totals": {
                "requests": len(self._finished),
                "open": self._open,
                "kept": len(kept),
                "dropped": len(self._finished) - len(kept),
                "spans": sum(len(t.spans) for t in kept),
                "by_reason": {r: by_reason[r] for r in sorted(by_reason)},
            },
            "traces": [t.to_json_dict() for t in kept],
            "flight": self.flight.to_json_dict(),
        }

    def to_json(self, *, indent: int | None = 2, **meta) -> str:
        return json.dumps(self.to_json_dict(**meta), indent=indent,
                          sort_keys=True)

    def to_chrome_trace(self, **meta) -> dict:
        """Kept traces as a Chrome trace-event document.

        One lane per distinct span lane (``router`` sorts first, then
        shard ids) under :data:`~repro.observability.profiler.
        PID_FLEET`; per-request flow events stitch the hops.  Validated
        by :func:`~repro.observability.profiler.validate_chrome_trace`.
        """
        kept = self.kept_traces()
        events = chrome_request_events(kept)
        lanes = sorted({s.lane for t in kept for s in t.spans})
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": PROFILE_SCHEMA,
                "num_threads": len(lanes),
                "reqtrace": {"seed": self.seed, "mode": self.mode,
                             "kept": len(kept)},
                **meta,
            },
        }


class NullRequestTracer:
    """Disabled tracer: ``begin`` returns ``None`` and nothing records.

    Call sites guard span recording on ``ctx is not None`` (tickets
    simply carry no trace), so the disabled path costs one attribute
    read per request — the NULL_TRACER/NULL_PROFILER pattern.
    """

    enabled = False
    mode = "off"

    def begin(self, kind: str, key: str, clock: float) -> None:
        return None

    def finish(self, ctx, **kw) -> None:
        return None

    def observe_health(self, state: str, clock: float) -> None:
        return None

    def kept_traces(self) -> list:
        return []

    def to_json_dict(self, **meta) -> dict:
        return {"schema": REQTRACE_SCHEMA, "meta": meta,
                "sampling": {"mode": "off"}, "totals": {}, "traces": [],
                "flight": {"capacity": 0, "dumps": []}}


#: Module-level disabled request tracer; the default everywhere.
NULL_REQTRACE = NullRequestTracer()


# -- Chrome trace-event export -------------------------------------------------


#: Span names rendered as zero-duration markers at their *end* tick in
#: the Chrome view (full interval stays in the JSON document, as a
#: ``wait_units`` arg here).  Waits from concurrent requests overlap
#: freely on a lane — as intervals they would break the proper-nesting
#: contract request lanes promise; as markers at the dequeue moment the
#: lane shows only what the shard is *doing*, and the wait reads as the
#: gap the flow arrow crosses.
_WAIT_SPANS = frozenset({"queue_wait", "coalesce_accept"})


def _chrome_interval(s: ReqSpan) -> Tuple[float, float]:
    """``(ts, dur)`` for one span's Chrome event (wait spans collapse)."""
    if s.name in _WAIT_SPANS:
        return s.end_units, 0.0
    return s.start_units, s.end_units - s.start_units


def chrome_request_events(traces: List[RequestTrace]) -> List[dict]:
    """Request lanes + flow events for ``traces`` (shared emit path).

    Lane tids are assigned by sorted lane name (``router`` < ``shard-0``
    alphabetically, so the router lane leads).  Per lane, spans are
    emitted sorted by ``(start, -end, insertion order)`` so nested spans
    follow their parents — the containment order
    :func:`~repro.observability.profiler.validate_chrome_trace` checks;
    :data:`_WAIT_SPANS` collapse to markers to honour it.  Each
    multi-span request contributes a flow chain (``s`` at its first
    span, ``t`` at the middle hops, ``f`` at the last) with the
    submission ``seq`` as the flow id.
    """
    lanes = sorted({s.lane for t in traces for s in t.spans})
    tid_of = {lane: i for i, lane in enumerate(lanes)}
    events: List[dict] = []
    if lanes:
        events.append({"ph": "M", "name": "process_name", "pid": PID_FLEET,
                       "tid": 0, "args": {"name": "fleet requests"}})
        for lane in lanes:
            events.append({"ph": "M", "name": "thread_name",
                           "pid": PID_FLEET, "tid": tid_of[lane],
                           "args": {"name": lane}})
    per_lane: Dict[str, List[Tuple[float, float, int, RequestTrace,
                                   ReqSpan]]] = {}
    for t in sorted(traces, key=lambda t: t.seq):
        for j, s in enumerate(t.spans):
            ts, dur = _chrome_interval(s)
            per_lane.setdefault(s.lane, []).append((ts, -(ts + dur), j, t, s))
    for lane in lanes:
        for ts, neg_end, _, t, s in sorted(
                per_lane[lane], key=lambda r: (r[0], r[1], r[3].seq, r[2])):
            args: Dict[str, object] = {"trace_id": t.trace_id}
            args.update({k: s.attrs[k] for k in sorted(s.attrs)})
            if s.name in _WAIT_SPANS:
                args["wait_units"] = s.end_units - s.start_units
            if s.link is not None:
                args["link"] = s.link
            events.append({
                "ph": "X", "name": s.name, "cat": "req",
                "pid": PID_FLEET, "tid": tid_of[lane],
                "ts": ts, "dur": -neg_end - ts, "args": args,
            })
    for t in sorted(traces, key=lambda t: t.seq):
        if len(t.spans) < 2:
            continue
        for j, s in enumerate(t.spans):
            ph = "s" if j == 0 else ("f" if j == len(t.spans) - 1 else "t")
            events.append({
                "ph": ph, "name": "req", "cat": "reqflow", "id": t.seq,
                "pid": PID_FLEET, "tid": tid_of[s.lane],
                "ts": _chrome_interval(s)[0],
                "args": {"trace_id": t.trace_id},
            })
    return events


def merge_chrome_trace(profile_doc: dict, tracer: RequestTracer) -> dict:
    """Graft the request lanes onto an existing profiler document.

    Returns a new document whose ``traceEvents`` are the profiler's
    followed by :func:`chrome_request_events` of the tracer's kept
    traces (distinct pid, so lanes never collide), with the reqtrace
    metadata folded into ``otherData`` — one Chrome trace showing the
    solver timeline and the request journeys together.
    """
    kept = tracer.kept_traces()
    events = list(profile_doc["traceEvents"]) + chrome_request_events(kept)
    other = dict(profile_doc.get("otherData", {}))
    other["reqtrace"] = {"seed": tracer.seed, "mode": tracer.mode,
                         "kept": len(kept)}
    out = dict(profile_doc)
    out["traceEvents"] = events
    out["otherData"] = other
    return out


# -- document validation -------------------------------------------------------


def validate_reqtrace(doc: dict) -> Dict[str, int]:
    """Structural + determinism checks for a ``repro.reqtrace/1`` doc.

    Verifies the schema tag, that traces are sorted by unique ``seq``
    with every ``trace_id`` re-derivable from ``meta.seed`` (the
    no-wall-clock contract), span intervals within sane bounds, dedup
    ``link`` targets well-formed, and flight-recorder dumps shaped like
    trace lists.  Raises :class:`ValueError` on the first violation;
    returns ``{"traces": n, "spans": n, "dumps": n}``.
    """
    if not isinstance(doc, dict) or doc.get("schema") != REQTRACE_SCHEMA:
        raise ValueError(
            f"unsupported reqtrace schema {doc.get('schema')!r} "
            f"(expected {REQTRACE_SCHEMA!r})")
    for key in ("meta", "sampling", "totals", "traces", "flight"):
        if key not in doc:
            raise ValueError(f"reqtrace document missing {key!r}")
    seed = doc["meta"].get("seed")
    if not isinstance(seed, int):
        raise ValueError("meta.seed missing or not an integer")

    def check_trace(t: dict, where: str) -> int:
        for key in ("trace_id", "seq", "kind", "key", "status",
                    "start_units", "end_units", "latency_units", "spans"):
            if key not in t:
                raise ValueError(f"{where}: trace missing {key!r}")
        if t["trace_id"] != mint_trace_id(seed, t["seq"]):
            raise ValueError(
                f"{where}: trace_id {t['trace_id']!r} does not match "
                f"blake2b({seed}:{t['seq']})")
        if t["end_units"] < t["start_units"]:
            raise ValueError(f"{where}: trace ends before it starts")
        for j, s in enumerate(t["spans"]):
            for key in ("name", "lane", "start_units", "end_units"):
                if key not in s:
                    raise ValueError(
                        f"{where} span {j}: missing {key!r}")
            if s["end_units"] < s["start_units"]:
                raise ValueError(
                    f"{where} span {j}: ends before it starts")
            link = s.get("link")
            if link is not None and not (
                    isinstance(link, str) and len(link) == 16):
                raise ValueError(
                    f"{where} span {j}: malformed link {link!r}")
        return len(t["spans"])

    spans = 0
    last_seq = -1
    for t in doc["traces"]:
        if t["seq"] <= last_seq:
            raise ValueError(
                f"traces not sorted by unique seq at seq={t['seq']}")
        last_seq = t["seq"]
        spans += check_trace(t, f"trace seq={t['seq']}")
    for d, dump in enumerate(doc["flight"].get("dumps", [])):
        for key in ("reason", "at_units", "traces"):
            if key not in dump:
                raise ValueError(f"flight dump {d}: missing {key!r}")
        for t in dump["traces"]:
            check_trace(t, f"flight dump {d} seq={t.get('seq')}")
    return {"traces": len(doc["traces"]), "spans": spans,
            "dumps": len(doc["flight"].get("dumps", []))}
