"""Deterministic memory ledger: logical allocation events + watermarks.

The observability stack already gives the pipeline a *time* axis (work
ledger, profiler, request traces); this module adds the *memory* axis.
A :class:`MemoryLedger` records logical allocate/resize/free events —
component, phase, dtype, bytes — on its own logical clock (a monotonic
event sequence number, never wall time), maintains live-byte totals and
peak watermarks per component and per phase, and emits a
byte-deterministic schema-versioned ``repro.memory/1`` report plus
Chrome-trace counter lanes that merge into the profiler/reqtrace views.

Determinism contract (the reason the report can be an exact-match CI
baseline):

- the clock is the event count: double runs of the same seed replay the
  same events in the same order, so the document is byte-identical;
- iteration is sorted everywhere (components, phases, live handles) —
  no dict-order or ``PYTHONHASHSEED`` dependence;
- **logical** bytes are width-invariant: a producer that allocates one
  buffer *per worker* (the shm scratch slabs) records one worker's
  share as the logical size and the worker count as ``replicas``.  The
  replica-scaled total is tracked separately in the ``physical``
  section, which is the only part of the report allowed to vary with
  worker/shard count.

Like the tracer/profiler/metrics layers, everything is zero-cost when
disabled: producers default to the shared :data:`NULL_LEDGER` and guard
on ``ledger.enabled``.  Buffer owners that cannot thread a ledger
parameter (``CSRGraph`` construction happens deep inside aggregation)
read the module-level *active* ledger installed by :func:`activate`.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.observability.profiler import PROFILE_SCHEMA

__all__ = [
    "MEMORY_SCHEMA",
    "PID_MEMORY",
    "MemoryLedger",
    "NULL_LEDGER",
    "NullLedger",
    "activate",
    "active_ledger",
    "export_to_metrics",
    "merge_memory_snapshots",
    "record_csr",
    "validate_memory_doc",
]

#: Version tag of the memory report document.
MEMORY_SCHEMA = "repro.memory/1"

#: Chrome-trace process id of the memory counter lanes (the profiler
#: owns pids 0-3; see :mod:`repro.observability.profiler`).
PID_MEMORY = 4

#: Default cap on retained per-event detail.  Accounting (live/peak)
#: continues past the cap; only the event *list* stops growing, and the
#: report carries ``events_dropped`` so truncation is never silent.
DEFAULT_MAX_EVENTS = 65536


class MemoryLedger:
    """Logical allocation ledger with per-component/phase watermarks.

    Producers call :meth:`alloc` when a buffer comes into existence,
    :meth:`resize` when it changes size and :meth:`free` when it is
    released.  ``nbytes`` is the *logical* (width-invariant) size; pass
    ``replicas=W`` for buffers physically duplicated per worker so the
    physical section can account the real footprint without breaking
    the logical report's worker-count invariance.
    """

    enabled = True

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.max_events = int(max_events)
        self._seq = 0
        self._next_handle = 0
        #: handle -> (component, what, phase, nbytes, dtype, replicas)
        self._live: Dict[int, Tuple[str, str, str, int, Optional[str], int]] = {}
        self._live_bytes = 0
        self._peak_bytes = 0
        self._peak_seq = 0
        self._phys_live = 0
        self._phys_peak = 0
        self._comp_live: Dict[str, int] = {}
        self._comp_peak: Dict[str, Tuple[int, int]] = {}
        self._comp_counts: Dict[str, List[int]] = {}  # [allocs, frees, resizes]
        self._phase_live: Dict[str, int] = {}
        self._phase_peak: Dict[str, Tuple[int, int]] = {}
        self._events: List[Tuple] = []
        self._events_dropped = 0
        self._attached_bytes = 0
        self._attach_events = 0

    # -- clock -------------------------------------------------------------

    @property
    def clock(self) -> int:
        """Logical clock: number of recorded events so far."""
        return self._seq

    # -- recording ---------------------------------------------------------

    def _record(self, kind: str, handle: int, component: str, what: str,
                phase: str, nbytes: int, dtype: Optional[str],
                replicas: int) -> None:
        self._seq += 1
        if len(self._events) < self.max_events:
            self._events.append(
                (self._seq, kind, handle, component, what, phase,
                 nbytes, dtype, replicas))
        else:
            self._events_dropped += 1

    def _apply(self, component: str, phase: str, delta: int,
               replicas: int) -> None:
        self._live_bytes += delta
        if self._live_bytes > self._peak_bytes:
            self._peak_bytes = self._live_bytes
            self._peak_seq = self._seq
        self._phys_live += delta * replicas
        if self._phys_live > self._phys_peak:
            self._phys_peak = self._phys_live
        live = self._comp_live.get(component, 0) + delta
        self._comp_live[component] = live
        peak, _ = self._comp_peak.get(component, (0, 0))
        if live > peak:
            self._comp_peak[component] = (live, self._seq)
        elif component not in self._comp_peak:
            self._comp_peak[component] = (max(live, 0), self._seq)
        plive = self._phase_live.get(phase, 0) + delta
        self._phase_live[phase] = plive
        ppeak, _ = self._phase_peak.get(phase, (0, 0))
        if plive > ppeak:
            self._phase_peak[phase] = (plive, self._seq)
        elif phase not in self._phase_peak:
            self._phase_peak[phase] = (max(plive, 0), self._seq)

    def alloc(self, component: str, what: str, nbytes: int, *,
              phase: str = "other", dtype: Optional[str] = None,
              replicas: int = 1) -> int:
        """Record a logical allocation; returns a handle for free/resize."""
        nbytes = int(nbytes)
        replicas = int(replicas)
        handle = self._next_handle
        self._next_handle += 1
        self._record("alloc", handle, component, what, phase, nbytes,
                     dtype, replicas)
        self._live[handle] = (component, what, phase, nbytes, dtype, replicas)
        self._counts(component)[0] += 1
        self._apply(component, phase, nbytes, replicas)
        return handle

    def resize(self, handle: int, nbytes: int) -> None:
        """Record a size change of a live allocation."""
        entry = self._live.get(handle)
        if entry is None:
            return
        component, what, phase, old, dtype, replicas = entry
        nbytes = int(nbytes)
        self._record("resize", handle, component, what, phase, nbytes,
                     dtype, replicas)
        self._live[handle] = (component, what, phase, nbytes, dtype, replicas)
        self._counts(component)[2] += 1
        self._apply(component, phase, nbytes - old, replicas)

    def free(self, handle: int) -> None:
        """Record the release of a live allocation; idempotent."""
        entry = self._live.pop(handle, None)
        if entry is None:
            return
        component, what, phase, nbytes, dtype, replicas = entry
        self._record("free", handle, component, what, phase, nbytes,
                     dtype, replicas)
        self._counts(component)[1] += 1
        self._apply(component, phase, -nbytes, replicas)

    def attach(self, component: str, what: str, nbytes: int, *,
               replicas: int = 1) -> None:
        """Record a *mapping* of already-counted memory (physical only).

        Worker processes attaching a shared arena do not allocate new
        logical state — the owner's :meth:`alloc` already counted it —
        but each attach maps real pages.  Attaches accumulate in the
        physical section and never touch the logical accounting, so the
        logical report stays worker-count-invariant.
        """
        self._attached_bytes += int(nbytes) * int(replicas)
        self._attach_events += 1

    def _counts(self, component: str) -> List[int]:
        counts = self._comp_counts.get(component)
        if counts is None:
            counts = [0, 0, 0]
            self._comp_counts[component] = counts
        return counts

    # -- queries -----------------------------------------------------------

    def live_bytes(self, component: Optional[str] = None) -> int:
        if component is None:
            return self._live_bytes
        return self._comp_live.get(component, 0)

    def peak_bytes(self, component: Optional[str] = None) -> int:
        if component is None:
            return self._peak_bytes
        return self._comp_peak.get(component, (0, 0))[0]

    def phase_peak_bytes(self, phase: str) -> int:
        return self._phase_peak.get(phase, (0, 0))[0]

    def live_allocations(self) -> List[dict]:
        """Live allocations as JSON-ready dicts, sorted by handle."""
        out = []
        for handle in sorted(self._live):
            component, what, phase, nbytes, dtype, replicas = \
                self._live[handle]
            rec = {
                "handle": handle,
                "component": component,
                "what": what,
                "phase": phase,
                "nbytes": nbytes,
            }
            if dtype is not None:
                rec["dtype"] = dtype
            if replicas != 1:
                rec["replicas"] = replicas
            out.append(rec)
        return out

    def allocation_trace(self, *, limit: Optional[int] = None) -> List[str]:
        """Human-readable live-allocation lines, largest first.

        Ties break on handle order (allocation order), so the trace is
        deterministic.  This is what a simulated device OOM attaches to
        its exception: *what* filled the budget, by component and phase.
        """
        live = self.live_allocations()
        live.sort(key=lambda r: (-r["nbytes"], r["handle"]))
        if limit is not None:
            live = live[:limit]
        return [
            f"{r['component']}/{r['what']} phase={r['phase']} "
            f"{r['nbytes']} B"
            + (f" x{r['replicas']}" if r.get("replicas") else "")
            for r in live
        ]

    # -- export ------------------------------------------------------------

    def to_snapshot(self, **meta) -> dict:
        """The ``repro.memory/1`` report document (JSON-ready).

        The ``logical`` section is deterministic *and* invariant to
        worker/shard count; ``physical`` (replica-scaled live/peak plus
        attach totals) may legitimately vary with width.  No wall-clock
        fields anywhere.
        """
        components = {}
        for comp in sorted(set(self._comp_live) | set(self._comp_counts)):
            peak, peak_seq = self._comp_peak.get(comp, (0, 0))
            allocs, frees, resizes = self._comp_counts.get(comp, (0, 0, 0))
            components[comp] = {
                "live_bytes": self._comp_live.get(comp, 0),
                "peak_bytes": peak,
                "peak_seq": peak_seq,
                "allocs": allocs,
                "frees": frees,
                "resizes": resizes,
            }
        phases = {}
        for phase in sorted(self._phase_live):
            peak, peak_seq = self._phase_peak.get(phase, (0, 0))
            phases[phase] = {
                "live_bytes": self._phase_live.get(phase, 0),
                "peak_bytes": peak,
                "peak_seq": peak_seq,
            }
        events = [
            {
                "seq": seq, "kind": kind, "handle": handle,
                "component": component, "what": what, "phase": phase,
                "nbytes": nbytes,
                **({"dtype": dtype} if dtype is not None else {}),
                **({"replicas": replicas} if replicas != 1 else {}),
            }
            for (seq, kind, handle, component, what, phase,
                 nbytes, dtype, replicas) in self._events
        ]
        return {
            "schema": MEMORY_SCHEMA,
            "meta": dict(meta),
            "logical": {
                "clock": self._seq,
                "live_bytes": self._live_bytes,
                "peak_bytes": self._peak_bytes,
                "peak_seq": self._peak_seq,
                "components": components,
                "phases": phases,
                "events_dropped": self._events_dropped,
            },
            "physical": {
                "live_bytes": self._phys_live,
                "peak_bytes": self._phys_peak,
                "attached_bytes": self._attached_bytes,
                "attach_events": self._attach_events,
            },
            "events": events,
        }

    def to_json(self, *, indent: Optional[int] = 2, **meta) -> str:
        return json.dumps(self.to_snapshot(**meta), indent=indent,
                          sort_keys=True)

    # -- Chrome trace view -------------------------------------------------

    def chrome_events(self, *, pid: int = PID_MEMORY) -> List[dict]:
        """Counter ("C") events replaying the ledger, one per event.

        ``ts`` is the ledger's logical clock (the event sequence
        number); each counter sample carries the per-component live
        bytes *after* the event, so the lane renders as a stacked
        live-bytes area chart in Perfetto.  Deterministic: component
        keys are sorted and every component seen so far is present in
        every sample (absent = 0) so the series never re-orders.
        """
        if not self._events:
            return []
        events: List[dict] = [
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": "memory ledger (logical bytes)"}},
            {"ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
             "args": {"name": "live bytes"}},
        ]
        comps = sorted({ev[3] for ev in self._events})
        running = {c: 0 for c in comps}
        sizes: Dict[int, int] = {}
        for (seq, kind, handle, component, _what, _phase,
             nbytes, _dtype, _replicas) in self._events:
            if kind == "alloc":
                running[component] += nbytes
                sizes[handle] = nbytes
            elif kind == "free":
                running[component] -= nbytes
                sizes.pop(handle, None)
            else:  # resize: nbytes is the new size, delta = new - old
                running[component] += nbytes - sizes.get(handle, nbytes)
                sizes[handle] = nbytes
            events.append({
                "ph": "C", "name": "mem_live_bytes", "cat": "memory",
                "pid": pid, "tid": 0, "ts": float(seq),
                "args": {c: running[c] for c in comps},
            })
        return events

    def to_chrome_trace(self, **meta) -> dict:
        """A standalone Chrome trace document of the memory lanes.

        Tagged with the profiler's schema so the existing
        ``validate_chrome_trace`` accepts it (counter events carry no
        durations, so the lane contracts hold trivially).
        """
        events = self.chrome_events()
        if not events:
            events = [
                {"ph": "M", "name": "process_name", "pid": PID_MEMORY,
                 "tid": 0, "args": {"name": "memory ledger (empty)"}},
                {"ph": "M", "name": "thread_name", "pid": PID_MEMORY,
                 "tid": 0, "args": {"name": "live bytes"}},
                {"ph": "C", "name": "mem_live_bytes", "cat": "memory",
                 "pid": PID_MEMORY, "tid": 0, "ts": 0.0, "args": {}},
            ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": PROFILE_SCHEMA,
                "view": "memory",
                "num_threads": 1,
                **meta,
            },
        }

    def merge_into_chrome(self, doc: dict) -> dict:
        """Append the memory counter lanes to an existing Chrome doc.

        Used by ``repro profile --mem`` (and the serve/fleet Chrome
        views) to put the memory axis next to the time axis in one
        Perfetto load.  Mutates and returns ``doc``.
        """
        doc["traceEvents"] = list(doc.get("traceEvents", ()))
        doc["traceEvents"].extend(self.chrome_events())
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MemoryLedger(clock={self._seq}, "
                f"live={self._live_bytes}B, peak={self._peak_bytes}B)")


class NullLedger:
    """Disabled ledger: every operation is a no-op (zero cost)."""

    enabled = False
    clock = 0

    def alloc(self, component, what, nbytes, *, phase="other",
              dtype=None, replicas=1) -> int:
        return -1

    def resize(self, handle, nbytes) -> None:
        return None

    def free(self, handle) -> None:
        return None

    def attach(self, component, what, nbytes, *, replicas=1) -> None:
        return None

    def live_bytes(self, component=None) -> int:
        return 0

    def peak_bytes(self, component=None) -> int:
        return 0

    def phase_peak_bytes(self, phase) -> int:
        return 0

    def live_allocations(self) -> List[dict]:
        return []

    def allocation_trace(self, *, limit=None) -> List[str]:
        return []

    def chrome_events(self, *, pid: int = PID_MEMORY) -> List[dict]:
        return []


#: Module-level disabled ledger; the default for every producer.
NULL_LEDGER = NullLedger()

#: The active ledger read by buffer owners that cannot thread a
#: parameter (CSR construction inside aggregation).  Installed by
#: :func:`activate`; defaults to the disabled ledger.
_ACTIVE = NULL_LEDGER

#: Phase attributed to active-ledger allocations; pushed by the pass
#: driver around each phase (:func:`phase_scope`).
_ACTIVE_PHASE = "other"


def active_ledger():
    """The currently installed ledger (``NULL_LEDGER`` when none)."""
    return _ACTIVE


def active_phase() -> str:
    """The phase attributed to active-ledger allocations right now."""
    return _ACTIVE_PHASE


@contextmanager
def activate(ledger):
    """Install ``ledger`` as the module-level active ledger.

    Re-entrant: nested activations restore the previous ledger on exit,
    so a caller-held ledger survives an inner ``leiden`` run activating
    the runtime's own (usually the same object).
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ledger if ledger is not None else NULL_LEDGER
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


@contextmanager
def phase_scope(phase: str):
    """Attribute active-ledger allocations inside the block to ``phase``."""
    global _ACTIVE_PHASE
    previous = _ACTIVE_PHASE
    _ACTIVE_PHASE = phase
    try:
        yield
    finally:
        _ACTIVE_PHASE = previous


def record_csr(ledger, graph, *, component: str = "csr",
               phase: str = "other") -> List[int]:
    """Record a pre-built CSR graph's arrays into ``ledger``.

    Graph loads are memoized (:func:`repro.datasets.registry.load_graph`),
    so a cached graph's construction-time allocation events may predate
    the ledger.  Measurement entry points call this to charge the input
    graph explicitly; returns the handles (empty when disabled).
    """
    if not getattr(ledger, "enabled", False):
        return []
    return [
        ledger.alloc(component, what, arr.nbytes, phase=phase,
                     dtype=str(arr.dtype))
        for what, arr in (("offsets", graph.offsets),
                          ("targets", graph.targets),
                          ("weights", graph.weights),
                          ("degrees", graph.degrees))
    ]


# -- metrics bridge ------------------------------------------------------------


def export_to_metrics(ledger, registry) -> None:
    """Mirror the ledger's totals into ``mem_*`` registry instruments.

    Called once before a metrics snapshot (not per event — the ledger
    stays cheap); gauges are set from sorted component iteration so the
    resulting snapshot is byte-deterministic.
    """
    if not (getattr(ledger, "enabled", False) and registry.enabled):
        return
    g_live = registry.gauge(
        "mem_live_bytes", "logical live bytes, by component",
        ("component",))
    g_peak = registry.gauge(
        "mem_peak_bytes", "logical peak bytes, by component",
        ("component",))
    for comp in sorted({*ledger.to_snapshot()["logical"]["components"]}):
        g_live.labels(comp).set(float(ledger.live_bytes(comp)))
        g_peak.labels(comp).set(float(ledger.peak_bytes(comp)))
    registry.gauge(
        "mem_live_bytes_total", "logical live bytes, all components",
    ).set(float(ledger.live_bytes()))
    registry.gauge(
        "mem_peak_bytes_total", "logical peak bytes, all components",
    ).set(float(ledger.peak_bytes()))


# -- fleet merging -------------------------------------------------------------


def merge_memory_snapshots(shards: Dict[str, dict], **meta) -> dict:
    """Merge per-shard ``repro.memory/1`` docs into one fleet document.

    Logical live/peak bytes are *summed* across shards per component and
    per phase (the sum of per-shard peaks upper-bounds the true
    fleet-wide peak; exact joint peaks would need a global clock the
    shards deliberately do not share).  Shard iteration is sorted, so
    the merged document is byte-deterministic.
    """
    components: Dict[str, Dict[str, int]] = {}
    phases: Dict[str, Dict[str, int]] = {}
    totals = {"clock": 0, "live_bytes": 0, "peak_bytes": 0}
    physical = {"live_bytes": 0, "peak_bytes": 0,
                "attached_bytes": 0, "attach_events": 0}
    shard_docs = {}
    for name in sorted(shards):
        doc = shards[name]
        logical = doc["logical"]
        totals["clock"] += logical["clock"]
        totals["live_bytes"] += logical["live_bytes"]
        totals["peak_bytes"] += logical["peak_bytes"]
        for key in physical:
            physical[key] += doc.get("physical", {}).get(key, 0)
        for comp, stats in logical["components"].items():
            agg = components.setdefault(
                comp, {"live_bytes": 0, "peak_bytes": 0, "allocs": 0,
                       "frees": 0, "resizes": 0})
            for key in agg:
                agg[key] += stats.get(key, 0)
        for phase, stats in logical["phases"].items():
            agg = phases.setdefault(
                phase, {"live_bytes": 0, "peak_bytes": 0})
            for key in agg:
                agg[key] += stats.get(key, 0)
        shard_docs[name] = logical
    return {
        "schema": MEMORY_SCHEMA,
        "meta": {**meta, "merged_shards": len(shard_docs)},
        "logical": {
            **totals,
            "components": {c: components[c] for c in sorted(components)},
            "phases": {p: phases[p] for p in sorted(phases)},
        },
        "physical": physical,
        "shards": shard_docs,
    }


# -- validation ----------------------------------------------------------------


def validate_memory_doc(doc: dict) -> Dict[str, object]:
    """Structural validation of a ``repro.memory/1`` document.

    Checks the schema tag, required sections, non-negative byte counts
    and — when the full event list is present — that replaying the
    events reproduces the live/peak totals exactly.  Returns summary
    statistics; raises ``ValueError`` on the first violation.
    """
    if not isinstance(doc, dict):
        raise ValueError("memory document must be a JSON object")
    if doc.get("schema") != MEMORY_SCHEMA:
        raise ValueError(
            f"unsupported memory schema {doc.get('schema')!r} "
            f"(expected {MEMORY_SCHEMA!r})")
    for key in ("logical",):
        if key not in doc:
            raise ValueError(f"memory document missing {key!r}")
    logical = doc["logical"]
    for key in ("clock", "live_bytes", "peak_bytes", "components",
                "phases"):
        if key not in logical:
            raise ValueError(f"logical section missing {key!r}")
    if logical["peak_bytes"] < logical["live_bytes"] and \
            logical["live_bytes"] > 0:
        raise ValueError("peak_bytes below live_bytes")
    for comp, stats in logical["components"].items():
        if stats["peak_bytes"] < 0:
            raise ValueError(f"component {comp!r} has negative peak")
    events = doc.get("events")
    replayed = None
    if events and not logical.get("events_dropped"):
        live = 0
        peak = 0
        sizes: Dict[int, int] = {}
        for ev in events:
            if ev["kind"] == "alloc":
                live += ev["nbytes"]
                sizes[ev["handle"]] = ev["nbytes"]
            elif ev["kind"] == "free":
                live -= ev["nbytes"]
                sizes.pop(ev["handle"], None)
            else:
                live += ev["nbytes"] - sizes.get(ev["handle"], ev["nbytes"])
                sizes[ev["handle"]] = ev["nbytes"]
            peak = max(peak, live)
        if live != logical["live_bytes"]:
            raise ValueError(
                f"event replay live {live} != reported "
                f"{logical['live_bytes']}")
        if peak != logical["peak_bytes"]:
            raise ValueError(
                f"event replay peak {peak} != reported "
                f"{logical['peak_bytes']}")
        replayed = len(events)
    return {
        "clock": logical["clock"],
        "live_bytes": logical["live_bytes"],
        "peak_bytes": logical["peak_bytes"],
        "components": len(logical["components"]),
        "phases": len(logical["phases"]),
        "events_replayed": replayed,
    }
