"""Performance baselines and the ``repro bench --check`` regression gate.

A *baseline* pins the expected outcome of one smoke experiment — one
(graph, config, seed) triple — as a JSON file under
``benchmarks/baselines/``.  Four metrics are compared:

- ``wall_seconds`` — Python wall clock (noisy across machines, so the
  committed baselines carry a generous threshold);
- ``modeled_seconds`` — simulated-clock cost on the paper machine at the
  baseline's thread count (deterministic: counted work through the
  machine model, so the threshold is tight);
- ``total_work`` — raw work units recorded by the ledger (deterministic);
- ``modularity`` — solution quality (deterministic given the seed; gated
  on *drops* only).

``run_check`` re-runs every committed baseline and exits non-zero when
any metric regresses past its threshold, printing a readable diff — the
artifact CI gates on.  ``record_baselines`` refreshes the files after an
intentional perf or quality change (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro._version import __version__
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.datasets.registry import load_graph
from repro.metrics.modularity import modularity
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    Tracer,
)
from repro.parallel.costmodel import PAPER_MACHINE
from repro.parallel.runtime import Runtime

__all__ = [
    "BASELINE_SCHEMA",
    "FLEET_BASELINE_SCHEMA",
    "MEMORY_BASELINE_SCHEMA",
    "METRICS_BASELINE_SCHEMA",
    "REORDER_BASELINE_SCHEMA",
    "REQTRACE_BASELINE_SCHEMA",
    "SERVICE_BASELINE_SCHEMA",
    "Baseline",
    "FleetBaseline",
    "MemoryBaseline",
    "ReqtraceBaseline",
    "MetricCheck",
    "MetricsBaseline",
    "ReorderBaseline",
    "RunMetrics",
    "ServiceBaseline",
    "Thresholds",
    "collect_leiden_metrics",
    "compare_metrics",
    "compare_service_docs",
    "default_baseline_dir",
    "diff_trace_docs",
    "format_checks",
    "format_trace_diff",
    "measure_experiment",
    "measure_fleet",
    "measure_memory",
    "measure_metrics",
    "measure_reorder",
    "measure_reqtrace",
    "measure_service",
    "measure_service_metrics",
    "migrate_trace",
    "record_baselines",
    "record_fleet_baselines",
    "record_memory_baselines",
    "record_metrics_baselines",
    "record_reorder_baselines",
    "record_reqtrace_baselines",
    "record_service_baselines",
    "run_check",
    "run_profile",
    "run_trace",
]

#: Version tag embedded in every baseline file.
BASELINE_SCHEMA = "repro.baseline/1"

#: Version tag of the service-workload baseline files.  Unlike the perf
#: baselines, these gate on *exact* equality: the workload stats document
#: carries no wall-clock fields, so any byte of drift is a real
#: behavioural change in the serving subsystem.
SERVICE_BASELINE_SCHEMA = "repro.service-baseline/1"

#: Version tag of the metrics-snapshot baseline files.  Metrics snapshots
#: contain no wall-clock fields, so these also gate on exact equality.
METRICS_BASELINE_SCHEMA = "repro.metrics-baseline/1"

#: Version tag of the reorder-locality baseline file.  The document
#: holds modelled cache-line counts, modelled per-phase seconds,
#: atomics and exact modularities for the original/scrambled/relabeled
#: layouts of the largest registry graphs — all counting passes, no
#: wall clock — so it too gates on exact equality.
REORDER_BASELINE_SCHEMA = "repro.reorder-baseline/1"

#: Version tag of the fleet-load baseline files.  The document holds
#: the full 1-shard vs 4-shard A/B (stats, fan-out digests, invariance
#: verdict) on logical clocks only, so it gates on exact equality.
FLEET_BASELINE_SCHEMA = "repro.fleet-baseline/1"

#: Version tag of the reqtrace-sampling baseline files.  The document
#: holds the sampled-vs-full A/B of the request tracer (kept-set
#: digests, deterministic-keep width invariance, flight-dump counts)
#: on logical clocks only, so it gates on exact equality.
REQTRACE_BASELINE_SCHEMA = "repro.reqtrace-baseline/1"

#: Version tag of the memory-ledger baseline files.  The document is a
#: full ``repro.memory/1`` report of one single-thread detection run —
#: logical clock, per-component/per-phase watermarks and the complete
#: event list, no wall-clock fields — so it gates on exact equality:
#: any drift is a real change in what the pipeline allocates.
MEMORY_BASELINE_SCHEMA = "repro.memory-baseline/1"

#: Version tag of the multi-experiment bundle written by ``bench --trace``.
TRACE_BUNDLE_SCHEMA = "repro.trace-bundle/1"

#: Version tag of the profile bundle written by ``bench --profile``.
PROFILE_BUNDLE_SCHEMA = "repro.profile-bundle/1"

#: Smoke-experiment graphs the committed baselines cover: one road
#: network (sparse, many passes), one web graph, one social network —
#: small enough for CI, diverse enough to exercise every phase.
DEFAULT_BASELINE_GRAPHS = ("asia_osm", "uk-2002", "com-Orkut")


def default_baseline_dir() -> Path:
    """``benchmarks/baselines`` relative to the repo root (or cwd)."""
    cwd = Path.cwd() / "benchmarks" / "baselines"
    if cwd.is_dir():
        return cwd
    return Path(__file__).resolve().parents[3] / "benchmarks" / "baselines"


@dataclass(frozen=True)
class Thresholds:
    """Maximum tolerated relative change per metric.

    ``wall_seconds``/``modeled_seconds``/``total_work`` gate on relative
    *increases*; ``modularity_drop`` gates on a relative *decrease* of
    solution quality.  The committed baseline files override the wall
    threshold generously (hardware varies across CI runners) and rely on
    the deterministic modelled metrics for the tight gate.
    """

    wall_seconds: float = 0.15
    modeled_seconds: float = 0.10
    total_work: float = 0.10
    modularity_drop: float = 0.02

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Optional[dict]) -> "Thresholds":
        if not d:
            return cls()
        return replace(cls(), **{k: float(v) for k, v in d.items()})


#: Thresholds written into the committed baseline files.  The wall-clock
#: gate is deliberately loose — CI runners differ from the recording
#: machine — while the deterministic metrics (modelled seconds, work
#: units, modularity) carry the tight gate.
COMMITTED_THRESHOLDS = Thresholds(
    wall_seconds=1.0,
    modeled_seconds=0.05,
    total_work=0.05,
    modularity_drop=0.02,
)


@dataclass(frozen=True)
class RunMetrics:
    """The gated metrics of one experiment execution."""

    wall_seconds: float
    modeled_seconds: float
    total_work: float
    modularity: float
    num_passes: int
    num_communities: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "RunMetrics":
        return cls(
            wall_seconds=float(d["wall_seconds"]),
            modeled_seconds=float(d["modeled_seconds"]),
            total_work=float(d["total_work"]),
            modularity=float(d["modularity"]),
            num_passes=int(d["num_passes"]),
            num_communities=int(d["num_communities"]),
        )


@dataclass(frozen=True)
class Baseline:
    """One committed smoke experiment: inputs, expectations, tolerances."""

    name: str
    graph: str
    seed: int
    num_threads: int
    config: Dict[str, object] = field(default_factory=dict)
    metrics: RunMetrics = None  # type: ignore[assignment]
    thresholds: Thresholds = field(default_factory=Thresholds)

    def to_dict(self) -> dict:
        return {
            "schema": BASELINE_SCHEMA,
            "name": self.name,
            "graph": self.graph,
            "seed": self.seed,
            "num_threads": self.num_threads,
            "config": dict(self.config),
            "metrics": self.metrics.to_dict(),
            "thresholds": self.thresholds.to_dict(),
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Baseline":
        schema = d.get("schema")
        if schema != BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported baseline schema {schema!r} "
                f"(expected {BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            graph=str(d["graph"]),
            seed=int(d["seed"]),
            num_threads=int(d["num_threads"]),
            config=dict(d.get("config", {})),
            metrics=RunMetrics.from_dict(d["metrics"]),
            thresholds=Thresholds.from_dict(d.get("thresholds")),
        )

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_experiment(
    graph_name: str,
    *,
    seed: int = 42,
    num_threads: int = 64,
    config: Optional[dict] = None,
    tracer: Optional[Tracer] = None,
    profiler=None,
) -> Tuple[RunMetrics, LeidenResult]:
    """Run one smoke experiment and collect its gated metrics.

    ``num_threads`` selects the thread count the *modelled* runtime is
    evaluated at (the execution itself is the deterministic simulated
    runtime).  Pass a :class:`Tracer` to also capture the span tree, a
    :class:`~repro.observability.profiler.Profiler` to capture the
    thread-timeline event log.
    """
    graph = load_graph(graph_name)
    cfg = LeidenConfig(**{"seed": seed, **(config or {})})
    rt = Runtime(num_threads=1, seed=cfg.seed, tracer=tracer or NULL_TRACER,
                 profiler=profiler)
    t0 = time.perf_counter()
    result = leiden(graph, cfg, runtime=rt)
    wall = time.perf_counter() - t0
    sim = result.ledger.simulate(PAPER_MACHINE, num_threads)
    metrics = RunMetrics(
        wall_seconds=wall,
        modeled_seconds=sim.seconds,
        total_work=result.ledger.total_work,
        modularity=modularity(graph, result.membership),
        num_passes=result.num_passes,
        num_communities=result.num_communities,
    )
    return metrics, result


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of one metric comparison against its baseline."""

    metric: str
    baseline: float
    current: float
    #: Relative change, signed so that positive means "worse".
    regression: float
    threshold: float
    ok: bool

    def describe(self) -> str:
        arrow = "OK " if self.ok else "REG"
        return (
            f"  [{arrow}] {self.metric:<16} "
            f"baseline={self.baseline:.6g}  current={self.current:.6g}  "
            f"change={self.regression:+.1%} (limit {self.threshold:+.0%})"
        )


def compare_metrics(
    baseline: Baseline,
    current: RunMetrics,
    *,
    thresholds: Optional[Thresholds] = None,
) -> List[MetricCheck]:
    """Compare a fresh run against a baseline; one check per gated metric.

    ``thresholds`` overrides the baseline's own tolerances (used by tests
    and by callers that want a uniformly stricter gate).
    """
    th = thresholds or baseline.thresholds
    checks: List[MetricCheck] = []
    for metric, limit in (
        ("wall_seconds", th.wall_seconds),
        ("modeled_seconds", th.modeled_seconds),
        ("total_work", th.total_work),
    ):
        base = getattr(baseline.metrics, metric)
        cur = getattr(current, metric)
        reg = (cur - base) / base if base > 0 else 0.0
        checks.append(MetricCheck(metric, base, cur, reg, limit, reg <= limit))
    base_q = baseline.metrics.modularity
    cur_q = current.modularity
    drop = (base_q - cur_q) / abs(base_q) if base_q != 0 else 0.0
    checks.append(
        MetricCheck("modularity", base_q, cur_q, drop, th.modularity_drop,
                    drop <= th.modularity_drop)
    )
    return checks


def format_checks(name: str, checks: Sequence[MetricCheck]) -> str:
    """Readable per-experiment diff, one line per metric."""
    ok = all(c.ok for c in checks)
    head = f"{'PASS' if ok else 'FAIL'} {name}"
    return "\n".join([head] + [c.describe() for c in checks])


def record_baselines(
    directory: Path | str,
    graphs: Sequence[str] = DEFAULT_BASELINE_GRAPHS,
    *,
    seed: int = 42,
    num_threads: int = 64,
    thresholds: Optional[Thresholds] = None,
) -> List[Baseline]:
    """(Re)write one baseline file per graph; returns the new baselines."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[Baseline] = []
    for graph_name in graphs:
        metrics, _ = measure_experiment(
            graph_name, seed=seed, num_threads=num_threads
        )
        baseline = Baseline(
            name=graph_name,
            graph=graph_name,
            seed=seed,
            num_threads=num_threads,
            config={},
            metrics=metrics,
            thresholds=thresholds or COMMITTED_THRESHOLDS,
        )
        baseline.save(directory / f"{graph_name}.json")
        out.append(baseline)
    return out


# -- service-workload baselines (exact-match gate) ---------------------------


@dataclass(frozen=True)
class ServiceBaseline:
    """One committed service workload: profile, seed, exact expectations.

    ``expected`` is the full deterministic workload result document
    (:meth:`repro.service.workload.WorkloadResult.to_json_dict`).  The
    gate is exact equality — see :data:`SERVICE_BASELINE_SCHEMA`.
    """

    name: str
    profile: str
    seed: int
    expected: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": SERVICE_BASELINE_SCHEMA,
            "name": self.name,
            "profile": self.profile,
            "seed": self.seed,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ServiceBaseline":
        schema = d.get("schema")
        if schema != SERVICE_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported service baseline schema {schema!r} "
                f"(expected {SERVICE_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            profile=str(d["profile"]),
            seed=int(d["seed"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "ServiceBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_service(profile: str = "quick", *, seed: int = 0) -> dict:
    """Run one service workload; returns its deterministic JSON document."""
    from repro.service.workload import run_workload

    return run_workload(profile, seed=seed).to_json_dict()


def compare_service_docs(
    expected, actual, prefix: str = ""
) -> List[Tuple[str, object, object]]:
    """Recursive exact diff of two JSON documents.

    Returns ``(path, expected, actual)`` triples for every leaf that
    differs (missing keys surface as ``None`` on the absent side).
    """
    diffs: List[Tuple[str, object, object]] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for k in sorted(set(expected) | set(actual)):
            diffs.extend(compare_service_docs(
                expected.get(k), actual.get(k),
                f"{prefix}.{k}" if prefix else str(k)))
    elif isinstance(expected, list) and isinstance(actual, list) \
            and len(expected) == len(actual):
        for i, (e, a) in enumerate(zip(expected, actual)):
            diffs.extend(compare_service_docs(e, a, f"{prefix}[{i}]"))
    elif expected != actual:
        diffs.append((prefix, expected, actual))
    return diffs


def record_service_baselines(
    directory: Path | str,
    profiles: Sequence[str] = ("quick",),
    *,
    seed: int = 0,
) -> List[ServiceBaseline]:
    """(Re)write one service baseline file per profile."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[ServiceBaseline] = []
    for profile in profiles:
        baseline = ServiceBaseline(
            name=f"service_{profile}",
            profile=profile,
            seed=seed,
            expected=measure_service(profile, seed=seed),
        )
        baseline.save(directory / f"service_{profile}.json")
        out.append(baseline)
    return out


def _check_service_baseline(baseline: ServiceBaseline, print_fn) -> bool:
    current = measure_service(baseline.profile, seed=baseline.seed)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, profile={baseline.profile}, "
             f"seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


# -- metrics-snapshot baselines (exact-match gate) ---------------------------


@dataclass(frozen=True)
class MetricsBaseline:
    """One committed metrics snapshot: what, seed, exact expectations.

    ``kind`` selects the producer: ``"leiden"`` snapshots an instrumented
    detection run on registry graph ``target``; ``"service"`` snapshots
    an instrumented workload of profile ``target`` (with the stock SLO
    evaluator attached).  The gate is exact equality — snapshots carry no
    wall-clock fields, so any drift is a real behavioural change.
    """

    name: str
    kind: str
    target: str
    seed: int
    expected: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": METRICS_BASELINE_SCHEMA,
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "seed": self.seed,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsBaseline":
        schema = d.get("schema")
        if schema != METRICS_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported metrics baseline schema {schema!r} "
                f"(expected {METRICS_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            kind=str(d["kind"]),
            target=str(d["target"]),
            seed=int(d["seed"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "MetricsBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def collect_leiden_metrics(
    graph,
    config: Optional[LeidenConfig] = None,
    *,
    seed: int = 42,
    num_threads: int = 1,
    executor: str = "serial",
):
    """One detection run with metrics + tracing attached.

    Returns ``(registry, tracer, result)``.  The tracer's observation
    histograms (batch sizes, color-class sizes — all deterministic
    counts) are re-exported into the registry as ``trace_*`` histograms,
    so ``repro metrics`` reports the same p50/p99 as ``repro trace``.

    ``num_threads``/``executor`` size the runtime — pass
    ``executor="process"`` for the process engine so its worker pool
    (reaped here before returning) matches the requested width.
    """
    from repro.observability.metrics import MetricsRegistry

    cfg = config or LeidenConfig(seed=seed)
    registry = MetricsRegistry()
    tracer = Tracer()
    rt = Runtime(num_threads=num_threads, executor=executor,
                 seed=cfg.seed, tracer=tracer, metrics=registry)
    try:
        result = leiden(graph, cfg, runtime=rt)
    finally:
        rt.close()
    registry.merge_tracer(tracer)
    return registry, tracer, result


def measure_metrics(
    graph_name: str,
    *,
    seed: int = 42,
    config: Optional[LeidenConfig] = None,
) -> dict:
    """Deterministic ``repro.metrics/1`` snapshot of one detection run."""
    graph = load_graph(graph_name)
    cfg = config or LeidenConfig(seed=seed)
    registry, _tracer, result = collect_leiden_metrics(graph, cfg, seed=seed)
    q = modularity(graph, result.membership)
    return registry.to_snapshot(
        experiment=graph_name,
        seed=cfg.seed,
        modularity=q,
        num_passes=result.num_passes,
        num_communities=result.num_communities,
        total_work=result.ledger.total_work,
    )


def measure_service_metrics(profile: str = "quick", *, seed: int = 0) -> dict:
    """Deterministic metrics + health snapshot of one service workload.

    The server runs with a :class:`~repro.observability.metrics.
    MetricsRegistry` and the stock SLO evaluator attached; the snapshot
    embeds the final ``repro.health/1`` block.  No tracer: its service
    histograms observe wall-clock seconds, which would break
    byte-determinism.
    """
    from repro.observability.health import HealthEvaluator, default_service_slos
    from repro.observability.metrics import MetricsRegistry
    from repro.service.server import PartitionServer
    from repro.service.workload import run_workload

    registry = MetricsRegistry()
    health = HealthEvaluator(default_service_slos())
    server = PartitionServer(metrics=registry, health=health)
    run_workload(profile, seed=seed, server=server, verify=False)
    return registry.to_snapshot(
        health=health.evaluate(server.clock),
        profile=profile,
        seed=seed,
        clock_units=int(server.clock),
    )


def record_metrics_baselines(
    directory: Path | str,
    graphs: Sequence[str] = ("asia_osm",),
    profiles: Sequence[str] = ("quick",),
    *,
    seed: int = 42,
    service_seed: int = 0,
) -> List[MetricsBaseline]:
    """(Re)write the metrics-snapshot baseline files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[MetricsBaseline] = []
    for graph_name in graphs:
        baseline = MetricsBaseline(
            name=f"metrics_{graph_name}",
            kind="leiden",
            target=graph_name,
            seed=seed,
            expected=measure_metrics(graph_name, seed=seed),
        )
        baseline.save(directory / f"metrics_{graph_name}.json")
        out.append(baseline)
    for profile in profiles:
        baseline = MetricsBaseline(
            name=f"metrics_service_{profile}",
            kind="service",
            target=profile,
            seed=service_seed,
            expected=measure_service_metrics(profile, seed=service_seed),
        )
        baseline.save(directory / f"metrics_service_{profile}.json")
        out.append(baseline)
    return out


def _check_metrics_baseline(baseline: MetricsBaseline, print_fn) -> bool:
    if baseline.kind == "service":
        current = measure_service_metrics(baseline.target, seed=baseline.seed)
    else:
        current = measure_metrics(baseline.target, seed=baseline.seed)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, kind={baseline.kind}, "
             f"target={baseline.target}, seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


# -- reorder-locality baselines (exact-match gate) ---------------------------

#: Graphs the committed reorder-locality baseline covers: the two
#: largest registry graphs (by vertices + edges).
DEFAULT_REORDER_GRAPHS = ("com-LiveJournal", "kmer_V1r")


@dataclass(frozen=True)
class ReorderBaseline:
    """The committed reorder-locality expectations, one doc per graph.

    ``expected`` maps each graph name to the deterministic document of
    :func:`repro.bench.experiments.ext_reorder_locality.
    measure_reorder_locality` — modelled locality of the original,
    scrambled and community-relabeled layouts plus batch-solve
    summaries.  The gate is exact equality.
    """

    name: str
    graphs: Tuple[str, ...]
    seed: int
    scramble_seed: int
    mode: str
    expected: Dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": REORDER_BASELINE_SCHEMA,
            "name": self.name,
            "graphs": list(self.graphs),
            "seed": self.seed,
            "scramble_seed": self.scramble_seed,
            "mode": self.mode,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ReorderBaseline":
        schema = d.get("schema")
        if schema != REORDER_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported reorder baseline schema {schema!r} "
                f"(expected {REORDER_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            graphs=tuple(d["graphs"]),
            seed=int(d["seed"]),
            scramble_seed=int(d["scramble_seed"]),
            mode=str(d["mode"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "ReorderBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_reorder(
    graphs: Sequence[str] = DEFAULT_REORDER_GRAPHS,
    *,
    seed: int = 42,
    scramble_seed: int = 7,
    mode: str = "community",
) -> Dict[str, dict]:
    """Deterministic reorder-locality documents, one per graph."""
    from repro.bench.experiments.ext_reorder_locality import (
        measure_reorder_locality,
    )

    return {
        name: measure_reorder_locality(
            name, seed=seed, scramble_seed=scramble_seed, mode=mode)
        for name in graphs
    }


def record_reorder_baselines(
    directory: Path | str,
    graphs: Sequence[str] = DEFAULT_REORDER_GRAPHS,
    *,
    seed: int = 42,
    scramble_seed: int = 7,
    mode: str = "community",
) -> List[ReorderBaseline]:
    """(Re)write the reorder-locality baseline file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    baseline = ReorderBaseline(
        name="reorder_locality",
        graphs=tuple(graphs),
        seed=seed,
        scramble_seed=scramble_seed,
        mode=mode,
        expected=measure_reorder(
            graphs, seed=seed, scramble_seed=scramble_seed, mode=mode),
    )
    baseline.save(directory / "reorder_locality.json")
    return [baseline]


def _check_reorder_baseline(baseline: ReorderBaseline, print_fn) -> bool:
    current = measure_reorder(
        baseline.graphs, seed=baseline.seed,
        scramble_seed=baseline.scramble_seed, mode=baseline.mode)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, graphs={','.join(baseline.graphs)}, "
             f"mode={baseline.mode}, seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


# -- fleet-load baselines (exact-match gate) ---------------------------------


@dataclass(frozen=True)
class FleetBaseline:
    """One committed fleet A/B: profile, seed, exact expectations.

    ``expected`` is the deterministic 1-shard vs 4-shard comparison
    document of :func:`repro.bench.experiments.ext_fleet_load.
    measure_fleet_load` — both runs' full stats plus the cross-width
    fan-out invariance verdict.  The gate is exact equality.
    """

    name: str
    profile: str
    seed: int
    expected: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": FLEET_BASELINE_SCHEMA,
            "name": self.name,
            "profile": self.profile,
            "seed": self.seed,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FleetBaseline":
        schema = d.get("schema")
        if schema != FLEET_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported fleet baseline schema {schema!r} "
                f"(expected {FLEET_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            profile=str(d["profile"]),
            seed=int(d["seed"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "FleetBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_fleet(profile: str = "quick", *, seed: int = 0) -> dict:
    """Deterministic fleet A/B document for one ``(profile, seed)``."""
    from repro.bench.experiments.ext_fleet_load import measure_fleet_load

    return measure_fleet_load(profile, seed=seed)


def record_fleet_baselines(
    directory: Path | str,
    profiles: Sequence[str] = ("quick",),
    *,
    seed: int = 0,
) -> List[FleetBaseline]:
    """(Re)write one fleet baseline file per profile."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[FleetBaseline] = []
    for profile in profiles:
        baseline = FleetBaseline(
            name=f"fleet_{profile}",
            profile=profile,
            seed=seed,
            expected=measure_fleet(profile, seed=seed),
        )
        baseline.save(directory / f"fleet_{profile}.json")
        out.append(baseline)
    return out


def _check_fleet_baseline(baseline: FleetBaseline, print_fn) -> bool:
    current = measure_fleet(baseline.profile, seed=baseline.seed)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, profile={baseline.profile}, "
             f"seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


# -- memory-ledger baselines (exact-match gate) ------------------------------


@dataclass(frozen=True)
class MemoryBaseline:
    """One committed memory report: graph, seed, exact expectations.

    ``expected`` is the full ``repro.memory/1`` document of a
    single-thread detection run on registry graph ``graph`` —
    :func:`measure_memory`'s output.  The gate is exact equality: the
    ledger's clock is an event counter and iteration is sorted, so any
    byte of drift is a real change in the pipeline's allocations.
    """

    name: str
    graph: str
    seed: int
    expected: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": MEMORY_BASELINE_SCHEMA,
            "name": self.name,
            "graph": self.graph,
            "seed": self.seed,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MemoryBaseline":
        schema = d.get("schema")
        if schema != MEMORY_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported memory baseline schema {schema!r} "
                f"(expected {MEMORY_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            graph=str(d["graph"]),
            seed=int(d["seed"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "MemoryBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_memory(graph_name: str = "asia_osm", *, seed: int = 42) -> dict:
    """Deterministic ``repro.memory/1`` report of one detection run.

    Single-thread run with a :class:`~repro.observability.memtrack.
    MemoryLedger` attached; the input graph's CSR arrays are charged
    explicitly (loads are memoized, so construction may predate the
    ledger).  The document is validated (event replay must reproduce
    the watermarks) before it is returned.
    """
    from repro.observability.memtrack import (
        MemoryLedger,
        record_csr,
        validate_memory_doc,
    )

    graph = load_graph(graph_name)
    memory = MemoryLedger()
    record_csr(memory, graph)
    with Runtime(num_threads=1, seed=seed, memory=memory) as rt:
        leiden(graph, LeidenConfig(seed=seed), runtime=rt)
    doc = memory.to_snapshot(experiment=graph_name, seed=seed)
    validate_memory_doc(doc)
    return doc


def record_memory_baselines(
    directory: Path | str,
    graphs: Sequence[str] = ("asia_osm",),
    *,
    seed: int = 42,
) -> List["MemoryBaseline"]:
    """(Re)write the memory baseline file (``memory_quick.json``)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[MemoryBaseline] = []
    for i, graph_name in enumerate(graphs):
        baseline = MemoryBaseline(
            name="memory_quick" if i == 0 else f"memory_{graph_name}",
            graph=graph_name,
            seed=seed,
            expected=measure_memory(graph_name, seed=seed),
        )
        baseline.save(directory / f"{baseline.name}.json")
        out.append(baseline)
    return out


def _check_memory_baseline(baseline: "MemoryBaseline", print_fn) -> bool:
    current = measure_memory(baseline.graph, seed=baseline.seed)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, graph={baseline.graph}, "
             f"seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


# -- reqtrace-sampling baselines (exact-match gate) --------------------------


@dataclass(frozen=True)
class ReqtraceBaseline:
    """One committed reqtrace A/B: profile, seed, exact expectations.

    ``expected`` is the deterministic sampled-vs-full comparison
    document of :func:`repro.bench.experiments.ext_fleet_reqtrace.
    measure_fleet_reqtrace` — per-width kept-set digests, the
    mode-agreement verdict, and the deterministic-keep width-invariance
    verdict.  The gate is exact equality: the tail-sampling rules are
    pure functions of the request tape, so any drift in the kept set is
    a behavioural change in tracing or serving.
    """

    name: str
    profile: str
    seed: int
    expected: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": REQTRACE_BASELINE_SCHEMA,
            "name": self.name,
            "profile": self.profile,
            "seed": self.seed,
            "expected": self.expected,
            "recorded_with": __version__,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ReqtraceBaseline":
        schema = d.get("schema")
        if schema != REQTRACE_BASELINE_SCHEMA:
            raise ValueError(
                f"unsupported reqtrace baseline schema {schema!r} "
                f"(expected {REQTRACE_BASELINE_SCHEMA!r})"
            )
        return cls(
            name=str(d["name"]),
            profile=str(d["profile"]),
            seed=int(d["seed"]),
            expected=dict(d["expected"]),
        )

    @classmethod
    def load(cls, path: Path | str) -> "ReqtraceBaseline":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def measure_reqtrace(profile: str = "quick", *, seed: int = 0) -> dict:
    """Deterministic reqtrace A/B document for one ``(profile, seed)``."""
    from repro.bench.experiments.ext_fleet_reqtrace import (
        measure_fleet_reqtrace,
    )

    return measure_fleet_reqtrace(profile, seed=seed)


def record_reqtrace_baselines(
    directory: Path | str,
    profiles: Sequence[str] = ("quick",),
    *,
    seed: int = 0,
) -> List[ReqtraceBaseline]:
    """(Re)write one reqtrace baseline file per profile."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: List[ReqtraceBaseline] = []
    for profile in profiles:
        baseline = ReqtraceBaseline(
            name=f"reqtrace_{profile}",
            profile=profile,
            seed=seed,
            expected=measure_reqtrace(profile, seed=seed),
        )
        baseline.save(directory / f"reqtrace_{profile}.json")
        out.append(baseline)
    return out


def _check_reqtrace_baseline(baseline: ReqtraceBaseline, print_fn) -> bool:
    current = measure_reqtrace(baseline.profile, seed=baseline.seed)
    diffs = compare_service_docs(baseline.expected, current)
    ok = not diffs
    print_fn(f"{'PASS' if ok else 'FAIL'} {baseline.name} "
             f"(exact match, profile={baseline.profile}, "
             f"seed={baseline.seed})")
    for path, exp, act in diffs[:20]:
        print_fn(f"  [REG] {path}: baseline={exp!r}  current={act!r}")
    if len(diffs) > 20:
        print_fn(f"  ... and {len(diffs) - 20} more differing fields")
    return ok


def expected_baseline_names() -> List[str]:
    """Filenames ``--check`` requires to be present in the baseline dir.

    Derived from the recorders' defaults (:func:`record_baselines`,
    :func:`record_service_baselines`, :func:`record_metrics_baselines`,
    :func:`record_reorder_baselines`, :func:`record_fleet_baselines`,
    :func:`record_reqtrace_baselines`, :func:`record_memory_baselines`)
    — the set ``--update-baselines`` writes and CI commits.
    """
    names = [f"{g}.json" for g in DEFAULT_BASELINE_GRAPHS]
    names.append("service_quick.json")
    names.append("metrics_asia_osm.json")
    names.append("metrics_service_quick.json")
    names.append("reorder_locality.json")
    names.append("fleet_quick.json")
    names.append("reqtrace_quick.json")
    names.append("memory_quick.json")
    return sorted(names)


def run_check(
    baseline_dir: Path | str | None = None,
    *,
    thresholds: Optional[Thresholds] = None,
    require_complete: bool = False,
    print_fn=print,
) -> int:
    """Re-run every committed baseline and compare; 0 = all pass.

    This is the body of ``repro bench --check``: the exit code is the CI
    gate, the printed diff is the human-readable artifact.  Dispatches on
    each file's ``schema`` tag: perf baselines gate on thresholds,
    service baselines on exact stats equality.

    With ``require_complete`` (the CLI always sets it), a *missing*
    expected baseline file is a hard error (exit 2), not a silent pass —
    a gate that skips absent baselines checks nothing.  Library callers
    checking a deliberately partial directory leave it off.
    """
    directory = Path(baseline_dir) if baseline_dir else default_baseline_dir()
    paths = sorted(directory.glob("*.json"))
    if not paths:
        print_fn(f"no baselines found under {directory}")
        return 2
    if require_complete:
        found = {p.name for p in paths}
        missing = [name for name in expected_baseline_names()
                   if name not in found]
        if missing:
            for name in missing:
                print_fn(f"MISSING baseline {directory / name}")
            print_fn(
                f"error: {len(missing)} expected baseline file(s) missing "
                f"— run `repro bench --update-baselines` and commit the "
                f"result")
            return 2
    failures = 0
    for path in paths:
        doc = json.loads(path.read_text())
        if doc.get("schema") == SERVICE_BASELINE_SCHEMA:
            if not _check_service_baseline(
                    ServiceBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        if doc.get("schema") == METRICS_BASELINE_SCHEMA:
            if not _check_metrics_baseline(
                    MetricsBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        if doc.get("schema") == REORDER_BASELINE_SCHEMA:
            if not _check_reorder_baseline(
                    ReorderBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        if doc.get("schema") == FLEET_BASELINE_SCHEMA:
            if not _check_fleet_baseline(
                    FleetBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        if doc.get("schema") == REQTRACE_BASELINE_SCHEMA:
            if not _check_reqtrace_baseline(
                    ReqtraceBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        if doc.get("schema") == MEMORY_BASELINE_SCHEMA:
            if not _check_memory_baseline(
                    MemoryBaseline.from_dict(doc), print_fn):
                failures += 1
            continue
        baseline = Baseline.from_dict(doc)
        current, _ = measure_experiment(
            baseline.graph,
            seed=baseline.seed,
            num_threads=baseline.num_threads,
            config=baseline.config,
        )
        checks = compare_metrics(baseline, current, thresholds=thresholds)
        print_fn(format_checks(baseline.name, checks))
        if not all(c.ok for c in checks):
            failures += 1
    total = len(paths)
    print_fn(f"{total - failures}/{total} baselines within thresholds")
    return 1 if failures else 0


def run_trace(
    graphs: Sequence[str] = DEFAULT_BASELINE_GRAPHS,
    *,
    seed: int = 42,
    num_threads: int = 64,
) -> dict:
    """Traced smoke runs: one ``repro.trace/2`` document per graph.

    The body of ``repro bench --trace``; the result is written as the CI
    trace artifact.  Feed the documents through :func:`migrate_trace` for
    tooling still expecting the ``repro.trace/1`` shape.
    """
    experiments: Dict[str, dict] = {}
    for graph_name in graphs:
        tracer = Tracer()
        metrics, _ = measure_experiment(
            graph_name, seed=seed, num_threads=num_threads, tracer=tracer
        )
        experiments[graph_name] = tracer.to_dict(
            experiment=graph_name,
            seed=seed,
            num_threads=num_threads,
            machine=PAPER_MACHINE.as_dict(),
            metrics=metrics.to_dict(),
        )
    return {
        "schema": TRACE_BUNDLE_SCHEMA,
        "version": __version__,
        "experiments": experiments,
    }


def run_profile(
    graphs: Sequence[str] = DEFAULT_BASELINE_GRAPHS,
    *,
    seed: int = 42,
    num_threads: int = 8,
    top: int = 5,
) -> dict:
    """Profiled smoke runs: Chrome trace + text report per graph.

    The body of ``repro bench --profile``; written next to the trace
    bundle as a CI artifact so every benchmark run ships an inspectable
    thread timeline.
    """
    from repro.observability.profile_report import format_profile_report
    from repro.observability.profiler import Profiler, to_chrome_trace

    experiments: Dict[str, dict] = {}
    for graph_name in graphs:
        tracer = Tracer()
        profiler = Profiler(num_threads=num_threads)
        metrics, _ = measure_experiment(
            graph_name, seed=seed, num_threads=num_threads,
            tracer=tracer, profiler=profiler,
        )
        timeline = profiler.timeline()
        trace_doc = tracer.to_dict(experiment=graph_name, seed=seed)
        experiments[graph_name] = {
            "chrome": to_chrome_trace(
                timeline, experiment=graph_name, seed=seed),
            "report": format_profile_report(
                timeline, trace_doc=trace_doc, top=top, title=graph_name),
            "metrics": metrics.to_dict(),
        }
    return {
        "schema": PROFILE_BUNDLE_SCHEMA,
        "version": __version__,
        "experiments": experiments,
    }


# -- trace schema migration and diffing ---------------------------------------


def _strip_series(span: dict) -> dict:
    out = {k: v for k, v in span.items() if k != "series"}
    if "children" in out:
        out["children"] = [_strip_series(c) for c in out["children"]]
    return out


def migrate_trace(doc: dict, *, target: str = TRACE_SCHEMA_V1) -> dict:
    """Convert a trace document between schema versions.

    The only supported migration is ``repro.trace/2`` →
    ``repro.trace/1`` (drop the per-span ``series`` blocks the
    convergence monitor added); a document already at ``target`` passes
    through as a copy.  Consumers written against ``/1`` call this shim
    instead of rejecting newer traces.
    """
    schema = doc.get("schema")
    if target not in (TRACE_SCHEMA, TRACE_SCHEMA_V1):
        raise ValueError(f"unknown target schema {target!r}")
    if schema == target:
        return json.loads(json.dumps(doc))
    if schema == TRACE_SCHEMA and target == TRACE_SCHEMA_V1:
        out = {k: v for k, v in doc.items() if k != "spans"}
        out["schema"] = target
        out["spans"] = [
            _strip_series(json.loads(json.dumps(s)))
            for s in doc.get("spans", [])
        ]
        return out
    raise ValueError(
        f"cannot migrate trace schema {schema!r} to {target!r}")


def _span_seconds_by_path(doc: dict) -> Dict[str, float]:
    """Flatten a trace document's span tree to ``path -> seconds``.

    Sibling spans sharing a name are disambiguated by the span's
    ``index`` attr when present, else by occurrence order — matching
    :meth:`Tracer.span_path`'s ``pass[0]`` notation.
    """
    out: Dict[str, float] = {}

    def walk(spans, prefix):
        seen: Dict[str, int] = {}
        for s in spans:
            name = s.get("name", "?")
            attrs = s.get("attrs", {})
            if "index" in attrs:
                label = f"{name}[{attrs['index']}]"
            else:
                k = seen.get(name, 0)
                seen[name] = k + 1
                label = name if k == 0 else f"{name}#{k}"
            path = f"{prefix}/{label}" if prefix else label
            out[path] = out.get(path, 0.0) + float(s.get("seconds", 0.0))
            walk(s.get("children", ()), path)

    walk(doc.get("spans", ()), "")
    return out


def diff_trace_docs(a: dict, b: dict) -> List[dict]:
    """Deterministic field-level delta between two trace documents.

    Either document may be ``/1`` or ``/2``.  Returns one row per
    compared field, sorted by ``(kind, name)``: all counters and derived
    metrics (deterministic at a fixed seed — any drift is a real
    behavioural change) plus per-span-path wall seconds (informational;
    wall clock is machine-noisy).
    """
    rows: List[dict] = []
    for kind, key in (("counter", "counters"), ("derived", "derived")):
        da = a.get(key, {}) or {}
        db = b.get(key, {}) or {}
        for name in sorted(set(da) | set(db)):
            rows.append({"kind": kind, "name": name,
                         "a": da.get(name), "b": db.get(name)})
    sa = _span_seconds_by_path(a)
    sb = _span_seconds_by_path(b)
    for name in sorted(set(sa) | set(sb)):
        rows.append({"kind": "seconds", "name": name,
                     "a": sa.get(name), "b": sb.get(name)})
    return rows


def _fmt_val(v) -> str:
    return "-" if v is None else f"{v:.6g}"


def format_trace_diff(
    rows: Sequence[dict], *, label_a: str = "A", label_b: str = "B"
) -> Tuple[str, int]:
    """Render a trace diff; returns ``(text, num_deterministic_diffs)``.

    Counter/derived rows that differ are flagged ``DIFF`` and counted
    (``repro trace --diff --strict`` gates on that count); identical
    rows are summarized.  Seconds rows always print with their relative
    change but never count as regressions here — that is the bench
    gate's job.
    """
    lines = [f"trace diff: A={label_a}  B={label_b}"]
    diffs = 0
    for kind, title in (("counter", "counters"), ("derived", "derived metrics")):
        sel = [r for r in rows if r["kind"] == kind]
        if not sel:
            continue
        changed = [r for r in sel if r["a"] != r["b"]]
        lines.append(f"{title}: {len(sel) - len(changed)}/{len(sel)} identical")
        for r in changed:
            diffs += 1
            a, b = r["a"], r["b"]
            if a is not None and b is not None and a != 0:
                rel = f"  ({(b - a) / abs(a):+.1%})"
            else:
                rel = ""
            lines.append(f"  [DIFF] {r['name']:<28} "
                         f"A={_fmt_val(a)}  B={_fmt_val(b)}{rel}")
    sel = [r for r in rows if r["kind"] == "seconds"]
    if sel:
        lines.append("span seconds (wall clock, informational):")
        for r in sel:
            a, b = r["a"], r["b"]
            if a and b:
                rel = f"  ({(b - a) / abs(a):+.1%})"
            else:
                rel = ""
            lines.append(f"  {r['name']:<36} "
                         f"A={_fmt_val(a)}  B={_fmt_val(b)}{rel}")
    lines.append(f"{diffs} deterministic field(s) differ")
    return "\n".join(lines), diffs
