"""Phase-level observability: tracing spans, runtime counters, baselines.

The paper's evaluation is built on knowing *where time goes* — per-phase
splits (Figure 7), pruning rates (the flag-based pruning optimization),
aggregation tolerance effects — and the reproduction needs the same
signals as first-class, machine-readable data rather than ad-hoc bench
prints.  This package provides:

- :mod:`repro.observability.tracer` — nested spans (run → pass → phase)
  with attached counters, recorded behind a zero-cost-when-disabled API
  (the :data:`~repro.observability.tracer.NULL_TRACER` singleton), and
  emitted as stable JSON (``repro.trace/1`` schema);
- :mod:`repro.observability.regression` — per-experiment performance
  baselines (``benchmarks/baselines/*.json``) and the comparison logic
  behind ``repro bench --check``, the CI perf-regression gate.
"""

from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    Span,
    Tracer,
)

#: Symbols re-exported lazily from :mod:`repro.observability.regression`.
#: (Lazy because regression imports the core algorithm and the runtime,
#: while the runtime imports :mod:`repro.observability.tracer` — eager
#: package-level imports would form a cycle.)
_REGRESSION_EXPORTS = frozenset({
    "BASELINE_SCHEMA",
    "Baseline",
    "MetricCheck",
    "RunMetrics",
    "Thresholds",
    "compare_metrics",
    "default_baseline_dir",
    "format_checks",
    "measure_experiment",
    "record_baselines",
    "run_check",
    "run_trace",
})


def __getattr__(name: str):
    if name in _REGRESSION_EXPORTS:
        from repro.observability import regression

        return getattr(regression, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NULL_TRACER",
    "Span",
    "Tracer",
    "TRACE_SCHEMA",
    "BASELINE_SCHEMA",
    "Baseline",
    "MetricCheck",
    "RunMetrics",
    "Thresholds",
    "compare_metrics",
    "default_baseline_dir",
    "format_checks",
    "measure_experiment",
    "record_baselines",
    "run_check",
    "run_trace",
]
