"""Phase-level observability: tracing spans, runtime counters, baselines.

The paper's evaluation is built on knowing *where time goes* — per-phase
splits (Figure 7), pruning rates (the flag-based pruning optimization),
aggregation tolerance effects — and the reproduction needs the same
signals as first-class, machine-readable data rather than ad-hoc bench
prints.  This package provides:

- :mod:`repro.observability.tracer` — nested spans (run → pass → phase)
  with attached counters and ordered series, recorded behind a
  zero-cost-when-disabled API (the
  :data:`~repro.observability.tracer.NULL_TRACER` singleton), and
  emitted as stable JSON (``repro.trace/2`` schema; ``migrate_trace``
  converts for ``/1`` consumers);
- :mod:`repro.observability.profiler` — the thread-timeline event log of
  the simulated runtime (per-thread chunk/atomic/barrier events on the
  simulated clock) with a Chrome trace-event exporter, behind the same
  zero-cost pattern (:data:`~repro.observability.profiler.NULL_PROFILER`);
- :mod:`repro.observability.profile_report` — critical-path, barrier-wait
  and load-imbalance attribution over a timeline, rendered as the
  deterministic ``repro profile`` text report;
- :mod:`repro.observability.metrics` — typed metric instruments
  (counter/gauge/histogram with bounded label cardinality) in a
  process-wide :class:`~repro.observability.metrics.MetricsRegistry`
  with byte-deterministic Prometheus and JSON (``repro.metrics/1``)
  exposition, behind the same zero-cost pattern
  (:data:`~repro.observability.metrics.NULL_REGISTRY`);
- :mod:`repro.observability.health` — rolling-window SLO burn-rate
  evaluation (OK/WARN/PAGE) on the partition server's logical clock;
- :mod:`repro.observability.reqtrace` — request-scoped distributed
  tracing over the fleet's logical clocks: deterministic trace ids,
  causal spans per hop (admission, queue wait, dedup join, serve,
  refresh, failover, reply), deterministic tail-sampling, histogram
  exemplars, and the PAGE-triggered flight recorder
  (:data:`~repro.observability.reqtrace.NULL_REQTRACE` disabled
  default);
- :mod:`repro.observability.regression` — per-experiment performance
  baselines (``benchmarks/baselines/*.json``) and the comparison logic
  behind ``repro bench --check``, the CI perf-regression gate, plus the
  trace-diff and schema-migration helpers.
"""

from repro.observability.health import (
    HEALTH_SCHEMA,
    HealthEvaluator,
    SLObjective,
    default_service_slos,
)
from repro.observability.locality import (
    CACHE_LINE_BYTES,
    LRU_CAPACITY_LINES,
    LocalityReport,
    measure_locality,
)
from repro.observability.metrics import (
    METRICS_SCHEMA,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    bucket_percentile,
    exact_percentile,
    validate_prometheus,
)
from repro.observability.profiler import (
    NULL_PROFILER,
    PID_FLEET,
    PROFILE_SCHEMA,
    Profiler,
    Timeline,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.observability.reqtrace import (
    NULL_REQTRACE,
    REQTRACE_SCHEMA,
    FlightRecorder,
    NullRequestTracer,
    RequestTracer,
    TailSamplingConfig,
    merge_chrome_trace,
    mint_trace_id,
    select_kept,
    validate_reqtrace,
)
from repro.observability.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_SCHEMA_V1,
    Span,
    Tracer,
)

#: Symbols re-exported lazily from :mod:`repro.observability.regression`.
#: (Lazy because regression imports the core algorithm and the runtime,
#: while the runtime imports :mod:`repro.observability.tracer` — eager
#: package-level imports would form a cycle.)
_REGRESSION_EXPORTS = frozenset({
    "BASELINE_SCHEMA",
    "Baseline",
    "METRICS_BASELINE_SCHEMA",
    "MetricsBaseline",
    "REORDER_BASELINE_SCHEMA",
    "ReorderBaseline",
    "collect_leiden_metrics",
    "measure_metrics",
    "measure_reorder",
    "measure_service_metrics",
    "record_metrics_baselines",
    "record_reorder_baselines",
    "MetricCheck",
    "RunMetrics",
    "Thresholds",
    "compare_metrics",
    "default_baseline_dir",
    "diff_trace_docs",
    "format_checks",
    "format_trace_diff",
    "measure_experiment",
    "migrate_trace",
    "record_baselines",
    "run_check",
    "run_profile",
    "run_trace",
})


def __getattr__(name: str):
    if name in _REGRESSION_EXPORTS:
        from repro.observability import regression

        return getattr(regression, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CACHE_LINE_BYTES",
    "HEALTH_SCHEMA",
    "LRU_CAPACITY_LINES",
    "HealthEvaluator",
    "LocalityReport",
    "METRICS_SCHEMA",
    "measure_locality",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_REQTRACE",
    "NULL_TRACER",
    "PID_FLEET",
    "PROFILE_SCHEMA",
    "REQTRACE_SCHEMA",
    "FlightRecorder",
    "NullRequestTracer",
    "RequestTracer",
    "TailSamplingConfig",
    "merge_chrome_trace",
    "mint_trace_id",
    "select_kept",
    "validate_reqtrace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Profiler",
    "SLObjective",
    "Span",
    "Timeline",
    "Tracer",
    "TRACE_SCHEMA",
    "TRACE_SCHEMA_V1",
    "bucket_percentile",
    "default_service_slos",
    "exact_percentile",
    "to_chrome_trace",
    "validate_chrome_trace",
    "BASELINE_SCHEMA",
    "METRICS_BASELINE_SCHEMA",
    "MetricsBaseline",
    "REORDER_BASELINE_SCHEMA",
    "ReorderBaseline",
    "collect_leiden_metrics",
    "measure_metrics",
    "measure_reorder",
    "measure_service_metrics",
    "record_metrics_baselines",
    "record_reorder_baselines",
    "Baseline",
    "MetricCheck",
    "RunMetrics",
    "Thresholds",
    "compare_metrics",
    "default_baseline_dir",
    "diff_trace_docs",
    "format_checks",
    "format_trace_diff",
    "measure_experiment",
    "migrate_trace",
    "record_baselines",
    "run_check",
    "run_profile",
    "run_trace",
]
