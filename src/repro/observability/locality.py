"""Deterministic cache-locality model for CSR graph layouts.

The batch kernels are bandwidth-bound over ``membership[targets]`` /
``K[targets]`` gathers: every edge scan reads one element of a
vertex-indexed array at the target's position.  How many *cache lines*
those reads touch depends entirely on the vertex labeling — the thing
community-aware relabeling optimizes — so this module counts them
exactly instead of guessing from wall clock:

- ``streamed_lines`` — lines of the edge arrays themselves (offsets /
  targets / weights read front to back; layout-independent, reported
  for scale);
- ``gather_lines`` — distinct vertex-array cache lines touched per CSR
  row, summed over rows.  A row whose targets are clustered (community
  members sharing lines) costs fewer lines than one whose targets are
  scattered across the id space;
- ``miss_lines`` — modelled cache *misses* of one full edge scan: an
  LRU cache of ``lru_capacity_lines`` lines replayed over the gather
  line stream in row order.  This is the quantity a community-
  contiguous layout shrinks: consecutive rows of the same community
  gather from the same small id range, so their lines stay resident
  across rows.  The per-row ``gather_lines`` deliberately cannot see
  that cross-row reuse; the LRU replay is the headline A/B metric;
- ``gather_ratio`` / ``miss_ratio`` — each count divided by
  ``num_edges``: cache lines (misses) per edge gather, 1.0 when every
  edge touches a cold line.

The model is exact and deterministic (a counting pass and a seedless
replay, no sampling), so layout A/B deltas are byte-stable and safe to
gate in CI.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.segments import ragged_indices

__all__ = [
    "CACHE_LINE_BYTES",
    "LRU_CAPACITY_LINES",
    "LocalityReport",
    "measure_locality",
]

#: Modelled cache-line size (bytes) — the x86 line the paper machine has.
CACHE_LINE_BYTES = 64

#: Modelled gather-cache capacity in lines: 32 KiB of 64-byte lines, the
#: classic per-core L1D.  Small enough that a hash-ordered id space
#: thrashes it and a community-contiguous one fits a working set.
LRU_CAPACITY_LINES = 512


@dataclass(frozen=True)
class LocalityReport:
    """Exact modelled cache traffic of one graph layout."""

    num_vertices: int
    num_edges: int
    #: Vertex-array element size the gather model assumed (bytes).
    element_bytes: int
    #: Edge-array lines read sequentially (layout-independent).
    streamed_lines: int
    #: Distinct vertex-array lines touched, summed per CSR row.
    gather_lines: int
    #: LRU-modelled gather misses over one full edge scan.
    miss_lines: int
    #: Capacity (lines) of the modelled LRU cache.
    lru_capacity_lines: int

    @property
    def gather_ratio(self) -> float:
        """Per-row distinct cache lines per edge gather."""
        if self.num_edges == 0:
            return 0.0
        return self.gather_lines / self.num_edges

    @property
    def miss_ratio(self) -> float:
        """Modelled cache misses per edge gather (lower is more local)."""
        if self.num_edges == 0:
            return 0.0
        return self.miss_lines / self.num_edges

    def to_dict(self) -> dict:
        return {
            "num_vertices": int(self.num_vertices),
            "num_edges": int(self.num_edges),
            "element_bytes": int(self.element_bytes),
            "streamed_lines": int(self.streamed_lines),
            "gather_lines": int(self.gather_lines),
            "gather_ratio": round(self.gather_ratio, 6),
            "miss_lines": int(self.miss_lines),
            "miss_ratio": round(self.miss_ratio, 6),
            "lru_capacity_lines": int(self.lru_capacity_lines),
        }


def _lru_misses(lines: np.ndarray, capacity: int) -> int:
    """Misses of an LRU cache of ``capacity`` lines over ``lines``.

    Accesses that hit the most recent line are collapsed first (runs of
    the same line are one LRU touch), so the Python replay loop runs
    over line *transitions*, not raw edges.
    """
    if lines.shape[0] == 0:
        return 0
    keep = np.ones(lines.shape[0], dtype=bool)
    keep[1:] = lines[1:] != lines[:-1]
    transitions = lines[keep]
    cache: "OrderedDict[int, None]" = OrderedDict()
    misses = 0
    for line in transitions.tolist():
        if line in cache:
            cache.move_to_end(line)
        else:
            misses += 1
            cache[line] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
    return misses


def measure_locality(
    graph: CSRGraph, *, element_bytes: int = 4,
    lru_capacity_lines: int = LRU_CAPACITY_LINES,
) -> LocalityReport:
    """Count the modelled cache lines one full edge scan touches.

    ``element_bytes`` is the per-vertex payload of the gathered array
    (4 for the ``int32`` membership / ``float32`` weights the kernels
    read most).  Two gather counts are produced: per-row distinct lines
    (reuse within one row only) and the LRU replay over the whole scan
    (reuse across rows too — the effect a community-contiguous layout
    targets, since consecutive rows of one community gather from the
    same few lines).
    """
    g = graph.compact()
    n, e = g.num_vertices, g.num_edges
    line_elems = max(1, CACHE_LINE_BYTES // int(element_bytes))
    # offsets (int64) + targets (int32) + weights (float32), streamed.
    streamed = (
        -(-g.offsets.nbytes // CACHE_LINE_BYTES)
        + -(-g.targets.nbytes // CACHE_LINE_BYTES)
        + -(-g.weights.nbytes // CACHE_LINE_BYTES)
    )
    if e == 0:
        return LocalityReport(n, 0, int(element_bytes), int(streamed),
                              0, 0, int(lru_capacity_lines))
    seg, idx = ragged_indices(g.offsets[:-1], g.degrees)
    lines = g.targets[idx].astype(np.int64) // line_elems
    # Distinct (row, line) pairs: sort the per-edge keys once and count
    # boundaries — exact, O(E log E), no per-row Python loop.
    order = np.lexsort((lines, seg))
    seg_s, lines_s = seg[order], lines[order]
    new_pair = np.ones(e, dtype=bool)
    new_pair[1:] = (seg_s[1:] != seg_s[:-1]) | (lines_s[1:] != lines_s[:-1])
    gather = int(np.count_nonzero(new_pair))
    misses = _lru_misses(lines, int(lru_capacity_lines))
    return LocalityReport(n, e, int(element_bytes), int(streamed),
                          gather, misses, int(lru_capacity_lines))
