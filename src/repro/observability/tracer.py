"""Nested tracing spans and counters with a zero-cost disabled path.

A :class:`Tracer` records a tree of :class:`Span` objects — typically
``leiden → pass → phase`` — each holding wall-clock seconds, free-form
attributes, additive counters and min/max/sum observations.  The
instrumented code never checks "is tracing on?" for span entry: it calls
``runtime.tracer.span(...)`` and the disabled singleton
:data:`NULL_TRACER` answers with a shared no-op context manager.  Hot
loops that would have to *compute* something extra to feed a counter
guard on :attr:`Tracer.enabled` instead, so the disabled path costs one
attribute read.

The JSON emission (:meth:`Tracer.to_dict` / :meth:`Tracer.to_json`) is a
stable schema, versioned as :data:`TRACE_SCHEMA`; consumers (the CI
artifact, the regression harness, external tooling) key on it.  Schema
``repro.trace/2`` adds per-span **series** — ordered event sequences such
as the convergence monitor's per-iteration ΔQ — on top of the ``/1``
counters/stats/buckets; :func:`repro.observability.regression.
migrate_trace` downgrades a ``/2`` document for ``/1`` consumers.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

# The power-of-two exponent-bucket machinery lives in the metrics module
# (its single home, shared with metric histograms so trace and metrics
# percentiles agree); re-exported here for compatibility.
from repro.observability.metrics import bucket_of as _bucket_of
from repro.observability.metrics import bucket_percentile

__all__ = ["TRACE_SCHEMA", "TRACE_SCHEMA_V1", "Span", "Tracer", "NullTracer",
           "NULL_TRACER", "bucket_percentile", "format_span_path"]

#: Version tag embedded in every emitted trace document.
TRACE_SCHEMA = "repro.trace/2"

#: The previous schema version (no per-span ``series``); the migration
#: shim in :mod:`repro.observability.regression` downgrades to it.
TRACE_SCHEMA_V1 = "repro.trace/1"


class Span:
    """One timed region of the trace tree."""

    __slots__ = ("name", "attrs", "counters", "stats", "buckets", "series",
                 "children", "seconds", "_start")

    def __init__(self, name: str, attrs: Optional[dict] = None) -> None:
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.counters: Dict[str, float] = {}
        self.stats: Dict[str, Dict[str, float]] = {}
        #: Power-of-two histogram per observed distribution, feeding the
        #: p50/p99 estimates in :meth:`Tracer.derived_metrics`.
        self.buckets: Dict[str, Dict[int, int]] = {}
        #: Ordered per-span event sequences (``repro.trace/2``): e.g. the
        #: convergence monitor's ΔQ per local-moving iteration.  Unlike
        #: counters these preserve order and individual values.
        self.series: Dict[str, List[float]] = {}
        self.children: List["Span"] = []
        self.seconds = 0.0
        self._start: Optional[float] = None

    def set(self, **attrs) -> None:
        """Attach attributes to the span (no-op on the null span)."""
        self.attrs.update(attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + float(value)

    def observe(self, name: str, value: float) -> None:
        v = float(value)
        s = self.stats.get(name)
        if s is None:
            self.stats[name] = {"count": 1.0, "sum": v, "min": v, "max": v}
        else:
            s["count"] += 1.0
            s["sum"] += v
            if v < s["min"]:
                s["min"] = v
            if v > s["max"]:
                s["max"] = v
        hist = self.buckets.setdefault(name, {})
        b = _bucket_of(v)
        hist[b] = hist.get(b, 0) + 1

    def record(self, name: str, value: float) -> None:
        """Append one value to the ordered series ``name`` on this span."""
        self.series.setdefault(name, []).append(float(value))

    # -- aggregation ---------------------------------------------------------

    def counter_totals(self, into: Optional[Dict[str, float]] = None) -> Dict[str, float]:
        """Counters summed over this span and its whole subtree."""
        totals = {} if into is None else into
        for k, v in self.counters.items():
            totals[k] = totals.get(k, 0.0) + v
        for child in self.children:
            child.counter_totals(totals)
        return totals

    def bucket_totals(
        self, into: Optional[Dict[str, Dict[int, int]]] = None
    ) -> Dict[str, Dict[int, int]]:
        """Observation histograms merged over this span's subtree."""
        totals = {} if into is None else into
        for name, hist in self.buckets.items():
            merged = totals.setdefault(name, {})
            for exp, count in hist.items():
                merged[exp] = merged.get(exp, 0) + count
        for child in self.children:
            child.bucket_totals(totals)
        return totals

    def stats_totals(
        self, into: Optional[Dict[str, Dict[str, float]]] = None
    ) -> Dict[str, Dict[str, float]]:
        """Observation stats (count/sum/min/max) merged over the subtree.

        The exact-summary companion of :meth:`bucket_totals`, consumed by
        :meth:`repro.observability.metrics.MetricsRegistry.merge_tracer`
        so re-exported histograms keep exact sums rather than bucket
        estimates.
        """
        totals = {} if into is None else into
        for name, s in self.stats.items():
            merged = totals.get(name)
            if merged is None:
                totals[name] = dict(s)
            else:
                merged["count"] += s["count"]
                merged["sum"] += s["sum"]
                if s["min"] < merged["min"]:
                    merged["min"] = s["min"]
                if s["max"] > merged["max"]:
                    merged["max"] = s["max"]
        for child in self.children:
            child.stats_totals(totals)
        return totals

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.stats:
            out["stats"] = {k: dict(v) for k, v in self.stats.items()}
        if self.buckets:
            out["buckets"] = {
                k: {str(exp): c for exp, c in sorted(v.items())}
                for k, v in self.buckets.items()
            }
        if self.series:
            out["series"] = {k: list(v) for k, v in self.series.items()}
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.seconds:.4f}s, "
                f"{len(self.children)} children)")


def format_span_path(spans) -> str:
    """Slash-joined label for a sequence of open spans.

    The single implementation behind :meth:`Tracer.span_path` and
    :meth:`NullTracer.span_path` (both used as profiler region labels by
    :mod:`repro.parallel.runtime`).  Spans carrying an ``index``
    attribute (the per-pass spans) embed it so repeated siblings stay
    distinguishable: ``leiden/pass[1]/local_move``.
    """
    parts = []
    for s in spans:
        idx = s.attrs.get("index")
        parts.append(f"{s.name}[{idx}]" if idx is not None else s.name)
    return "/".join(parts)


class Tracer:
    """Collects a span tree plus counters for one traced execution."""

    enabled = True

    def __init__(self) -> None:
        self.root = Span("trace")
        self._stack: List[Span] = [self.root]

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Open a nested span; yields it so callers may :meth:`Span.set`.

        Exception-safe: if the body raises — including through spans it
        opened with :meth:`push` but never :meth:`pop`-ed — every span
        down to and including this one still records its ``seconds`` and
        closes, so the emitted trace never contains a half-open span.
        """
        s = Span(name, attrs)
        self._stack[-1].children.append(s)
        self._stack.append(s)
        s._start = perf_counter()
        try:
            yield s
        finally:
            self.unwind(s)

    def push(self, name: str, **attrs) -> Span:
        """Open a span without a ``with`` block (close via :meth:`pop`).

        For call sites whose span outlives one lexical block — e.g. the
        per-pass span in :func:`repro.core.leiden.leiden`, which closes
        on both the convergence ``break`` and the normal pass end.
        """
        s = Span(name, attrs)
        self._stack[-1].children.append(s)
        self._stack.append(s)
        s._start = perf_counter()
        return s

    def pop(self) -> None:
        """Close the innermost span opened by :meth:`push`."""
        if len(self._stack) <= 1:
            return
        s = self._stack.pop()
        if s._start is not None:
            s.seconds += perf_counter() - s._start
            s._start = None

    def unwind(self, span: Span) -> None:
        """Close every open span down to and including ``span``.

        The exception-safety primitive behind :meth:`span` and the
        ``try/finally`` in :func:`repro.core.leiden.leiden`: each popped
        span records its elapsed ``seconds`` exactly as a normal close
        would.  A no-op when ``span`` is not on the stack (already
        closed), so it is safe to call unconditionally in ``finally``.
        """
        if not any(s is span for s in self._stack):
            return
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top._start is not None:
                top.seconds += perf_counter() - top._start
                top._start = None
            if top is span:
                break

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` on the innermost open span."""
        self._stack[-1].count(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample of distribution ``name`` on the open span."""
        self._stack[-1].observe(name, value)

    def record(self, name: str, value: float) -> None:
        """Append one value to series ``name`` on the innermost open span."""
        self._stack[-1].record(name, value)

    # -- inspection / emission ------------------------------------------------

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def span_path(self) -> str:
        """Slash-joined path of the open spans, e.g. ``leiden/pass[1]/
        local_move`` — the region label the profiler attaches to events.

        Delegates to :func:`format_span_path` (shared with
        :class:`NullTracer` so there is exactly one formatting rule).
        """
        return format_span_path(self._stack[1:])

    def counter_totals(self) -> Dict[str, float]:
        """All counters, summed over the entire trace."""
        return self.root.counter_totals()

    def derived_metrics(self) -> Dict[str, float]:
        """Ratios from raw counters plus percentile estimates from the
        observation histograms.

        Every observed distribution ``name`` (fed through
        :meth:`observe` anywhere in the trace) contributes
        ``{name}_p50`` and ``{name}_p99`` — how the service latency
        histogram surfaces in ``repro trace`` output with no
        service-specific plumbing.
        """
        totals = self.counter_totals()
        out: Dict[str, float] = {}
        visited = totals.get("pruning_visited", 0.0)
        skipped = totals.get("pruning_skipped", 0.0)
        if visited + skipped > 0:
            out["pruning_hit_rate"] = skipped / (visited + skipped)
        regions = totals.get("parallel_regions", 0.0)
        if regions > 0:
            out["atomics_per_region"] = totals.get("atomic_ops", 0.0) / regions
            out["skew_units_per_region"] = (
                totals.get("clock_skew_units", 0.0) / regions
            )
        for name, hist in sorted(self.root.bucket_totals().items()):
            out[f"{name}_p50"] = bucket_percentile(hist, 50.0)
            out[f"{name}_p99"] = bucket_percentile(hist, 99.0)
        return out

    def to_dict(self, **meta) -> dict:
        """The trace as a JSON-ready document (``repro.trace/2``)."""
        return {
            "schema": TRACE_SCHEMA,
            "meta": meta,
            "counters": self.counter_totals(),
            "derived": self.derived_metrics(),
            "spans": [c.to_dict() for c in self.root.children],
        }

    def to_json(self, *, indent: int | None = 2, **meta) -> str:
        return json.dumps(self.to_dict(**meta), indent=indent, sort_keys=True)


class _NullSpan:
    """Shared no-op span/context-manager returned by :class:`NullTracer`."""

    __slots__ = ()
    name = "null"
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None

    def count(self, name: str, value: float = 1.0) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    ``runtime.tracer.span(...)`` returns a shared context manager and
    allocates nothing; counter calls return immediately.  Code that must
    *compute* values for counters should guard on :attr:`enabled`.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def push(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def pop(self) -> None:
        return None

    def unwind(self, span) -> None:
        return None

    def count(self, name: str, value: float = 1.0) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def record(self, name: str, value: float) -> None:
        return None

    @property
    def current(self) -> _NullSpan:
        return _NULL_SPAN

    def span_path(self) -> str:
        return format_span_path(())

    def counter_totals(self) -> Dict[str, float]:
        return {}

    def derived_metrics(self) -> Dict[str, float]:
        return {}

    def to_dict(self, **meta) -> dict:
        return {"schema": TRACE_SCHEMA, "meta": meta, "counters": {},
                "derived": {}, "spans": []}

    def to_json(self, *, indent: int | None = 2, **meta) -> str:
        return json.dumps(self.to_dict(**meta), indent=indent, sort_keys=True)


#: Module-level disabled tracer; the default everywhere.
NULL_TRACER = NullTracer()
