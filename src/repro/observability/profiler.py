"""Thread-timeline profiler over the simulated runtime.

The tracer (:mod:`repro.observability.tracer`) answers *how much* — span
totals and counters.  This module answers *where and when on the modelled
machine*: every parallel-for the simulated runtime records is captured as
a :class:`RegionRecord` (per-chunk work units, schedule, atomics, the
tracer span path as its label), and :meth:`Profiler.timeline` lays those
regions out as per-thread :class:`ThreadEvent` intervals on the simulated
clock — chunk executions, the per-thread atomic share, and barrier waits
— using exactly the cost-model arithmetic of
:meth:`repro.parallel.simthread.WorkLedger.simulate`, so the timeline's
per-phase totals agree with the modelled runtime.

Consumers:

- :func:`to_chrome_trace` emits the timeline in Chrome trace-event JSON
  (``chrome://tracing`` / Perfetto; one lane per simulated thread, one
  extra ``service`` lane for :class:`~repro.service.server.
  PartitionServer` request events, counter tracks for convergence marks,
  and — when the process engine ran under a profiler — real wall-clock
  lanes for its pool workers under their own process group);
- :mod:`repro.observability.profile_report` computes the critical-path /
  barrier-wait / load-imbalance attribution and the top-N text report
  behind ``repro profile``.

Capture is opt-in with the usual zero-cost disabled path: the runtime
holds :data:`NULL_PROFILER` by default and instrumented code guards on
``profiler.enabled``.  Everything is deterministic — two runs at the same
seed produce byte-identical Chrome trace JSON.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.parallel.costmodel import PAPER_MACHINE, MachineModel
from repro.parallel.schedule import Schedule

__all__ = [
    "PROFILE_SCHEMA",
    "PID_FLEET",
    "Mark",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "RegionRecord",
    "RegionTiming",
    "RequestRecord",
    "ThreadEvent",
    "Timeline",
    "WorkerRecord",
    "to_chrome_trace",
    "validate_chrome_trace",
]

#: Version tag embedded in the Chrome trace document's ``otherData``.
PROFILE_SCHEMA = "repro.profile/1"

#: Event categories emitted on the timeline.
CAT_CHUNK = "chunk"
CAT_ATOMICS = "atomics"
CAT_BARRIER = "barrier"
CAT_SERIAL = "serial"
CAT_REQUEST = "request"
CAT_WORKER = "worker"

#: Chrome trace process ids: the simulated machine, the service lane and
#: the process-engine worker lanes (real wall-clock, one lane per worker).
#: ``PID_FLEET`` holds the request-trace lanes (one per shard plus the
#: router) emitted by :mod:`repro.observability.reqtrace`; lanes under it
#: carry properly *nested* spans (a refresh span inside a serve span), so
#: the validator applies a containment rule there instead of the strict
#: non-overlap rule of the machine lanes.
PID_MACHINE = 0
PID_SERVICE = 1
PID_WORKERS = 2
PID_FLEET = 3


@dataclass(frozen=True)
class RegionRecord:
    """One captured execution region (mirror of the ledger's ``Region``)."""

    index: int
    kind: str                 # "parallel" | "serial"
    phase: str
    label: str                # tracer span path at record time, or phase
    chunk_costs: np.ndarray   # per-chunk work units; 1-elem for serial
    schedule: Schedule
    atomics: float


@dataclass(frozen=True)
class Mark:
    """A point annotation anchored to the end of region ``region_index-1``
    (i.e. recorded after that many regions); rendered as a Chrome counter
    sample — the convergence monitor's per-iteration ΔQ markers."""

    region_index: int
    name: str
    value: float


@dataclass(frozen=True)
class RequestRecord:
    """One service request interval on the server's logical clock."""

    name: str
    start_units: float
    duration_units: float
    args: Tuple[Tuple[str, object], ...] = ()


@dataclass(frozen=True)
class WorkerRecord:
    """One *measured* kernel execution on a worker process.

    Unlike every other record these carry real wall-clock seconds
    (relative to the pool's epoch), so they are only captured when the
    caller explicitly profiles the process engine — the default capture
    path stays byte-deterministic.
    """

    worker_id: int
    name: str
    start: float
    end: float
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ThreadEvent:
    """One interval on one simulated-thread lane (seconds)."""

    tid: int
    name: str
    cat: str
    start: float
    end: float
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RegionTiming:
    """Per-region timing summary derived while building the timeline."""

    record: RegionRecord
    start: float
    end: float                     # incl. atomic share + barrier
    busy: np.ndarray               # per-thread busy seconds (chunks+atomics)
    barrier_cost: float            # modelled barrier seconds of this region
    imbalance_wait: float          # sum over threads of (span - finish)

    @property
    def seconds(self) -> float:
        return self.end - self.start


class Timeline:
    """The fully laid-out thread timeline at one thread count."""

    def __init__(
        self,
        num_threads: int,
        machine: MachineModel,
        events: List[ThreadEvent],
        regions: List[RegionTiming],
        marks: List[Tuple[float, Mark]],
        requests: List[RequestRecord],
        workers: List[WorkerRecord] | None = None,
    ) -> None:
        self.num_threads = num_threads
        self.machine = machine
        self.events = events
        self.regions = regions
        self.marks = marks
        self.requests = requests
        self.workers = workers if workers is not None else []

    @property
    def total_seconds(self) -> float:
        return self.regions[-1].end if self.regions else 0.0

    def phase_seconds(self) -> Dict[str, float]:
        """Timeline seconds per phase tag (region span incl. barrier)."""
        out: Dict[str, float] = {}
        for r in self.regions:
            out[r.record.phase] = out.get(r.record.phase, 0.0) + r.seconds
        return out

    def thread_busy_seconds(self) -> np.ndarray:
        """Total busy seconds per thread lane."""
        busy = np.zeros(self.num_threads)
        for r in self.regions:
            busy += r.busy
        return busy


def _assign_greedy(costs: np.ndarray, num_threads: int) -> Tuple[np.ndarray, np.ndarray]:
    """Earliest-free-thread chunk assignment (OpenMP dynamic semantics).

    Ties break toward the lowest thread id, which leaves the makespan
    identical to :func:`repro.parallel.schedule.makespan` (tied threads
    are interchangeable).  Returns ``(owner, start_units)`` per chunk.
    """
    n = costs.shape[0]
    owner = np.empty(n, dtype=np.int32)
    start = np.empty(n, dtype=np.float64)
    heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    for c in range(n):
        busy, t = heapq.heappop(heap)
        owner[c] = t
        start[c] = busy
        heapq.heappush(heap, (busy + float(costs[c]), t))
    return owner, start


def _assign_static(costs: np.ndarray, num_threads: int) -> Tuple[np.ndarray, np.ndarray]:
    """Round-robin chunk assignment (OpenMP static semantics)."""
    n = costs.shape[0]
    owner = (np.arange(n, dtype=np.int64) % num_threads).astype(np.int32)
    start = np.empty(n, dtype=np.float64)
    busy = np.zeros(num_threads)
    for c in range(n):
        t = owner[c]
        start[c] = busy[t]
        busy[t] += float(costs[c])
    return owner, start


class Profiler:
    """Captures region records during a run; builds timelines on demand.

    Parameters
    ----------
    machine:
        Machine model timing the events (default: the paper testbed).
    num_threads:
        Default thread count of :meth:`timeline` and of the modelled
        region seconds returned by :meth:`record_region` (which the
        runtime feeds back into the tracer as the
        ``modeled_region_seconds`` counter).
    """

    enabled = True

    def __init__(
        self,
        *,
        machine: MachineModel | None = None,
        num_threads: int = 8,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.machine = machine or PAPER_MACHINE
        self.num_threads = int(num_threads)
        self.regions: List[RegionRecord] = []
        self.marks: List[Mark] = []
        self.requests: List[RequestRecord] = []
        self.workers: List[WorkerRecord] = []
        self._request_cursor = 0.0

    # -- capture (called by the runtime / phases / server) -----------------

    def record_region(self, region, *, label: str | None = None) -> float:
        """Capture one ledger region; returns its modelled seconds at
        :attr:`num_threads` (what the region contributes to the timeline
        clock, barrier included)."""
        rec = RegionRecord(
            index=len(self.regions),
            kind=region.kind,
            phase=region.phase,
            label=label or region.phase,
            chunk_costs=region.chunk_costs,
            schedule=region.schedule,
            atomics=region.atomics,
        )
        self.regions.append(rec)
        return self._region_seconds(rec, self.num_threads)

    def mark(self, name: str, value: float = 1.0) -> None:
        """Annotate the current point of the run (between regions)."""
        self.marks.append(Mark(len(self.regions), name, float(value)))

    def request(self, name: str, duration_units: float, **args) -> None:
        """Record one service request interval on the logical clock."""
        self.requests.append(RequestRecord(
            name, self._request_cursor, float(duration_units),
            tuple(sorted(args.items())),
        ))
        self._request_cursor += float(duration_units)

    def worker_event(
        self, worker_id: int, name: str, start: float, end: float, **args
    ) -> None:
        """Record one *measured* kernel execution on a pool worker.

        ``start``/``end`` are wall-clock seconds relative to the pool's
        epoch (what :class:`~repro.parallel.procpool.TaskResult`
        carries).  These land on real-time worker lanes in the Chrome
        trace — deliberately separate from the simulated-machine lanes,
        whose clock stays deterministic.
        """
        self.workers.append(WorkerRecord(
            int(worker_id), name, float(start), float(end),
            tuple(sorted(args.items())),
        ))

    # -- timing ------------------------------------------------------------

    def _region_seconds(self, rec: RegionRecord, num_threads: int) -> float:
        m = self.machine
        if rec.kind == "serial":
            return float(rec.chunk_costs[0]) * m.time_per_unit
        costs = rec.chunk_costs + m.chunk_overhead_units
        if rec.schedule.kind == "static":
            per_thread = np.bincount(
                np.arange(costs.shape[0], dtype=np.int64) % num_threads,
                weights=costs, minlength=num_threads)
            span = float(per_thread.max())
        elif num_threads <= 1:
            span = float(costs.sum())
        else:
            heap = [0.0] * num_threads
            heapq.heapify(heap)
            for c in costs:
                heapq.heappush(heap, heapq.heappop(heap) + float(c))
            span = max(heap)
        slowdown = m.parallel_slowdown(num_threads)
        seconds = span * m.time_per_unit * slowdown
        seconds += (rec.atomics * m.atomic_seconds * slowdown
                    / max(1, num_threads))
        seconds += m.barrier_seconds(num_threads)
        return seconds

    def timeline(self, num_threads: int | None = None) -> Timeline:
        """Lay every captured region out on per-thread lanes.

        Mirrors :meth:`~repro.parallel.simthread.WorkLedger.simulate`
        region by region: chunk durations pay the machine's per-thread
        slowdown, every thread appends its equal share of the region's
        atomics, and the region closes with an implicit barrier — each
        thread's gap between its own finish and the region end becomes a
        ``barrier`` wait event (imbalance + barrier cost).
        """
        T = int(num_threads) if num_threads is not None else self.num_threads
        if T < 1:
            raise ValueError("num_threads must be >= 1")
        m = self.machine
        slowdown = m.parallel_slowdown(T)
        unit_sec = m.time_per_unit * slowdown
        bar = m.barrier_seconds(T)
        events: List[ThreadEvent] = []
        regions: List[RegionTiming] = []
        clock = 0.0
        for rec in self.regions:
            t0 = clock
            busy = np.zeros(T)
            if rec.kind == "serial":
                dur = float(rec.chunk_costs[0]) * m.time_per_unit
                events.append(ThreadEvent(
                    0, rec.label, CAT_SERIAL, t0, t0 + dur,
                    {"region": rec.index, "phase": rec.phase,
                     "work_units": float(rec.chunk_costs[0])},
                ))
                busy[0] = dur
                regions.append(RegionTiming(
                    record=rec, start=t0, end=t0 + dur, busy=busy,
                    barrier_cost=0.0, imbalance_wait=dur * (T - 1),
                ))
                clock = t0 + dur
                continue
            costs = rec.chunk_costs + m.chunk_overhead_units
            if rec.schedule.kind == "static":
                owner, start_units = _assign_static(costs, T)
            else:
                owner, start_units = _assign_greedy(costs, T)
            finish = np.zeros(T)
            for c in range(costs.shape[0]):
                tid = int(owner[c])
                s = t0 + start_units[c] * unit_sec
                e = s + float(costs[c]) * unit_sec
                events.append(ThreadEvent(
                    tid, rec.label, CAT_CHUNK, s, e,
                    {"region": rec.index, "phase": rec.phase, "chunk": c,
                     "work_units": float(rec.chunk_costs[c])},
                ))
                finish[tid] = e - t0
            share = rec.atomics * m.atomic_seconds * slowdown / T
            if share > 0.0:
                for tid in range(T):
                    events.append(ThreadEvent(
                        tid, f"{rec.label} (atomics)", CAT_ATOMICS,
                        t0 + finish[tid], t0 + finish[tid] + share,
                        {"region": rec.index, "phase": rec.phase,
                         "atomic_ops": rec.atomics / T},
                    ))
                finish += share
            span = float(finish.max())
            end = t0 + span + bar
            waits = span - finish
            for tid in range(T):
                wait = float(waits[tid]) + bar
                if wait > 0.0:
                    events.append(ThreadEvent(
                        tid, f"{rec.label} (barrier)", CAT_BARRIER,
                        t0 + float(finish[tid]), end,
                        {"region": rec.index, "phase": rec.phase},
                    ))
            regions.append(RegionTiming(
                record=rec, start=t0, end=end, busy=finish.copy(),
                barrier_cost=bar, imbalance_wait=float(waits.sum()),
            ))
            clock = end
        # Anchor marks to the end of the region they follow.
        ends = [r.end for r in regions]
        placed_marks = [
            (ends[mk.region_index - 1] if mk.region_index > 0 else 0.0, mk)
            for mk in self.marks
        ]
        return Timeline(T, m, events, regions, placed_marks,
                        list(self.requests), list(self.workers))


class NullProfiler:
    """Disabled profiler: every operation is a no-op."""

    enabled = False

    def record_region(self, region, *, label: str | None = None) -> float:
        return 0.0

    def mark(self, name: str, value: float = 1.0) -> None:
        return None

    def request(self, name: str, duration_units: float, **args) -> None:
        return None

    def worker_event(
        self, worker_id: int, name: str, start: float, end: float, **args
    ) -> None:
        return None


#: Module-level disabled profiler; the runtime default.
NULL_PROFILER = NullProfiler()


# -- Chrome trace-event export ------------------------------------------------


def to_chrome_trace(timeline: Timeline, **meta) -> dict:
    """The timeline as a Chrome trace-event JSON document.

    Loadable in ``chrome://tracing`` and Perfetto: one lane per simulated
    thread under the machine process, service requests under their own
    process, convergence marks as counter tracks.  Timestamps are the
    simulated clock in microseconds; the document is deterministic (byte
    identical across runs at a fixed seed).
    """
    m = timeline.machine
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": PID_MACHINE, "tid": 0,
         "args": {"name": f"simulated {m.name} @ {timeline.num_threads} "
                          f"threads"}},
    ]
    for tid in range(timeline.num_threads):
        events.append({"ph": "M", "name": "thread_name", "pid": PID_MACHINE,
                       "tid": tid, "args": {"name": f"thread {tid}"}})
    if timeline.requests:
        events.append({"ph": "M", "name": "process_name",
                       "pid": PID_SERVICE, "tid": 0,
                       "args": {"name": "partition server"}})
        events.append({"ph": "M", "name": "thread_name", "pid": PID_SERVICE,
                       "tid": 0, "args": {"name": "service"}})
    if timeline.workers:
        events.append({"ph": "M", "name": "process_name",
                       "pid": PID_WORKERS, "tid": 0,
                       "args": {"name": "pool workers (wall clock)"}})
        for wid in sorted({w.worker_id for w in timeline.workers}):
            events.append({"ph": "M", "name": "thread_name",
                           "pid": PID_WORKERS, "tid": wid,
                           "args": {"name": f"worker {wid}"}})
    for ev in timeline.events:
        events.append({
            "ph": "X", "name": ev.name, "cat": ev.cat,
            "pid": PID_MACHINE, "tid": ev.tid,
            "ts": ev.start * 1e6, "dur": ev.duration * 1e6,
            "args": ev.args,
        })
    for ts, mk in timeline.marks:
        events.append({
            "ph": "C", "name": mk.name, "cat": "convergence",
            "pid": PID_MACHINE, "tid": 0, "ts": ts * 1e6,
            "args": {"value": mk.value},
        })
    # Worker lanes carry measured wall-clock; emit each lane in start
    # order so the per-lane non-overlap contract holds (a worker runs
    # its tasks serially, but barrier drains return them index-sorted).
    for w in sorted(timeline.workers,
                    key=lambda r: (r.worker_id, r.start, r.end)):
        events.append({
            "ph": "X", "name": w.name, "cat": CAT_WORKER,
            "pid": PID_WORKERS, "tid": w.worker_id,
            "ts": w.start * 1e6, "dur": w.duration * 1e6,
            "args": dict(w.args),
        })
    unit_us = m.time_per_unit * 1e6
    for req in timeline.requests:
        events.append({
            "ph": "X", "name": req.name, "cat": CAT_REQUEST,
            "pid": PID_SERVICE, "tid": 0,
            "ts": req.start_units * unit_us,
            "dur": req.duration_units * unit_us,
            "args": dict(req.args),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": PROFILE_SCHEMA,
            "machine": m.as_dict(),
            "num_threads": timeline.num_threads,
            **meta,
        },
    }


def chrome_trace_json(doc: dict, *, indent: int | None = None) -> str:
    """Serialize a Chrome trace document deterministically."""
    return json.dumps(doc, indent=indent, sort_keys=True)


def validate_chrome_trace(doc: dict) -> Dict[str, object]:
    """Validate a Chrome trace-event document against the event schema.

    Checks the structural contract this module guarantees: required
    top-level keys, required per-event fields per phase type,
    non-negative timestamps/durations, and per-lane time ordering.
    Machine/service/worker lanes (pid below :data:`PID_FLEET`) require
    strictly non-overlapping duration events; request-trace lanes
    (pid >= :data:`PID_FLEET`) allow properly *nested* spans — each
    event must be disjoint from or fully contained in the enclosing
    open span.  Flow events (``s``/``t``/``f``, the cross-shard hop
    stitches) require an ``id`` and carry no duration.  Raises
    ``ValueError`` on the first violation; returns summary statistics
    (event count, lanes, flows, duration) on success — what the CI
    profile smoke step asserts on.
    """
    if not isinstance(doc, dict):
        raise ValueError("trace document must be a JSON object")
    for key in ("traceEvents", "otherData"):
        if key not in doc:
            raise ValueError(f"trace document missing {key!r}")
    other = doc["otherData"]
    if other.get("schema") != PROFILE_SCHEMA:
        raise ValueError(
            f"unsupported profile schema {other.get('schema')!r} "
            f"(expected {PROFILE_SCHEMA!r})")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    lanes: Dict[Tuple[int, int], float] = {}
    stacks: Dict[Tuple[int, int], List[float]] = {}
    flow_ids = set()
    named_lanes = 0
    end = 0.0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"event {i} is not an object with 'ph'")
        ph = ev["ph"]
        if ph not in ("M", "X", "C", "i", "s", "t", "f"):
            raise ValueError(f"event {i} has unknown phase type {ph!r}")
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_lanes += 1
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in ev:
                raise ValueError(f"event {i} ({ph}) missing {key!r}")
        if ev["ts"] < 0:
            raise ValueError(f"event {i} has negative ts")
        if ph in ("s", "t", "f"):
            if "id" not in ev:
                raise ValueError(f"event {i} (flow {ph}) missing 'id'")
            if "dur" in ev:
                raise ValueError(f"event {i} (flow {ph}) carries 'dur'")
            flow_ids.add(ev["id"])
            continue
        if ph != "X":
            continue
        if "dur" not in ev or ev["dur"] < 0:
            raise ValueError(f"event {i} missing or negative dur")
        lane = (ev["pid"], ev["tid"])
        ts = ev["ts"]
        ev_end = ts + ev["dur"]
        if ev["pid"] >= PID_FLEET:
            # Request lanes nest (refresh inside serve inside a trace):
            # pop every span already closed at ts, then require the
            # event to fit inside whatever span is still open.
            st = stacks.setdefault(lane, [])
            while st and ts >= st[-1] - 1e-6:
                st.pop()
            if st and ev_end > st[-1] + 1e-6:
                raise ValueError(
                    f"event {i} partially overlaps enclosing span on "
                    f"lane {lane}")
            st.append(ev_end)
            lanes[lane] = max(lanes.get(lane, 0.0), ev_end)
        else:
            # Machine lanes interleave in emission order only within a
            # lane when the category is an execution interval; regions
            # are sequential, so all X events must be non-overlapping.
            prev_end = lanes.get(lane, 0.0)
            if ts < prev_end - 1e-6:
                raise ValueError(
                    f"event {i} overlaps previous event on lane {lane}")
            lanes[lane] = ev_end
        end = max(end, ev_end)
    if named_lanes < int(other.get("num_threads", 1)):
        raise ValueError("missing thread_name metadata for some lanes")
    return {
        "events": len(events),
        "lanes": len(lanes),
        "named_lanes": named_lanes,
        "flows": len(flow_ids),
        "duration_us": end,
    }


def _lane_events(timeline: Timeline, tid: int) -> List[ThreadEvent]:
    """All events of one thread lane in start order (test helper)."""
    evs = [e for e in timeline.events if e.tid == tid]
    evs.sort(key=lambda e: (e.start, e.end))
    return evs
