"""Analysis over profiler timelines: attribution and the text report.

Consumes a :class:`~repro.observability.profiler.Timeline` and (for the
convergence section) a ``repro.trace/2`` trace document, and computes
the figures the paper's evaluation leans on:

- **per-phase attribution** — modelled seconds per phase split into busy
  work on the critical path, barrier-wait caused by load skew, and the
  modelled barrier cost itself;
- **load-imbalance factor** — max/mean busy seconds across threads, per
  phase and per region;
- **scheduling-policy attribution** — seconds and imbalance grouped by
  the OpenMP-style schedule kind that produced them;
- **top-N regions** — the individual parallel-for instances that
  dominate the critical path;
- **convergence monitor** — per-pass ΔQ / vertices-visited / refinement
  splits / aggregation shrink extracted from the trace tree's series.

All output is deterministic: orderings are (value, name) sorted with
fixed float formatting, so two runs at the same seed render the same
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.observability.profiler import Timeline

__all__ = [
    "PhaseStats",
    "RegionStats",
    "ScheduleStats",
    "analyze_timeline",
    "convergence_rows",
    "format_profile_report",
]


@dataclass
class PhaseStats:
    """Attribution of one phase's modelled time."""

    phase: str
    seconds: float            # sum of region spans (incl. barrier)
    busy_seconds: float       # sum over threads of busy time
    critical_busy: float      # per-region max thread busy, summed
    barrier_wait: float       # skew wait: threads idle before the barrier
    barrier_cost: float       # modelled barrier cost
    regions: int
    imbalance: float          # max/mean busy across threads (phase total)


@dataclass
class RegionStats:
    """One region row for the top-N table."""

    index: int
    label: str
    phase: str
    schedule: str
    chunks: int
    seconds: float
    imbalance: float
    barrier_share: float      # (wait + cost) / span
    slowest_tid: int


@dataclass
class ScheduleStats:
    """Seconds and skew grouped by scheduling policy."""

    kind: str
    regions: int
    seconds: float
    barrier_wait: float
    efficiency: float         # mean busy / max busy (1.0 = perfect)


def analyze_timeline(
    timeline: Timeline,
) -> Tuple[List[PhaseStats], List[RegionStats], List[ScheduleStats]]:
    """Compute per-phase, per-region, and per-schedule attribution."""
    T = timeline.num_threads
    phase_busy: Dict[str, np.ndarray] = {}
    phase_acc: Dict[str, PhaseStats] = {}
    sched_acc: Dict[str, ScheduleStats] = {}
    sched_busy: Dict[str, np.ndarray] = {}
    region_rows: List[RegionStats] = []
    for r in timeline.regions:
        phase = r.record.phase
        ps = phase_acc.get(phase)
        if ps is None:
            ps = phase_acc[phase] = PhaseStats(
                phase, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)
            phase_busy[phase] = np.zeros(T)
        ps.seconds += r.seconds
        ps.busy_seconds += float(r.busy.sum())
        ps.critical_busy += float(r.busy.max())
        ps.barrier_wait += r.imbalance_wait
        ps.barrier_cost += r.barrier_cost * T
        ps.regions += 1
        phase_busy[phase] += r.busy

        kind = (r.record.schedule.kind if r.record.kind == "parallel"
                else "serial")
        ss = sched_acc.get(kind)
        if ss is None:
            ss = sched_acc[kind] = ScheduleStats(kind, 0, 0.0, 0.0, 0.0)
            sched_busy[kind] = np.zeros(T)
        ss.regions += 1
        ss.seconds += r.seconds
        ss.barrier_wait += r.imbalance_wait
        sched_busy[kind] += r.busy

        max_busy = float(r.busy.max())
        mean_busy = float(r.busy.mean())
        span = r.seconds
        region_rows.append(RegionStats(
            index=r.record.index,
            label=r.record.label,
            phase=phase,
            schedule=kind,
            chunks=int(r.record.chunk_costs.shape[0]),
            seconds=span,
            imbalance=(max_busy / mean_busy) if mean_busy > 0 else 1.0,
            barrier_share=((r.imbalance_wait / T + r.barrier_cost) / span
                           if span > 0 else 0.0),
            slowest_tid=int(np.argmax(r.busy)),
        ))
    for phase, ps in phase_acc.items():
        busy = phase_busy[phase]
        mean = float(busy.mean())
        ps.imbalance = (float(busy.max()) / mean) if mean > 0 else 1.0
    for kind, ss in sched_acc.items():
        busy = sched_busy[kind]
        mx = float(busy.max())
        ss.efficiency = (float(busy.mean()) / mx) if mx > 0 else 1.0
    phases = sorted(phase_acc.values(),
                    key=lambda p: (-p.seconds, p.phase))
    regions = sorted(region_rows, key=lambda r: (-r.seconds, r.index))
    scheds = sorted(sched_acc.values(), key=lambda s: (-s.seconds, s.kind))
    return phases, regions, scheds


def _walk_spans(spans: Sequence[dict]):
    for s in spans:
        yield s
        yield from _walk_spans(s.get("children", ()))


def convergence_rows(trace_doc: dict) -> List[dict]:
    """Extract the convergence monitor from a ``repro.trace/2`` document.

    One row per Leiden pass: modularity delta per local-moving iteration,
    vertices processed (pruning effectiveness), refinement split count,
    and aggregation shrink ratio — read from span attrs and series.
    """
    rows: List[dict] = []
    for span in _walk_spans(trace_doc.get("spans", ())):
        if span.get("name") != "pass":
            continue
        series: Dict[str, List[float]] = {}
        for child in _walk_spans(span.get("children", ())):
            for key, values in child.get("series", {}).items():
                series.setdefault(key, []).extend(values)
        for key, values in span.get("series", {}).items():
            series.setdefault(key, []).extend(values)
        counters: Dict[str, float] = {}
        for child in _walk_spans([span]):
            for key, value in child.get("counters", {}).items():
                counters[key] = counters.get(key, 0.0) + value
        dq = series.get("move_delta_q", [])
        visited = series.get("move_visited", [])
        shrink = series.get("aggregation_shrink", [])
        rows.append({
            "pass": span.get("attrs", {}).get("index", len(rows)),
            "iterations": len(dq),
            "delta_q": float(sum(dq)),
            "delta_q_series": [float(v) for v in dq],
            "visited": float(sum(visited)),
            "visited_series": [float(v) for v in visited],
            "pruning_skipped": counters.get("pruning_skipped", 0.0),
            "refine_splits": float(sum(series.get("refine_splits", []))),
            "shrink_ratio": float(shrink[-1]) if shrink else float("nan"),
            "communities": span.get("attrs", {}).get("communities"),
        })
    rows.sort(key=lambda r: r["pass"])
    return rows


def _fmt_s(seconds: float) -> str:
    return f"{seconds * 1e3:10.4f} ms"


def format_profile_report(
    timeline: Timeline,
    *,
    trace_doc: Optional[dict] = None,
    top: int = 5,
    title: str = "",
) -> str:
    """Render the deterministic text report behind ``repro profile``."""
    phases, regions, scheds = analyze_timeline(timeline)
    T = timeline.num_threads
    total = timeline.total_seconds
    lines: List[str] = []
    header = f"profile: {title}" if title else "profile"
    lines.append(header)
    lines.append("=" * len(header))
    lines.append(f"machine: {timeline.machine.name}  threads: {T}  "
                 f"modelled total: {total * 1e3:.4f} ms  "
                 f"regions: {len(timeline.regions)}")
    lines.append("")
    lines.append("per-phase attribution (modelled seconds)")
    lines.append(f"  {'phase':<12} {'seconds':>12} {'share':>7} "
                 f"{'critical':>12} {'barrier-wait':>13} {'imbalance':>10} "
                 f"{'regions':>8}")
    for p in phases:
        share = p.seconds / total if total > 0 else 0.0
        # barrier-wait share: idle thread-seconds (skew + barrier cost)
        # as a fraction of this phase's total thread-seconds.
        denom = p.seconds * T
        wait_share = ((p.barrier_wait + p.barrier_cost) / denom
                      if denom > 0 else 0.0)
        lines.append(
            f"  {p.phase:<12} {p.seconds * 1e3:10.4f} ms {share:6.1%} "
            f"{p.critical_busy * 1e3:10.4f} ms {wait_share:12.1%} "
            f"{p.imbalance:9.3f}x {p.regions:8d}")
    lines.append("")
    lines.append("scheduling-policy attribution")
    lines.append(f"  {'policy':<9} {'regions':>8} {'seconds':>12} "
                 f"{'efficiency':>11}")
    for s in scheds:
        lines.append(f"  {s.kind:<9} {s.regions:8d} "
                     f"{s.seconds * 1e3:10.4f} ms {s.efficiency:10.1%}")
    lines.append("")
    busy = timeline.thread_busy_seconds()
    mean = float(busy.mean()) if T else 0.0
    imb = (float(busy.max()) / mean) if mean > 0 else 1.0
    util = (mean / total) if total > 0 else 0.0
    lines.append(f"threads: busy mean {mean * 1e3:.4f} ms, "
                 f"max {float(busy.max()) * 1e3:.4f} ms "
                 f"(imbalance {imb:.3f}x), utilization {util:.1%}")
    lines.append("")
    lines.append(f"top {min(top, len(regions))} regions by modelled span")
    lines.append(f"  {'#':>4} {'label':<34} {'policy':<8} {'chunks':>6} "
                 f"{'seconds':>12} {'imbal':>7} {'barrier':>8} {'slow':>5}")
    for r in regions[:top]:
        label = r.label if len(r.label) <= 34 else "…" + r.label[-33:]
        lines.append(
            f"  {r.index:>4} {label:<34} {r.schedule:<8} {r.chunks:>6} "
            f"{r.seconds * 1e3:10.4f} ms {r.imbalance:6.2f}x "
            f"{r.barrier_share:7.1%} t{r.slowest_tid:<4}")
    if trace_doc is not None:
        rows = convergence_rows(trace_doc)
        if rows:
            lines.append("")
            lines.append("convergence monitor")
            lines.append(f"  {'pass':>4} {'iters':>6} {'delta-Q':>12} "
                         f"{'visited':>10} {'splits':>8} {'shrink':>8} "
                         f"{'comms':>8}")
            for row in rows:
                shrink = row["shrink_ratio"]
                shrink_s = f"{shrink:8.4f}" if shrink == shrink else "     n/a"
                comms = row["communities"]
                comms_s = f"{comms:8d}" if isinstance(comms, int) else "     n/a"
                lines.append(
                    f"  {row['pass']:>4} {row['iterations']:>6} "
                    f"{row['delta_q']:12.6f} {row['visited']:10.0f} "
                    f"{row['refine_splits']:8.0f} {shrink_s} {comms_s}")
    if timeline.requests:
        lines.append("")
        unit = timeline.machine.time_per_unit
        total_req = sum(r.duration_units for r in timeline.requests) * unit
        lines.append(f"service lane: {len(timeline.requests)} requests, "
                     f"{total_req * 1e3:.4f} ms modelled")
    lines.append("")
    return "\n".join(lines)
