"""Typed metric instruments, the process-wide registry, and exposition.

The third observability pillar next to traces (:mod:`~repro.observability.
tracer`) and thread-timeline profiles (:mod:`~repro.observability.
profiler`): aggregatable, label-dimensioned time series of runtime
counters.  A :class:`MetricsRegistry` owns a set of named instruments —

- :class:`Counter` — monotonically increasing totals (requests served,
  atomic operations, chunks dispatched);
- :class:`Gauge` — set-to-current values (queue depth, store bytes,
  community count of the last run);
- :class:`Histogram` — power-of-two exponent-bucketed distributions
  (request latency in logical-clock units, batch sizes), the same bucket
  machinery the tracer's observation histograms use — this module is its
  single home (:func:`bucket_of` / :func:`bucket_percentile`) and
  :mod:`repro.observability.tracer` imports it from here.

Instruments carry **label sets** (``("kind",)``, ``("phase", "policy")``)
with a hard cardinality bound: once an instrument holds ``max_series``
distinct label combinations, further new combinations all collapse into
one reserved ``_overflow`` series, so a mis-labeled hot loop can never
grow memory without bound.  Iteration order is deterministic everywhere
(families sorted by name, series by label values), which makes both
exporters byte-deterministic:

- :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  format 0.0.4 (validated by :func:`validate_prometheus`);
- :meth:`MetricsRegistry.to_snapshot` / :meth:`~MetricsRegistry.to_json`
  — a schema-versioned JSON document (:data:`METRICS_SCHEMA`).

Disabled collection is zero-cost via the :data:`NULL_REGISTRY` pattern
(mirroring ``NULL_TRACER`` / ``NULL_PROFILER``): every factory returns a
shared no-op instrument, and hot loops that must *compute* a value to
feed an instrument guard on :attr:`MetricsRegistry.enabled`.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import MetricsError

__all__ = [
    "METRICS_SCHEMA",
    "BUCKET_MIN_EXP",
    "BUCKET_MAX_EXP",
    "BUCKET_ZERO",
    "bucket_of",
    "bucket_estimate",
    "bucket_percentile",
    "exact_percentile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "validate_prometheus",
]

#: Version tag embedded in every emitted metrics snapshot.
METRICS_SCHEMA = "repro.metrics/1"

#: Histogram bucket exponent bounds: a value ``v`` lands in bucket ``e``
#: when ``2**(e-1) < v <= 2**e``, clamped to this range.  Non-positive
#: values use the sentinel bucket :data:`BUCKET_ZERO`.
BUCKET_MIN_EXP = -40
BUCKET_MAX_EXP = 41
BUCKET_ZERO = -41

#: Label value every over-cardinality series collapses into.
OVERFLOW_LABEL = "_overflow"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def bucket_of(value: float) -> int:
    """Exponent bucket of ``value`` (shared tracer/metrics machinery)."""
    if value <= 0.0:
        return BUCKET_ZERO
    exp = math.frexp(value)[1]
    return min(max(exp, BUCKET_MIN_EXP), BUCKET_MAX_EXP)


def bucket_estimate(exp: int) -> float:
    """Representative value of bucket ``exp`` (arithmetic midpoint)."""
    if exp == BUCKET_ZERO:
        return 0.0
    return 0.75 * 2.0 ** exp


def bucket_percentile(buckets: Dict[int, int], q: float) -> float:
    """Nearest-rank percentile estimate from an exponent histogram.

    ``q`` is in ``[0, 100]``.  The estimate is the midpoint of the
    bucket containing the nearest-rank sample, so it is accurate to a
    factor of ~1.5 — enough for p50/p99 latency reporting without
    retaining individual samples.
    """
    total = sum(buckets.values())
    if total == 0:
        return 0.0
    rank = max(math.ceil(q / 100.0 * total), 1)
    cum = 0
    for exp in sorted(buckets):
        cum += buckets[exp]
        if cum >= rank:
            return bucket_estimate(exp)
    return bucket_estimate(max(buckets))  # pragma: no cover - defensive


def exact_percentile(values: Sequence, q: float):
    """Nearest-rank percentile of raw ``values`` (0 for an empty list).

    The single shared implementation behind the partition server's
    deterministic latency stats (formerly ``service.server.percentile``)
    and any caller that retains individual samples.  Returns an element
    of ``values`` — integer inputs keep integer outputs, so documents
    built from it stay bitwise identical to the pre-dedup code.
    """
    if not values:
        return 0
    ordered = sorted(values)
    rank = max(math.ceil(q / 100.0 * len(ordered)), 1)
    return ordered[rank - 1]


def _fmt_value(v: float) -> str:
    """Deterministic Prometheus sample-value formatting."""
    f = float(v)
    if math.isinf(f):
        return "+Inf" if f > 0 else "-Inf"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_label_value(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(v: str) -> str:
    return v.replace("\\", "\\\\").replace("\n", "\\n")


def _label_body(labelnames: Tuple[str, ...], key: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    inner = ",".join(
        f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, key)
    )
    return "{" + inner + "}"


# -- instruments ---------------------------------------------------------------


class _Bound:
    """An instrument pre-bound to one label combination.

    Hot call sites resolve their labels once (``c = counter.labels(...)``)
    and then pay one method call plus one dict update per event.
    """

    __slots__ = ("_inst", "_key")

    def __init__(self, inst: "_Instrument", key: Tuple[str, ...]) -> None:
        self._inst = inst
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        self._inst._inc(self._key, value)

    def add(self, value: float) -> None:
        self._inst._add(self._key, value)

    def set(self, value: float) -> None:
        self._inst._set(self._key, value)

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._inst._observe(self._key, value, exemplar)


class _Instrument:
    """Shared series bookkeeping of all three instrument kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        max_series: int = 64,
    ) -> None:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for ln in labelnames:
            if not _LABEL_RE.match(ln) or ln.startswith("__"):
                raise MetricsError(f"invalid label name {ln!r} on {name!r}")
        if len(set(labelnames)) != len(labelnames):
            raise MetricsError(f"duplicate label names on {name!r}")
        if max_series < 1:
            raise MetricsError("max_series must be >= 1")
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_series = int(max_series)
        #: Label-routing events that landed in the ``_overflow`` series.
        self.overflowed = 0
        self._bound: Dict[Tuple[str, ...], _Bound] = {}
        if not labelnames:
            self._new_series(())

    # -- series management -------------------------------------------------

    def _series_keys(self) -> Iterable[Tuple[str, ...]]:
        raise NotImplementedError

    def _num_series(self) -> int:
        raise NotImplementedError

    def _new_series(self, key: Tuple[str, ...]) -> None:
        raise NotImplementedError

    def _has_series(self, key: Tuple[str, ...]) -> bool:
        raise NotImplementedError

    def labels(self, *values, **kw) -> _Bound:
        """The series for one label combination (created on first use).

        Values may be positional (in ``labelnames`` order), keyword, or a
        mix; everything is stringified.  A *new* combination past the
        ``max_series`` cardinality bound is routed to the single shared
        ``_overflow`` series instead of growing the instrument.
        """
        if kw:
            tail = tuple(kw[n] for n in self.labelnames[len(values):]
                         if n in kw)
            if len(values) + len(tail) != len(self.labelnames):
                raise MetricsError(
                    f"{self.name}: expected labels {self.labelnames}, "
                    f"got {values!r} + {sorted(kw)!r}")
            values = values + tail
        elif len(values) != len(self.labelnames):
            raise MetricsError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames}, got {len(values)}")
        key = tuple(str(v) for v in values)
        bound = self._bound.get(key)
        if bound is not None:
            return bound
        if not self._has_series(key) and self._num_series() >= self.max_series:
            self.overflowed += 1
            over = (OVERFLOW_LABEL,) * len(self.labelnames)
            if not self._has_series(over):
                self._new_series(over)
            # NOT cached under ``key``: later hits on the same key must
            # keep counting as overflow routing, and caching every
            # rejected key would itself grow without bound.
            return _Bound(self, over)
        if not self._has_series(key):
            self._new_series(key)
        bound = _Bound(self, key)
        self._bound[key] = bound
        return bound

    # -- mutation entry points (overridden per kind) -----------------------

    def _inc(self, key, value) -> None:
        raise MetricsError(f"{self.kind} {self.name!r} does not support inc()")

    def _add(self, key, value) -> None:
        raise MetricsError(f"{self.kind} {self.name!r} does not support add()")

    def _set(self, key, value) -> None:
        raise MetricsError(f"{self.kind} {self.name!r} does not support set()")

    def _observe(self, key, value, exemplar=None) -> None:
        raise MetricsError(
            f"{self.kind} {self.name!r} does not support observe()")

    def _check_unlabeled(self) -> None:
        if self.labelnames:
            raise MetricsError(
                f"{self.name} carries labels {self.labelnames}; "
                "bind them with .labels(...) first")

    # -- emission ----------------------------------------------------------

    def _series_dicts(self) -> List[dict]:
        raise NotImplementedError

    def _prometheus_lines(self) -> List[str]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}({self.name!r}, "
                f"series={self._num_series()})")


class Counter(_Instrument):
    """A monotonically increasing total (per label combination)."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=(), *, max_series=64):
        self._values: Dict[Tuple[str, ...], float] = {}
        super().__init__(name, help, labelnames, max_series=max_series)

    def _series_keys(self):
        return self._values.keys()

    def _num_series(self):
        return len(self._values)

    def _new_series(self, key):
        self._values[key] = 0.0

    def _has_series(self, key):
        return key in self._values

    def inc(self, value: float = 1.0) -> None:
        """Increment the (label-less) counter by ``value`` (>= 0)."""
        self._check_unlabeled()
        self._inc((), value)

    def _inc(self, key, value=1.0):
        if value < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {value})")
        self._values[key] += float(value)

    def value(self, *label_values) -> float:
        """Current total of one series (testing/inspection helper)."""
        return self._values.get(tuple(str(v) for v in label_values), 0.0)

    def _series_dicts(self):
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": v}
            for key, v in sorted(self._values.items())
        ]

    def _prometheus_lines(self):
        return [
            f"{self.name}{_label_body(self.labelnames, key)} {_fmt_value(v)}"
            for key, v in sorted(self._values.items())
        ]


class Gauge(_Instrument):
    """A set-to-current value (per label combination)."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=(), *, max_series=64):
        self._values: Dict[Tuple[str, ...], float] = {}
        super().__init__(name, help, labelnames, max_series=max_series)

    _series_keys = Counter._series_keys
    _num_series = Counter._num_series
    _new_series = Counter._new_series
    _has_series = Counter._has_series
    value = Counter.value
    _series_dicts = Counter._series_dicts
    _prometheus_lines = Counter._prometheus_lines

    def set(self, value: float) -> None:
        self._check_unlabeled()
        self._set((), value)

    def add(self, value: float) -> None:
        self._check_unlabeled()
        self._add((), value)

    def _set(self, key, value):
        self._values[key] = float(value)

    def _add(self, key, value):
        self._values[key] += float(value)


class _HistogramData:
    """One histogram series: exponent buckets plus exact summary stats."""

    __slots__ = ("count", "sum", "min", "max", "buckets", "exemplars")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[int, int] = {}
        #: Per-bucket representative sample: exponent -> (value, trace_id).
        #: Deterministic keep rule: the largest value wins, first-seen on
        #: ties — so merges and double runs pick identical exemplars.
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def keep_exemplar(self, exp: int, value: float, trace_id: str) -> None:
        cur = self.exemplars.get(exp)
        if cur is None or value > cur[0]:
            self.exemplars[exp] = (float(value), str(trace_id))


class Histogram(_Instrument):
    """A power-of-two exponent-bucketed distribution (per label set).

    Buckets are the shared :func:`bucket_of` exponents — the same layout
    the tracer's observation histograms use, so the two report identical
    :func:`bucket_percentile` estimates for identical samples.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), *, max_series=64):
        self._data: Dict[Tuple[str, ...], _HistogramData] = {}
        super().__init__(name, help, labelnames, max_series=max_series)

    def _series_keys(self):
        return self._data.keys()

    def _num_series(self):
        return len(self._data)

    def _new_series(self, key):
        self._data[key] = _HistogramData()

    def _has_series(self, key):
        return key in self._data

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        self._check_unlabeled()
        self._observe((), value, exemplar)

    def _observe(self, key, value, exemplar=None):
        v = float(value)
        d = self._data[key]
        d.count += 1
        d.sum += v
        if v < d.min:
            d.min = v
        if v > d.max:
            d.max = v
        b = bucket_of(v)
        d.buckets[b] = d.buckets.get(b, 0) + 1
        if exemplar is not None:
            d.keep_exemplar(b, v, exemplar)

    def _inject(
        self,
        key: Tuple[str, ...],
        buckets: Dict[int, int],
        stats: Optional[Dict[str, float]] = None,
        exemplars: Optional[Dict[int, Tuple[float, str]]] = None,
    ) -> None:
        """Merge pre-bucketed observations (the tracer re-export path).

        ``stats`` carries exact ``count/sum/min/max`` when the producer
        retained them; otherwise the count comes from the buckets and
        sum/min/max stay at their bucket-estimate defaults.  ``exemplars``
        (the registry-merge path) fold in under the same largest-value
        keep rule as live observations.
        """
        if not self._has_series(key):
            self.labels(*key)
        d = self._data.get(key)
        if d is None:  # routed to overflow by the cardinality bound
            d = self._data[(OVERFLOW_LABEL,) * len(self.labelnames)]
        added = 0
        for exp, c in buckets.items():
            d.buckets[exp] = d.buckets.get(exp, 0) + int(c)
            added += int(c)
        d.count += added
        if stats is not None:
            d.sum += float(stats["sum"])
            d.min = min(d.min, float(stats["min"]))
            d.max = max(d.max, float(stats["max"]))
        else:
            d.sum += sum(bucket_estimate(e) * c for e, c in buckets.items())
        if exemplars:
            for exp in sorted(exemplars):
                v, tid = exemplars[exp]
                d.keep_exemplar(exp, v, tid)

    def percentile(self, q: float, *label_values) -> float:
        """Bucket-estimate percentile of one series."""
        key = tuple(str(v) for v in label_values)
        d = self._data.get(key)
        return bucket_percentile(d.buckets, q) if d is not None else 0.0

    def _series_dicts(self):
        out = []
        for key, d in sorted(self._data.items()):
            series = {
                "labels": dict(zip(self.labelnames, key)),
                "count": d.count,
                "sum": d.sum,
                "min": d.min if d.count else 0.0,
                "max": d.max if d.count else 0.0,
                "buckets": {str(e): c for e, c in sorted(d.buckets.items())},
            }
            if d.exemplars:
                series["exemplars"] = {
                    str(e): {"trace_id": tid, "value": v}
                    for e, (v, tid) in sorted(d.exemplars.items())
                }
            out.append(series)
        return out

    def _prometheus_lines(self):
        lines: List[str] = []
        for key, d in sorted(self._data.items()):
            cum = 0
            for exp in sorted(d.buckets):
                cum += d.buckets[exp]
                le = "0" if exp == BUCKET_ZERO else _fmt_value(2.0 ** exp)
                body = _label_body(
                    self.labelnames + ("le",), key + (le,))
                line = f"{self.name}_bucket{body} {cum}"
                ex = d.exemplars.get(exp)
                if ex is not None:
                    # OpenMetrics-style exemplar suffix, buckets only.
                    v, tid = ex
                    tid = _escape_label_value(tid)
                    line += f' # {{trace_id="{tid}"}} {_fmt_value(v)}'
                lines.append(line)
            body = _label_body(self.labelnames + ("le",), key + ("+Inf",))
            lines.append(f"{self.name}_bucket{body} {d.count}")
            base = _label_body(self.labelnames, key)
            lines.append(f"{self.name}_sum{base} {_fmt_value(d.sum)}")
            lines.append(f"{self.name}_count{base} {d.count}")
        return lines


# -- the registry --------------------------------------------------------------


class MetricsRegistry:
    """Process-wide instrument registry with deterministic exposition.

    Factories are get-or-create: asking twice for the same name returns
    the same instrument (so instrumented modules need no global state),
    and asking with a conflicting kind or label set raises
    :class:`~repro.errors.MetricsError`.
    """

    enabled = True

    def __init__(self, *, max_series_per_instrument: int = 64) -> None:
        self.max_series_per_instrument = int(max_series_per_instrument)
        self._instruments: Dict[str, _Instrument] = {}

    # -- factories ---------------------------------------------------------

    def _get_or_create(self, cls, name, help, labelnames, max_series):
        inst = self._instruments.get(name)
        if inst is not None:
            if type(inst) is not cls or inst.labelnames != tuple(labelnames):
                raise MetricsError(
                    f"instrument {name!r} already registered as "
                    f"{inst.kind} with labels {inst.labelnames}")
            return inst
        inst = cls(
            name, help, labelnames,
            max_series=max_series or self.max_series_per_instrument,
        )
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = (), *,
                max_series: Optional[int] = None) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames, max_series)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = (), *,
              max_series: Optional[int] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames, max_series)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (), *,
                  max_series: Optional[int] = None) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, max_series)

    # -- inspection --------------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        """All instruments, sorted by name (deterministic iteration)."""
        return [self._instruments[n] for n in sorted(self._instruments)]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- tracer re-export --------------------------------------------------

    def merge_tracer(self, tracer, prefix: str = "trace_") -> List[str]:
        """Re-export a tracer's observation histograms as instruments.

        Every distribution observed anywhere in ``tracer``'s span tree
        becomes a ``{prefix}{name}`` histogram whose buckets are the
        subtree-merged tracer buckets and whose count/sum/min/max are the
        exact merged span stats — so ``repro trace`` and ``repro
        metrics`` report identical p50/p99 for the same run.  Returns the
        instrument names created or updated.
        """
        buckets = tracer.root.bucket_totals()
        stats = tracer.root.stats_totals()
        names: List[str] = []
        for name in sorted(buckets):
            hist = self.histogram(
                prefix + name,
                help=f"tracer observation histogram {name!r} (re-export)",
            )
            hist._inject((), buckets[name], stats.get(name))
            names.append(hist.name)
        return names

    # -- registry merge (fleet aggregation) --------------------------------

    def merge(self, other: "MetricsRegistry") -> List[str]:
        """Fold every instrument of ``other`` into this registry.

        The fleet aggregation path: per-shard registries merge into one
        snapshot.  Same-name instruments must agree on kind and label
        set (the usual registry conflict rule applies).  Counters and
        histogram series *sum* per label key; gauges also sum — the
        fleet-meaningful reading of per-shard gauges like store bytes
        or queue depth is their total.  Returns the instrument names
        merged, sorted.
        """
        names: List[str] = []
        for inst in other.instruments():
            cls = type(inst)
            mine = self._get_or_create(
                cls, inst.name, inst.help, inst.labelnames,
                inst.max_series)
            if isinstance(inst, Histogram):
                for key, d in sorted(inst._data.items()):
                    if d.count:
                        mine._inject(key, d.buckets, {
                            "sum": d.sum, "min": d.min, "max": d.max},
                            d.exemplars)
                    elif not mine._has_series(key):
                        mine.labels(*key)
            else:
                for key, v in sorted(inst._values.items()):
                    # labels() handles overflow routing past the bound.
                    bound = mine.labels(*key)
                    mine._values[bound._key] += float(v)
            mine.overflowed += inst.overflowed
            names.append(inst.name)
        return sorted(names)

    # -- derived metrics ---------------------------------------------------

    def derived_metrics(self) -> Dict[str, float]:
        """p50/p99 bucket-estimates for every histogram series.

        Label-less series contribute ``{name}_p50`` / ``{name}_p99``;
        labeled series embed their label values
        (``service_latency_units_query_p99``) — matching the names
        :meth:`Tracer.derived_metrics` emits for the same distributions.
        """
        out: Dict[str, float] = {}
        for inst in self.instruments():
            if not isinstance(inst, Histogram):
                continue
            for key, d in sorted(inst._data.items()):
                tag = "_".join(key)
                stem = f"{inst.name}_{tag}" if tag else inst.name
                out[f"{stem}_p50"] = bucket_percentile(d.buckets, 50.0)
                out[f"{stem}_p99"] = bucket_percentile(d.buckets, 99.0)
        return out

    # -- exposition --------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4, byte-deterministic."""
        lines: List[str] = []
        for inst in self.instruments():
            if inst.help:
                lines.append(f"# HELP {inst.name} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {inst.name} {inst.kind}")
            lines.extend(inst._prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_snapshot(self, *, health: Optional[dict] = None, **meta) -> dict:
        """The registry as a JSON-ready document (:data:`METRICS_SCHEMA`).

        ``health`` attaches an SLO evaluation block (see
        :mod:`repro.observability.health`); ``meta`` is caller context
        (experiment name, seed, ...).  Deterministic: no wall-clock
        fields are added here, so a snapshot of deterministic
        instruments is byte-identical across runs.
        """
        families = {}
        for inst in self.instruments():
            fam = {
                "type": inst.kind,
                "help": inst.help,
                "labels": list(inst.labelnames),
                "series": inst._series_dicts(),
            }
            if inst.overflowed:
                fam["overflowed"] = inst.overflowed
            families[inst.name] = fam
        doc = {
            "schema": METRICS_SCHEMA,
            "meta": meta,
            "families": families,
            "derived": self.derived_metrics(),
        }
        if health is not None:
            doc["health"] = health
        return doc

    def to_json(self, *, indent: int | None = 2,
                health: Optional[dict] = None, **meta) -> str:
        return json.dumps(self.to_snapshot(health=health, **meta),
                          indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({len(self._instruments)} instruments)"


# -- the disabled registry -----------------------------------------------------


class _NullInstrument:
    """Shared no-op instrument: every mutation returns immediately."""

    __slots__ = ()
    name = "null"
    labelnames = ()
    overflowed = 0

    def labels(self, *values, **kw) -> "_NullInstrument":
        return self

    def inc(self, value: float = 1.0) -> None:
        return None

    def add(self, value: float) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        return None

    def value(self, *label_values) -> float:
        return 0.0

    def percentile(self, q: float, *label_values) -> float:
        return 0.0


class _NullCounter(_NullInstrument):
    kind = "counter"


class _NullGauge(_NullInstrument):
    kind = "gauge"


class _NullHistogram(_NullInstrument):
    kind = "histogram"


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Disabled registry: factories hand out shared no-op instruments.

    ``runtime.metrics.counter(...)`` allocates nothing and every
    mutation is a constant-time no-op, so uninstrumented runs pay one
    attribute read per site.  Code that must *compute* a value to feed
    an instrument guards on :attr:`enabled` instead.
    """

    enabled = False

    def counter(self, name, help="", labelnames=(), *, max_series=None):
        return NULL_COUNTER

    def gauge(self, name, help="", labelnames=(), *, max_series=None):
        return NULL_GAUGE

    def histogram(self, name, help="", labelnames=(), *, max_series=None):
        return NULL_HISTOGRAM

    def instruments(self) -> list:
        return []

    def get(self, name: str) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def merge_tracer(self, tracer, prefix: str = "trace_") -> list:
        return []

    def derived_metrics(self) -> Dict[str, float]:
        return {}

    def to_prometheus(self) -> str:
        return ""

    def to_snapshot(self, *, health=None, **meta) -> dict:
        doc = {"schema": METRICS_SCHEMA, "meta": meta, "families": {},
               "derived": {}}
        if health is not None:
            doc["health"] = health
        return doc

    def to_json(self, *, indent: int | None = 2, health=None, **meta) -> str:
        return json.dumps(self.to_snapshot(health=health, **meta),
                          indent=indent, sort_keys=True)


#: Module-level disabled registry; the default everywhere.
NULL_REGISTRY = NullRegistry()


# -- exposition validation -----------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>[+-]?(?:Inf|NaN|[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?))$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
#: OpenMetrics-style exemplar suffix: ``# {trace_id="..."} <value>``.
_EXEMPLAR_RE = re.compile(
    r"^(?P<labels>\{[^{}]*\})"
    r" (?P<value>[+-]?(?:Inf|NaN|[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?))$"
)


def _parse_labels(body: str, line_no: int) -> Dict[str, str]:
    inner = body[1:-1]
    out: Dict[str, str] = {}
    if not inner:
        return out
    # Split on commas outside escapes; exposition values never contain
    # raw commas inside quotes in our emitter, but be permissive.
    parts = re.findall(r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"', inner)
    joined = ",".join(parts)
    if joined != inner:
        raise ValueError(f"line {line_no}: malformed label body {body!r}")
    for part in parts:
        m = _LABEL_PAIR_RE.match(part)
        if m is None:
            raise ValueError(f"line {line_no}: malformed label pair {part!r}")
        if m.group("name") in out:
            raise ValueError(
                f"line {line_no}: duplicate label {m.group('name')!r}")
        out[m.group("name")] = m.group("value")
    return out


def validate_prometheus(text: str) -> Dict[str, int]:
    """Line-format checker for Prometheus text exposition 0.0.4.

    Verifies comment/sample line syntax, that every sample belongs to a
    ``# TYPE``-declared family, and histogram integrity per series
    (cumulative non-decreasing buckets, a ``+Inf`` bucket equal to
    ``_count``).  OpenMetrics-style exemplar suffixes
    (``# {trace_id="..."} <value>``) are accepted on histogram
    ``_bucket`` samples only — an exemplar on any other line is a
    violation.  Raises :class:`ValueError` on the first violation;
    returns ``{"families": n, "samples": n, "lines": n, "exemplars": n}``
    — the CI smoke step prints this as evidence the exposition parses
    cleanly.
    """
    types: Dict[str, str] = {}
    samples = 0
    exemplars = 0
    hist: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, object]] = {}
    lines = text.splitlines()
    for i, line in enumerate(lines, start=1):
        if not line:
            raise ValueError(f"line {i}: blank line in exposition")
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 4 and parts[1] == "HELP":
                parts.append("")
            if len(parts) < 4:
                raise ValueError(f"line {i}: malformed comment {line!r}")
            _, kw, name, rest = parts
            if not _NAME_RE.match(name):
                raise ValueError(f"line {i}: bad metric name {name!r}")
            if kw == "TYPE":
                if rest not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    raise ValueError(f"line {i}: unknown type {rest!r}")
                if name in types:
                    raise ValueError(f"line {i}: duplicate TYPE for {name!r}")
                types[name] = rest
            continue
        if line.startswith("#"):
            continue  # free-form comment
        body, sep, exemplar_part = line.partition(" # ")
        m = _SAMPLE_RE.match(body)
        if m is None:
            raise ValueError(f"line {i}: malformed sample line {line!r}")
        samples += 1
        name = m.group("name")
        labels = _parse_labels(m.group("labels") or "{}", i)
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[: -len(suffix)] if name.endswith(suffix) else None
            if stem and types.get(stem) == "histogram":
                family = stem
                break
        if family not in types:
            raise ValueError(
                f"line {i}: sample {name!r} precedes its # TYPE declaration")
        if sep:
            if types[family] != "histogram" or not name.endswith("_bucket"):
                raise ValueError(
                    f"line {i}: exemplar on non-histogram-bucket sample "
                    f"{name!r}")
            em = _EXEMPLAR_RE.match(exemplar_part)
            if em is None:
                raise ValueError(
                    f"line {i}: malformed exemplar {exemplar_part!r}")
            _parse_labels(em.group("labels"), i)
            exemplars += 1
        if types[family] == "histogram":
            key = (family,
                   tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le")))
            st = hist.setdefault(
                key, {"buckets": [], "count": None, "inf": None})
            value = float(m.group("value").replace("Inf", "inf"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(
                        f"line {i}: histogram bucket without le label")
                if labels["le"] == "+Inf":
                    st["inf"] = value
                else:
                    st["buckets"].append((float(labels["le"]), value))
            elif name.endswith("_count"):
                st["count"] = value
    for (family, key), st in sorted(hist.items()):
        cum = [v for _, v in st["buckets"]]
        if any(b > a for a, b in zip(cum[1:], cum)):
            raise ValueError(
                f"histogram {family}{dict(key)}: buckets not cumulative")
        les = [le for le, _ in st["buckets"]]
        if sorted(les) != les:
            raise ValueError(
                f"histogram {family}{dict(key)}: le bounds not sorted")
        if st["inf"] is None:
            raise ValueError(f"histogram {family}{dict(key)}: no +Inf bucket")
        if st["count"] is not None and st["count"] != st["inf"]:
            raise ValueError(
                f"histogram {family}{dict(key)}: +Inf bucket "
                f"{st['inf']} != _count {st['count']}")
    return {"families": len(types), "samples": samples, "lines": len(lines),
            "exemplars": exemplars}
