"""Rolling-window SLO evaluation on the partition server's logical clock.

Service-level objectives are declared as :class:`SLObjective` config — a
target on one recorded *signal* plus an error budget — and classified by
the multi-window, multi-burn-rate method (Google SRE workbook chapter
5): the **burn rate** is the fraction of bad events in a window divided
by the budget, and an alert fires only when *both* a long window (is the
budget really burning?) and a short window (is it still burning *now*?)
exceed the threshold.  Two thresholds give three states:

- ``PAGE`` — burn ≥ ``page_burn`` in both windows (budget exhausts far
  too fast; wake someone up);
- ``WARN`` — burn ≥ ``warn_burn`` in both windows;
- ``OK`` — otherwise, including the empty-window case (no traffic means
  no budget burn).

Windows advance on the **server's logical clock** (deterministic work
units, the same clock latencies are measured on), never wall time, so
health evaluation is byte-reproducible and testable: a clock jump from a
full-recompute fallback simply ages old samples out of the window, it
cannot skew a rate.

The evaluator is fed by the server (:meth:`HealthEvaluator.record_value`
for measurements like latency, :meth:`~HealthEvaluator.record_event` for
good/bad outcomes like request errors) and queried at any clock with
:meth:`~HealthEvaluator.evaluate`, which returns the JSON-ready
``repro.health/1`` block embedded in metrics snapshots and
``stats_snapshot()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Sequence, Tuple

from repro.errors import MetricsError

__all__ = [
    "HEALTH_SCHEMA",
    "SLObjective",
    "HealthEvaluator",
    "default_fleet_slos",
    "default_service_slos",
]

#: Version tag of the ``health`` block.
HEALTH_SCHEMA = "repro.health/1"

#: Severity order used to aggregate per-objective states.
_STATES = ("OK", "WARN", "PAGE")


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective over a recorded signal.

    ``kind`` selects how samples are judged bad:

    - ``"latency"`` — samples are measurements; a sample is bad when its
      value exceeds ``target`` (e.g. QUERY latency in clock units);
    - ``"ratio"`` — samples are 0.0 (good) / 1.0 (bad) events recorded
      by the producer (e.g. request errors, stale-serve events);
      ``target`` is unused and conventionally 0.

    ``budget`` is the tolerated bad fraction (0.001 = 99.9 % objective).
    ``long_window`` / ``short_window`` are clock-unit window lengths;
    ``warn_burn`` / ``page_burn`` are the burn-rate thresholds.
    """

    name: str
    signal: str
    kind: str = "latency"
    target: float = 0.0
    budget: float = 0.01
    long_window: int = 4096
    short_window: int = 512
    warn_burn: float = 1.0
    page_burn: float = 8.0

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "ratio"):
            raise MetricsError(
                f"SLO {self.name!r}: unknown kind {self.kind!r}")
        if not (0.0 < self.budget <= 1.0):
            raise MetricsError(
                f"SLO {self.name!r}: budget must be in (0, 1], "
                f"got {self.budget}")
        if self.short_window <= 0 or self.long_window <= 0:
            raise MetricsError(
                f"SLO {self.name!r}: windows must be positive")
        if self.short_window > self.long_window:
            raise MetricsError(
                f"SLO {self.name!r}: short_window {self.short_window} "
                f"exceeds long_window {self.long_window}")
        if self.warn_burn <= 0 or self.page_burn < self.warn_burn:
            raise MetricsError(
                f"SLO {self.name!r}: need 0 < warn_burn <= page_burn")

    def is_bad(self, value: float) -> bool:
        if self.kind == "latency":
            return value > self.target
        return value >= 1.0

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "kind": self.kind,
            "target": self.target,
            "budget": self.budget,
            "long_window": self.long_window,
            "short_window": self.short_window,
            "warn_burn": self.warn_burn,
            "page_burn": self.page_burn,
        }


def default_service_slos() -> Tuple[SLObjective, ...]:
    """The stock objectives attached by ``repro serve --metrics``.

    Tuned to the deterministic workload profiles: QUERY latency in the
    low tens of clock units when healthy, errors rare, and most queries
    served fresh.
    """
    return (
        SLObjective(
            name="query_latency_p99",
            signal="query_latency_units",
            kind="latency",
            target=64.0,
            budget=0.01,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=8.0,
        ),
        SLObjective(
            name="error_ratio",
            signal="request_errors",
            kind="ratio",
            budget=0.02,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=8.0,
        ),
        SLObjective(
            name="refresh_staleness",
            signal="stale_serves",
            kind="ratio",
            budget=0.10,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=4.0,
        ),
        SLObjective(
            name="mem_peak_to_budget",
            signal="mem_peak_to_budget_ratio",
            kind="latency",
            target=1.0,
            budget=0.01,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=8.0,
        ),
    )


def default_fleet_slos() -> Tuple[SLObjective, ...]:
    """The stock fleet-level objectives attached by ``repro fleet``.

    Signals are fed by the fleet router on the fleet logical clock
    (the sum of the shard clocks): the *hottest-shard* view of query
    latency, the fleet-wide error ratio, and the max/mean routed-load
    imbalance gauge — >2x skew burns budget, sustained >2x pages.
    """
    return (
        SLObjective(
            name="fleet_query_latency_p99",
            signal="fleet_query_latency_units",
            kind="latency",
            target=64.0,
            budget=0.01,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=8.0,
        ),
        SLObjective(
            name="fleet_error_ratio",
            signal="fleet_request_errors",
            kind="ratio",
            budget=0.02,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=8.0,
        ),
        SLObjective(
            name="fleet_shard_imbalance",
            signal="fleet_shard_imbalance",
            kind="latency",
            target=2.0,
            budget=0.25,
            long_window=4096,
            short_window=512,
            warn_burn=1.0,
            page_burn=4.0,
        ),
    )


class HealthEvaluator:
    """Rolling-window burn-rate classifier over logical-clock signals.

    Samples are ``(clock, value)`` pairs kept per signal and pruned on
    record to the longest window any objective declares on that signal,
    so memory stays bounded by traffic within one long window.  Samples
    for signals no objective watches are dropped immediately.
    """

    def __init__(self, objectives: Sequence[SLObjective] = ()) -> None:
        self.objectives: Tuple[SLObjective, ...] = tuple(objectives)
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise MetricsError(f"duplicate SLO names: {sorted(names)}")
        self._horizon: Dict[str, int] = {}
        for obj in self.objectives:
            cur = self._horizon.get(obj.signal, 0)
            self._horizon[obj.signal] = max(cur, obj.long_window)
        self._samples: Dict[str, Deque[Tuple[int, float]]] = {
            signal: deque() for signal in self._horizon
        }

    # -- recording ---------------------------------------------------------

    def record_value(self, signal: str, clock: int, value: float) -> None:
        """Record a measurement sample (latency, staleness age, ...)."""
        buf = self._samples.get(signal)
        if buf is None:
            return
        buf.append((int(clock), float(value)))
        self._prune(signal, int(clock))

    def record_event(self, signal: str, clock: int, bad: bool) -> None:
        """Record a good/bad outcome for a ratio objective."""
        self.record_value(signal, clock, 1.0 if bad else 0.0)

    def _prune(self, signal: str, clock: int) -> None:
        horizon = self._horizon[signal]
        buf = self._samples[signal]
        floor = clock - horizon
        while buf and buf[0][0] <= floor:
            buf.popleft()

    # -- evaluation --------------------------------------------------------

    def _window_burn(self, obj: SLObjective, clock: int,
                     window: int) -> Tuple[float, int, int]:
        """(burn_rate, bad, total) over ``(clock - window, clock]``."""
        buf = self._samples.get(obj.signal, ())
        floor = clock - window
        bad = total = 0
        for ts, value in buf:
            if ts <= floor or ts > clock:
                continue
            total += 1
            if obj.is_bad(value):
                bad += 1
        if total == 0:
            return 0.0, 0, 0
        return (bad / total) / obj.budget, bad, total

    def evaluate_objective(self, obj: SLObjective, clock: int) -> dict:
        long_burn, long_bad, long_total = self._window_burn(
            obj, clock, obj.long_window)
        short_burn, short_bad, short_total = self._window_burn(
            obj, clock, obj.short_window)
        if long_burn >= obj.page_burn and short_burn >= obj.page_burn:
            state = "PAGE"
        elif long_burn >= obj.warn_burn and short_burn >= obj.warn_burn:
            state = "WARN"
        else:
            state = "OK"
        return {
            "name": obj.name,
            "signal": obj.signal,
            "state": state,
            "long": {
                "window": obj.long_window,
                "samples": long_total,
                "bad": long_bad,
                "burn_rate": round(long_burn, 6),
            },
            "short": {
                "window": obj.short_window,
                "samples": short_total,
                "bad": short_bad,
                "burn_rate": round(short_burn, 6),
            },
        }

    def evaluate(self, clock: int) -> dict:
        """The ``repro.health/1`` block at logical time ``clock``.

        Overall state is the worst per-objective state; an evaluator
        with no objectives is trivially ``OK``.
        """
        results = [self.evaluate_objective(o, int(clock))
                   for o in self.objectives]
        worst = 0
        for r in results:
            worst = max(worst, _STATES.index(r["state"]))
        return {
            "schema": HEALTH_SCHEMA,
            "clock": int(clock),
            "state": _STATES[worst],
            "objectives": results,
        }

    def state(self, clock: int) -> str:
        """Just the overall OK/WARN/PAGE classification."""
        return self.evaluate(clock)["state"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HealthEvaluator({len(self.objectives)} objectives, "
                f"{sum(len(b) for b in self._samples.values())} samples)")
