"""GVE-Leiden: fast Leiden community detection — full Python reproduction.

Reproduces Sahu, Kothapalli & Banerjee, *"Fast Leiden Algorithm for
Community Detection in Shared Memory Setting"* (ICPP 2024): the
GVE-Leiden algorithm with all of its optimizations, the graph and
parallel-runtime substrates it runs on, faithful reimplementations of the
four competing systems, the synthetic dataset registry, and a benchmark
harness that regenerates every table and figure of the paper's
evaluation.

Quickstart::

    from repro import GraphBuilder, leiden

    graph = GraphBuilder().add_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    ).build()
    result = leiden(graph)
    print(result.membership)        # community id per vertex

See ``examples/`` for runnable scenarios and ``python -m repro.bench``
for the full experiment suite.
"""

from repro._version import __version__
from repro.core import Dendrogram, LeidenConfig, LeidenResult, PassStats, leiden, louvain
from repro.errors import (
    ConfigError,
    ConvergenceError,
    GraphFormatError,
    GraphStructureError,
    ReproError,
    SimulatedOutOfMemory,
)
from repro.graph import (
    AdjacencyGraph,
    CSRGraph,
    GraphBuilder,
    build_csr_from_edges,
    read_edgelist,
    read_mtx,
    write_edgelist,
    write_mtx,
)
from repro.metrics import (
    adjusted_rand_index,
    disconnected_communities,
    modularity,
    normalized_mutual_information,
)
from repro.parallel import MachineModel, Runtime, Schedule

__all__ = [
    "__version__",
    # core
    "leiden",
    "louvain",
    "LeidenConfig",
    "LeidenResult",
    "PassStats",
    "Dendrogram",
    # graph
    "CSRGraph",
    "AdjacencyGraph",
    "GraphBuilder",
    "build_csr_from_edges",
    "read_edgelist",
    "write_edgelist",
    "read_mtx",
    "write_mtx",
    # metrics
    "modularity",
    "disconnected_communities",
    "normalized_mutual_information",
    "adjusted_rand_index",
    # parallel
    "Runtime",
    "Schedule",
    "MachineModel",
    # errors
    "ReproError",
    "GraphFormatError",
    "GraphStructureError",
    "ConfigError",
    "ConvergenceError",
    "SimulatedOutOfMemory",
]
