"""Command-line interface: ``repro`` / ``gve-leiden`` / ``python -m repro``.

Subcommands:

- ``repro run <input>`` (also the default when the first argument is not
  a subcommand name, so ``gve-leiden graph.mtx`` keeps working) — detect
  communities in a graph file (MatrixMarket, METIS or edge list) or a
  named registry dataset and print a summary, optionally writing the
  membership vector to a file;
- ``repro trace <input>`` — run GVE-Leiden with the observability layer
  enabled and emit the span/counter trace as JSON
  (see docs/OBSERVABILITY.md for the schema); ``repro trace --diff A B``
  compares two saved traces field by field;
- ``repro profile <input>`` — run once with the thread-timeline profiler
  enabled; print the critical-path/imbalance report and optionally write
  a Chrome trace-event JSON (``--chrome out.json``, loadable in
  chrome://tracing or Perfetto);
- ``repro metrics <input>`` — run GVE-Leiden with the typed metric
  instruments enabled and emit the byte-deterministic snapshot as JSON
  (``repro.metrics/1``) or Prometheus text exposition (``--format
  prom``);
- ``repro bench …`` — the evaluation harness
  (:mod:`repro.bench.__main__`), including the ``--check`` perf-
  regression gate and ``--trace`` artifact writer used by CI;
- ``repro reorder <input>`` — solve once, derive the community-aware
  vertex relabeling (:mod:`repro.graph.relabel`), and emit a
  deterministic JSON report of the modelled cache-locality delta
  between the original and relabeled layouts; ``--perm`` /
  ``--membership`` write the permutation and original-id membership
  as text files;
- ``repro serve --workload <profile>`` — drive the partition-serving
  subsystem (:mod:`repro.service`) through a seeded closed-loop
  workload and emit its deterministic stats document
  (see docs/SERVICE.md); ``--metrics PATH`` attaches the metric
  registry plus the stock SLO evaluator and writes their snapshot;
- ``repro mem <input>`` — run GVE-Leiden with the memory ledger
  (:mod:`repro.observability.memtrack`) attached and emit the
  byte-deterministic ``repro.memory/1`` allocation report; ``--chrome``
  writes the memory counter lanes as Chrome trace JSON, ``--rss``
  prints the informational logical-vs-real ratio.  ``repro serve
  --mem`` / ``repro fleet --mem`` write the serving-side reports.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.louvain import louvain
from repro.datasets.registry import load_graph, registry_names
from repro.errors import ReproError
from repro.graph.io_edgelist import read_edgelist
from repro.graph.io_mtx import read_mtx
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity

#: Engine choices shared by every subcommand that runs a detection.
ENGINE_CHOICES = ("batch", "loop", "threads", "process")

#: Relabel-mode choices mirrored from :data:`repro.graph.relabel.RELABEL_MODES`.
RELABEL_CHOICES = ("none", "community", "community-degree")


def _add_relabel_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--relabel", choices=list(RELABEL_CHOICES),
                   default="none",
                   help="solve on a community-aware relabeled layout "
                        "(pilot pass derives the layout; memberships are "
                        "reported in original ids)")


def _add_workers_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=2,
                   help="worker-process count for --engine process "
                        "(ignored by the other engines; default 2)")


def _make_runtime(args, **kwargs):
    """A Runtime sized for the requested engine (process → worker pool)."""
    from repro.parallel.runtime import Runtime

    if getattr(args, "engine", None) == "process":
        return Runtime(num_threads=args.workers, executor="process",
                       seed=args.seed, **kwargs)
    return Runtime(num_threads=1, seed=args.seed, **kwargs)


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="gve-leiden",
        description="GVE-Leiden community detection (ICPP 2024 reproduction)",
    )
    p.add_argument("input", nargs="?", default=None,
                   help="graph file (.mtx or edge list) or a registry "
                        "dataset name (see --list)")
    p.add_argument("--list", action="store_true", dest="list_datasets",
                   help="list registry dataset names and exit")
    p.add_argument("--algorithm", choices=["leiden", "louvain"],
                   default="leiden")
    p.add_argument("--refinement", choices=["greedy", "random"],
                   default="greedy")
    p.add_argument("--variant", choices=["default", "medium", "heavy"],
                   default="default")
    p.add_argument("--vertex-label", choices=["move", "refine"],
                   default="move")
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    _add_relabel_arg(p)
    p.add_argument("--resolution", type=float, default=1.0)
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--output", type=Path, default=None,
                   help="write one community id per line to this file")
    p.add_argument("--check-connectivity", action="store_true",
                   help="also count internally-disconnected communities")
    p.add_argument("--summary", action="store_true",
                   help="print per-community structure statistics")
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {__version__}")
    return p


def _load(arg: str):
    if arg in registry_names():
        return load_graph(arg)
    path = Path(arg)
    if not path.exists():
        raise SystemExit(f"error: {arg!r} is neither a file nor a dataset "
                         f"name (use --list to see dataset names)")
    if path.suffix == ".mtx":
        return read_mtx(path)
    if path.suffix in (".graph", ".metis"):
        from repro.graph.io_metis import read_metis

        return read_metis(path)
    return read_edgelist(path)


def build_trace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro trace",
        description="Run GVE-Leiden with tracing enabled; emit JSON "
                    "(spans: run → pass → phase; counters: atomics, "
                    "barriers, pruning rate, clock skew, batch sizes)",
    )
    p.add_argument("input", nargs="?", default=None,
                   help="graph file (.mtx, .graph or edge list) or a "
                        "registry dataset name")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--threads", type=int, default=64,
                   help="thread count for the modelled-runtime summary")
    p.add_argument("--output", type=Path, default=None,
                   help="write the trace JSON here instead of stdout")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    p.add_argument("--diff", nargs=2, type=Path, metavar=("A", "B"),
                   default=None,
                   help="compare two saved trace JSON files instead of "
                        "running (counters and derived metrics gate, "
                        "span seconds are informational)")
    p.add_argument("--strict", action="store_true",
                   help="with --diff: exit 1 when any deterministic "
                        "field differs")
    return p


def trace_main(argv: list[str] | None = None) -> int:
    """``repro trace`` — run once with tracing on, emit the JSON trace."""
    from repro.observability.tracer import Tracer
    from repro.parallel.costmodel import PAPER_MACHINE

    parser = build_trace_parser()
    args = parser.parse_args(argv)
    if args.diff is not None:
        return _trace_diff(args)
    if args.input is None:
        parser.error("the following arguments are required: input")
    graph = _load(args.input)
    config = LeidenConfig(
        engine=args.engine,
        quality=args.quality,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    tracer = Tracer()
    rt = _make_runtime(args, tracer=tracer)
    try:
        result = leiden(graph, config, runtime=rt)
    finally:
        rt.close()
    sim = result.ledger.simulate(PAPER_MACHINE, args.threads)
    q = modularity(graph, result.membership)
    doc = tracer.to_json(
        indent=None if args.compact else 2,
        experiment=str(args.input),
        seed=args.seed,
        num_threads=args.threads,
        machine=PAPER_MACHINE.as_dict(),
        metrics={
            "wall_seconds": result.wall_seconds,
            "modeled_seconds": sim.seconds,
            "modeled_phase_seconds": sim.phase_seconds,
            "total_work": result.ledger.total_work,
            "modularity": q,
            "num_passes": result.num_passes,
            "num_communities": result.num_communities,
        },
    )
    if args.output is not None:
        args.output.write_text(doc + "\n")
        print(f"trace written to {args.output}")
    else:
        print(doc)
    return 0


def _trace_diff(args) -> int:
    """``repro trace --diff A.json B.json`` — field-level trace delta."""
    import json

    from repro.observability.regression import (
        diff_trace_docs,
        format_trace_diff,
    )

    path_a, path_b = args.diff
    for p in (path_a, path_b):
        if not p.exists():
            raise SystemExit(f"error: trace file {p} does not exist")
    doc_a = json.loads(path_a.read_text())
    doc_b = json.loads(path_b.read_text())
    rows = diff_trace_docs(doc_a, doc_b)
    text, diffs = format_trace_diff(
        rows, label_a=str(path_a), label_b=str(path_b))
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"diff written to {args.output}")
    else:
        print(text)
    return 1 if (args.strict and diffs) else 0


def build_profile_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro profile",
        description="Run GVE-Leiden with the thread-timeline profiler "
                    "enabled; print the critical-path / barrier-wait / "
                    "load-imbalance report, optionally exporting the "
                    "per-thread timeline as Chrome trace-event JSON",
    )
    p.add_argument("input",
                   help="graph file (.mtx, .graph or edge list) or a "
                        "registry dataset name")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    _add_relabel_arg(p)
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--threads", type=int, default=8,
                   help="simulated thread count the timeline is laid "
                        "out at (one Chrome lane per thread)")
    p.add_argument("--top", type=int, default=5,
                   help="regions listed in the top-N table")
    p.add_argument("--chrome", type=Path, default=None,
                   help="write the Chrome trace-event JSON here "
                        "(open in chrome://tracing or Perfetto)")
    p.add_argument("--output", type=Path, default=None,
                   help="write the text report here instead of stdout")
    p.add_argument("--compact", action="store_true",
                   help="single-line Chrome JSON (default: indented)")
    return p


def profile_main(argv: list[str] | None = None) -> int:
    """``repro profile`` — run once with the profiler on, emit report."""
    from repro.observability.profile_report import format_profile_report
    from repro.observability.profiler import (
        Profiler,
        chrome_trace_json,
        to_chrome_trace,
        validate_chrome_trace,
    )
    from repro.observability.tracer import Tracer

    args = build_profile_parser().parse_args(argv)
    graph = _load(args.input)
    config = LeidenConfig(
        engine=args.engine,
        quality=args.quality,
        max_passes=args.max_passes,
        seed=args.seed,
        relabel=args.relabel,
    )
    tracer = Tracer()
    profiler = Profiler(num_threads=args.threads)
    rt = _make_runtime(args, tracer=tracer, profiler=profiler)
    try:
        leiden(graph, config, runtime=rt)
    finally:
        rt.close()
    timeline = profiler.timeline()
    trace_doc = tracer.to_dict(experiment=str(args.input), seed=args.seed)
    report = format_profile_report(
        timeline, trace_doc=trace_doc, top=args.top, title=str(args.input))
    if args.chrome is not None:
        doc = to_chrome_trace(
            timeline, experiment=str(args.input), seed=args.seed)
        validate_chrome_trace(doc)
        args.chrome.write_text(chrome_trace_json(
            doc, indent=None if args.compact else 1) + "\n")
        print(f"chrome trace written to {args.chrome}")
    if args.output is not None:
        args.output.write_text(report + "\n")
        print(f"report written to {args.output}")
    else:
        print(report)
    return 0


def build_metrics_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro metrics",
        description="Run GVE-Leiden with typed metric instruments enabled "
                    "and emit the byte-deterministic snapshot "
                    "(counters/gauges/histograms with labels; JSON "
                    "repro.metrics/1 or Prometheus text exposition)",
    )
    p.add_argument("input",
                   help="graph file (.mtx, .graph or edge list) or a "
                        "registry dataset name")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--format", choices=["json", "prom"], default="json",
                   dest="fmt",
                   help="output format: JSON snapshot (default) or "
                        "Prometheus text exposition")
    p.add_argument("--output", type=Path, default=None,
                   help="write the snapshot here instead of stdout")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    return p


def metrics_main(argv: list[str] | None = None) -> int:
    """``repro metrics`` — run once with instruments on, emit snapshot."""
    import json

    from repro.observability.metrics import validate_prometheus
    from repro.observability.regression import collect_leiden_metrics

    args = build_metrics_parser().parse_args(argv)
    graph = _load(args.input)
    config = LeidenConfig(
        engine=args.engine,
        quality=args.quality,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    registry, _tracer, result = collect_leiden_metrics(
        graph, config, seed=args.seed,
        num_threads=args.workers if args.engine == "process" else 1,
        executor="process" if args.engine == "process" else "serial",
    )
    q = modularity(graph, result.membership)
    if args.fmt == "prom":
        doc = registry.to_prometheus()
        validate_prometheus(doc)
    else:
        doc = json.dumps(
            registry.to_snapshot(
                experiment=str(args.input),
                seed=args.seed,
                modularity=q,
                num_passes=result.num_passes,
                num_communities=result.num_communities,
                total_work=result.ledger.total_work,
            ),
            indent=None if args.compact else 2,
            sort_keys=True,
        ) + "\n"
    if args.output is not None:
        args.output.write_text(doc)
        print(f"metrics written to {args.output}")
    else:
        print(doc, end="")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro serve",
        description="Run a seeded closed-loop workload against the "
                    "partition server and emit the deterministic stats "
                    "JSON (no wall-clock fields: two runs with the same "
                    "profile and seed are byte-identical)",
    )
    p.add_argument("--workload", default="quick",
                   help="workload profile name (see PROFILES; unknown "
                        "names exit 2 with the valid list)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-coalesce", action="store_true",
                   help="disable UPDATE micro-batching (one solve per "
                        "update batch; for A/B comparison)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the served-vs-from-scratch membership check")
    p.add_argument("--output", type=Path, default=None,
                   help="write the result JSON here instead of stdout")
    p.add_argument("--trace", type=Path, default=None, dest="trace_output",
                   help="also run with tracing enabled and write the "
                        "span/counter trace JSON here")
    p.add_argument("--profile", type=Path, default=None,
                   dest="profile_output",
                   help="also run with the thread-timeline profiler "
                        "enabled and write the Chrome trace-event JSON "
                        "here (request lane + solve timelines)")
    p.add_argument("--metrics", type=Path, default=None,
                   dest="metrics_output",
                   help="also run with the metric registry and the stock "
                        "SLO evaluator attached and write their "
                        "byte-deterministic snapshot JSON (including the "
                        "repro.health/1 block) here")
    p.add_argument("--reqtrace", type=Path, default=None,
                   dest="reqtrace_output",
                   help="also run with the request tracer attached and "
                        "write the repro.reqtrace/1 document here; when "
                        "--profile is also given, the Chrome trace gains "
                        "the request lanes (merged view)")
    p.add_argument("--mem", type=Path, default=None, dest="mem_output",
                   help="also run with the memory ledger attached and "
                        "write the byte-deterministic repro.memory/1 "
                        "report (store bytes per entry, peak watermarks) "
                        "here")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    return p


def _reject_unknown_profile(name: str, known, *, what: str) -> int:
    """Report an unknown workload profile and return exit code 2.

    Same shape as the bench ``--check`` MISSING output: one line per
    valid name, then a final ``error:`` summary on stderr.
    """
    for valid in sorted(known):
        print(f"VALID {what} profile {valid}", file=sys.stderr)
    print(f"error: unknown {what} profile {name!r} — pick one of the "
          f"profiles listed above", file=sys.stderr)
    return 2


def serve_main(argv: list[str] | None = None) -> int:
    """``repro serve`` — drive the partition server through a workload."""
    import json

    from repro.service.server import PartitionServer, ServiceConfig
    from repro.service.workload import PROFILES, run_workload

    args = build_serve_parser().parse_args(argv)
    if args.workload not in PROFILES:
        return _reject_unknown_profile(
            args.workload, PROFILES, what="workload")
    service_config = ServiceConfig(coalesce_updates=not args.no_coalesce)
    server = None
    if (args.trace_output is not None or args.profile_output is not None
            or args.metrics_output is not None
            or args.reqtrace_output is not None
            or args.mem_output is not None):
        from repro.observability.health import (
            HealthEvaluator,
            default_service_slos,
        )
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.profiler import Profiler
        from repro.observability.tracer import Tracer

        with_metrics = args.metrics_output is not None
        with_reqtrace = args.reqtrace_output is not None
        reqtrace = None
        if with_reqtrace:
            from repro.observability.reqtrace import RequestTracer

            reqtrace = RequestTracer(seed=args.seed)
        memory = None
        if args.mem_output is not None:
            from repro.observability.memtrack import MemoryLedger

            memory = MemoryLedger()
        server = PartitionServer(
            service_config,
            tracer=Tracer() if args.trace_output is not None else None,
            profiler=(Profiler() if args.profile_output is not None
                      else None),
            metrics=MetricsRegistry() if with_metrics else None,
            health=(HealthEvaluator(default_service_slos())
                    if with_metrics or with_reqtrace else None),
            reqtrace=reqtrace,
            memory=memory,
        )
    result = run_workload(
        args.workload,
        seed=args.seed,
        server=server,
        service_config=service_config,
        verify=not args.no_verify,
    )
    doc = json.dumps(result.to_json_dict(), sort_keys=True,
                     indent=None if args.compact else 2)
    if args.output is not None:
        args.output.write_text(doc + "\n")
        print(f"stats written to {args.output}")
    else:
        print(doc)
    if args.trace_output is not None:
        args.trace_output.write_text(server.tracer.to_json(
            indent=None if args.compact else 2,
            experiment=f"serve:{args.workload}",
            seed=args.seed,
        ) + "\n")
        print(f"trace written to {args.trace_output}")
    if args.profile_output is not None:
        from repro.observability.profiler import (
            chrome_trace_json,
            to_chrome_trace,
            validate_chrome_trace,
        )

        doc = to_chrome_trace(
            server.profiler.timeline(),
            experiment=f"serve:{args.workload}", seed=args.seed)
        if args.reqtrace_output is not None:
            # Merged view: solver timeline lanes + request lanes in one
            # Chrome trace, stitched by flow events.
            from repro.observability.reqtrace import merge_chrome_trace

            doc = merge_chrome_trace(doc, server.reqtrace)
        validate_chrome_trace(doc)
        args.profile_output.write_text(chrome_trace_json(
            doc, indent=None if args.compact else 1) + "\n")
        print(f"profile written to {args.profile_output}")
    if args.reqtrace_output is not None:
        from repro.observability.reqtrace import validate_reqtrace

        doc = server.reqtrace.to_json_dict(
            experiment=f"serve:{args.workload}")
        validate_reqtrace(doc)
        args.reqtrace_output.write_text(json.dumps(
            doc, sort_keys=True,
            indent=None if args.compact else 2) + "\n")
        print(f"request traces written to {args.reqtrace_output}")
    if args.metrics_output is not None:
        args.metrics_output.write_text(server.metrics.to_json(
            indent=None if args.compact else 2,
            health=server.health.evaluate(server.clock),
            experiment=f"serve:{args.workload}",
            seed=args.seed,
            clock_units=int(server.clock),
        ) + "\n")
        print(f"metrics written to {args.metrics_output}")
    if args.mem_output is not None:
        from repro.observability.memtrack import validate_memory_doc

        mem_doc = server.memory.to_snapshot(
            experiment=f"serve:{args.workload}", seed=args.seed)
        validate_memory_doc(mem_doc)
        args.mem_output.write_text(json.dumps(
            mem_doc, sort_keys=True,
            indent=None if args.compact else 2) + "\n")
        print(f"memory report written to {args.mem_output}")
    if not args.no_verify and not all(
            result.membership_matches_scratch.values()):
        print("error: served membership diverged from from-scratch solve",
              file=sys.stderr)
        return 1
    return 0


def build_mem_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro mem",
        description="Run GVE-Leiden with the memory ledger attached and "
                    "emit the byte-deterministic repro.memory/1 report "
                    "(logical allocation events, per-component and "
                    "per-phase peak watermarks; the logical section is "
                    "worker-count-invariant)",
    )
    p.add_argument("input",
                   help="graph file (.mtx, .graph or edge list) or a "
                        "registry dataset name")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--output", type=Path, default=None,
                   help="write the memory report JSON here instead of "
                        "stdout")
    p.add_argument("--chrome", type=Path, default=None,
                   help="write the Chrome-trace memory counter lanes "
                        "here (open in chrome://tracing or Perfetto)")
    p.add_argument("--rss", action="store_true",
                   help="also print the process RSS peak "
                        "(resource.getrusage) and the logical-vs-real "
                        "ratio — informational, never part of the "
                        "report document")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    return p


def mem_main(argv: list[str] | None = None) -> int:
    """``repro mem`` — run once with the memory ledger on, emit report."""
    import json

    from repro.observability.memtrack import (
        MemoryLedger,
        record_csr,
        validate_memory_doc,
    )
    from repro.observability.profiler import (
        chrome_trace_json,
        validate_chrome_trace,
    )

    args = build_mem_parser().parse_args(argv)
    graph = _load(args.input)
    config = LeidenConfig(
        engine=args.engine,
        quality=args.quality,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    memory = MemoryLedger()
    # Graph loads are memoized, so the input CSR may predate the ledger;
    # charge it explicitly so the report covers the input arrays.
    record_csr(memory, graph)
    rt = _make_runtime(args, memory=memory)
    try:
        leiden(graph, config, runtime=rt)
    finally:
        rt.close()
    doc = memory.to_snapshot(
        experiment=str(args.input),
        seed=args.seed,
        engine=args.engine,
    )
    validate_memory_doc(doc)
    text = json.dumps(doc, sort_keys=True,
                      indent=None if args.compact else 2)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"memory report written to {args.output}")
    else:
        print(text)
    if args.chrome is not None:
        chrome = memory.to_chrome_trace(
            experiment=str(args.input), seed=args.seed)
        validate_chrome_trace(chrome)
        args.chrome.write_text(chrome_trace_json(
            chrome, indent=None if args.compact else 1) + "\n")
        print(f"memory chrome trace written to {args.chrome}")
    if args.rss:
        # Informational only: real RSS is machine- and allocator-
        # dependent, so it never enters the (gated) report document.
        import resource

        rss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        rss_bytes = int(rss_kib) * 1024
        peak = doc["logical"]["peak_bytes"]
        ratio = peak / rss_bytes if rss_bytes else 0.0
        print(f"rss peak: {rss_bytes} B ({rss_bytes / 2**20:.1f} MiB); "
              f"logical peak {peak} B is {ratio:.1%} of real "
              f"(informational, not gated)")
    return 0


def build_reorder_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro reorder",
        description="Solve once, derive the community-aware vertex "
                    "relabeling and report the modelled cache-locality "
                    "delta between the original and relabeled layouts. "
                    "The JSON report has no wall-clock fields: two runs "
                    "with the same arguments are byte-identical",
    )
    p.add_argument("input",
                   help="graph file (.mtx, .graph or edge list) or a "
                        "registry dataset name")
    p.add_argument("--mode", choices=[m for m in RELABEL_CHOICES
                                      if m != "none"],
                   default="community",
                   help="layout mode: communities contiguous in "
                        "dendrogram order, optionally degree-sorted "
                        "within each community")
    p.add_argument("--engine", choices=list(ENGINE_CHOICES),
                   default="batch")
    _add_workers_arg(p)
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--perm", type=Path, default=None,
                   help="write the permutation (line i = original id of "
                        "new vertex i) to this file")
    p.add_argument("--membership", type=Path, default=None,
                   help="write the original-id membership (one community "
                        "per line) to this file")
    p.add_argument("--output", type=Path, default=None,
                   help="write the JSON report here instead of stdout")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    return p


def reorder_main(argv: list[str] | None = None) -> int:
    """``repro reorder`` — derive a layout, report the locality delta."""
    import json

    from repro.graph.relabel import community_relabeling
    from repro.observability.locality import measure_locality

    args = build_reorder_parser().parse_args(argv)
    graph = _load(args.input)
    config = LeidenConfig(
        engine=args.engine,
        quality=args.quality,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    rt = _make_runtime(args)
    try:
        result = leiden(graph, config, runtime=rt)
    finally:
        rt.close()
    levels = (result.dendrogram.memberships()
              if result.dendrogram.num_levels else [result.membership])
    relab = community_relabeling(graph, levels, mode=args.mode)
    relabeled, _ = graph.permute(relab.perm)
    before = measure_locality(graph)
    after = measure_locality(relabeled)
    q = modularity(graph, result.membership)
    q_relab = modularity(relabeled, relab.to_relabeled(result.membership))
    doc = {
        "schema": "repro.reorder/1",
        "input": str(args.input),
        "mode": args.mode,
        "engine": args.engine,
        "seed": int(args.seed),
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "num_communities": int(relab.num_communities),
        "modularity": round(q, 12),
        # Exact layout invariance: Q of the same partition expressed on
        # the relabeled graph must match bit for bit.
        "modularity_relabeled": round(q_relab, 12),
        "q_invariant": bool(q == q_relab),
        "locality": {
            "original": before.to_dict(),
            "relabeled": after.to_dict(),
        },
    }
    if before.gather_lines:
        doc["gather_lines_saved_pct"] = round(
            100.0 * (1.0 - after.gather_lines / before.gather_lines), 3)
    if before.miss_lines:
        doc["miss_lines_saved_pct"] = round(
            100.0 * (1.0 - after.miss_lines / before.miss_lines), 3)
    text = json.dumps(doc, sort_keys=True,
                      indent=None if args.compact else 2)
    if args.perm is not None:
        args.perm.write_text(
            "\n".join(str(int(v)) for v in relab.perm) + "\n")
        print(f"permutation written to {args.perm}")
    if args.membership is not None:
        args.membership.write_text(
            "\n".join(str(int(c)) for c in result.membership) + "\n")
        print(f"membership written to {args.membership}")
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"reorder report written to {args.output}")
    else:
        print(text)
    if not doc["q_invariant"]:  # pragma: no cover - correctness guard
        print("error: modularity changed under relabeling", file=sys.stderr)
        return 1
    return 0


def build_reqtrace_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro reqtrace",
        description="Inspect repro.reqtrace/1 documents (written by "
                    "'repro fleet --reqtrace' / 'repro serve "
                    "--reqtrace'): summarize retention, list the "
                    "slowest requests, print one trace, or diff the "
                    "kept sets of two documents",
    )
    p.add_argument("input", type=Path, nargs="+",
                   help="reqtrace JSON document (two with --diff)")
    p.add_argument("--slowest", type=int, default=None, metavar="N",
                   help="list the N slowest kept requests (latency "
                        "desc, seq asc on ties)")
    p.add_argument("--trace-id", default=None, metavar="ID",
                   help="print the full JSON of one kept trace")
    p.add_argument("--diff", action="store_true",
                   help="compare the kept sets (traces with keep "
                        "reasons) of two documents; exit 1 when they "
                        "differ")
    return p


def reqtrace_main(argv: list[str] | None = None) -> int:
    """``repro reqtrace`` — inspect request-trace documents."""
    import json

    from repro.observability.reqtrace import validate_reqtrace

    args = build_reqtrace_parser().parse_args(argv)
    want = 2 if args.diff else 1
    if len(args.input) != want:
        print(f"error: expected {want} input document(s), "
              f"got {len(args.input)}", file=sys.stderr)
        return 2
    docs = []
    for path in args.input:
        try:
            doc = json.loads(path.read_text())
            validate_reqtrace(doc)
        except (OSError, ValueError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
        docs.append(doc)

    if args.diff:
        # "Kept" = annotated with at least one keep reason, so a full
        # document diffs cleanly against its sampled twin (the A/B the
        # ext_fleet_reqtrace bench pins).
        kept = [{t["trace_id"]: t for t in d["traces"]
                 if t.get("keep_reasons")} for d in docs]
        a, b = kept
        only_a = sorted(set(a) - set(b))
        only_b = sorted(set(b) - set(a))
        changed = sorted(
            tid for tid in set(a) & set(b)
            if (a[tid]["status"], a[tid]["latency_units"])
            != (b[tid]["status"], b[tid]["latency_units"]))
        for tid in only_a:
            print(f"ONLY-A {tid} seq={a[tid]['seq']}")
        for tid in only_b:
            print(f"ONLY-B {tid} seq={b[tid]['seq']}")
        for tid in changed:
            print(f"CHANGED {tid} "
                  f"a=({a[tid]['status']},{a[tid]['latency_units']}) "
                  f"b=({b[tid]['status']},{b[tid]['latency_units']})")
        if only_a or only_b or changed:
            print(f"kept sets differ: {len(only_a)} only-A, "
                  f"{len(only_b)} only-B, {len(changed)} changed")
            return 1
        print(f"kept sets identical ({len(a)} traces)")
        return 0

    doc = docs[0]
    if args.trace_id is not None:
        for t in doc["traces"]:
            if t["trace_id"] == args.trace_id:
                print(json.dumps(t, sort_keys=True, indent=2))
                return 0
        print(f"error: trace {args.trace_id!r} not in document "
              f"(dropped by sampling, or never minted)", file=sys.stderr)
        return 1
    if args.slowest is not None:
        ranked = sorted(doc["traces"],
                        key=lambda t: (-t["latency_units"], t["seq"]))
        for t in ranked[:args.slowest]:
            reasons = ",".join(t.get("keep_reasons", [])) or "-"
            print(f"{t['trace_id']} seq={t['seq']} kind={t['kind']} "
                  f"status={t['status']} "
                  f"latency={t['latency_units']:.0f} "
                  f"spans={len(t['spans'])} keep={reasons}")
        return 0
    totals = doc["totals"]
    sampling = doc["sampling"]
    print(f"schema: {doc['schema']}")
    print(f"mode: {sampling.get('mode')}  seed: {doc['meta'].get('seed')}")
    print(f"requests: {totals.get('requests')}  kept: {totals.get('kept')}"
          f"  dropped: {totals.get('dropped')}  spans: "
          f"{totals.get('spans')}")
    by_reason = totals.get("by_reason", {})
    if by_reason:
        print("kept by reason: " + ", ".join(
            f"{r}={n}" for r, n in sorted(by_reason.items())))
    dumps = doc["flight"].get("dumps", [])
    print(f"flight dumps: {len(dumps)}")
    for d in dumps:
        print(f"  {d['reason']} at {d['at_units']:.0f} "
              f"({len(d['traces'])} traces)")
    return 0


def build_fleet_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro fleet",
        description="Run a seeded hot-key Zipfian workload against a "
                    "sharded partition-server fleet (consistent-hash "
                    "routing, replicated writes, cross-shard query "
                    "fan-out, replica failover) and emit the "
                    "deterministic stats JSON — no wall-clock fields, "
                    "so two runs with the same arguments are "
                    "byte-identical",
    )
    p.add_argument("--shards", type=int, default=3,
                   help="number of partition-server shards")
    p.add_argument("--replicas", type=int, default=1,
                   help="replication factor R (placement width is "
                        "min(R, shards))")
    p.add_argument("--virtual-nodes", type=int, default=64,
                   help="virtual nodes per shard on the hash ring")
    p.add_argument("--profile", default="quick",
                   help="fleet workload profile name (see "
                        "FLEET_PROFILES; unknown names exit 2 with the "
                        "valid list)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--kill", action="append", default=[],
                   metavar="SHARD:AT",
                   help="fault script: kill SHARD (a shard id, a shard "
                        "index, or 'primary' = the hottest key's "
                        "primary) just before steady-state query AT; "
                        "repeatable")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the served-vs-from-scratch and replica "
                        "consistency checks")
    p.add_argument("--output", type=Path, default=None,
                   help="write the result JSON here instead of stdout")
    p.add_argument("--metrics", type=Path, default=None,
                   dest="metrics_output",
                   help="also run with per-shard metric registries and "
                        "the fleet SLO evaluator attached and write the "
                        "merged fleet snapshot JSON (repro.metrics/1, "
                        "with the repro.health/1 block) here")
    p.add_argument("--reqtrace", type=Path, default=None,
                   dest="reqtrace_output",
                   help="attach the request tracer (+ fleet SLO "
                        "evaluator) and write the repro.reqtrace/1 "
                        "document — per-request causal spans, "
                        "deterministic trace ids, tail-sampling "
                        "annotations and flight-recorder dumps — here; "
                        "byte-identical across double runs")
    p.add_argument("--reqtrace-chrome", type=Path, default=None,
                   help="also write the merged Chrome-trace view of the "
                        "kept request traces (one lane per shard plus "
                        "the router lane, flow events stitching "
                        "cross-shard hops); open in a Chrome trace "
                        "viewer")
    p.add_argument("--reqtrace-mode", choices=("full", "sampled"),
                   default="full",
                   help="trace retention: keep every finished trace "
                        "(full) or only the deterministic tail sample "
                        "(sampled)")
    p.add_argument("--mem", type=Path, default=None, dest="mem_output",
                   help="also run with a per-shard memory ledger "
                        "attached and write the merged fleet "
                        "repro.memory/1 report (per-shard logical "
                        "sections summed; shard iteration sorted, so "
                        "byte-deterministic) here")
    p.add_argument("--compact", action="store_true",
                   help="single-line JSON (default: indented)")
    return p


def fleet_main(argv: list[str] | None = None) -> int:
    """``repro fleet`` — drive a sharded fleet through a workload."""
    import json

    from repro.fleet.fleet import FleetConfig, PartitionFleet
    from repro.fleet.workload import FLEET_PROFILES, run_fleet_workload

    args = build_fleet_parser().parse_args(argv)
    if args.profile not in FLEET_PROFILES:
        return _reject_unknown_profile(
            args.profile, FLEET_PROFILES, what="fleet workload")
    kills = []
    for spec in args.kill:
        target, sep, at = spec.rpartition(":")
        if not sep or not at.isdigit():
            print(f"error: bad --kill spec {spec!r}; expected SHARD:AT "
                  f"(e.g. 'primary:10' or '1:10')", file=sys.stderr)
            return 2
        kills.append((target, int(at)))
    try:
        fleet_config = FleetConfig(
            num_shards=args.shards,
            replicas=args.replicas,
            virtual_nodes=args.virtual_nodes,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    fleet = None
    reqtrace = None
    with_reqtrace = (args.reqtrace_output is not None
                     or args.reqtrace_chrome is not None)
    if (args.metrics_output is not None or with_reqtrace
            or args.mem_output is not None):
        from repro.observability.health import (
            HealthEvaluator,
            default_fleet_slos,
        )
        from repro.observability.metrics import MetricsRegistry

        if with_reqtrace:
            from repro.observability.reqtrace import RequestTracer

            reqtrace = RequestTracer(seed=args.seed,
                                     mode=args.reqtrace_mode)
        with_metrics = args.metrics_output is not None
        fleet = PartitionFleet(
            fleet_config,
            metrics=MetricsRegistry() if with_metrics else None,
            # The SLO evaluator always rides along here: it feeds the
            # health block of the metrics snapshot *and* the flight
            # recorder's PAGE trigger.
            health=HealthEvaluator(default_fleet_slos()),
            reqtrace=reqtrace,
            memory=args.mem_output is not None,
        )
    result = run_fleet_workload(
        args.profile,
        seed=args.seed,
        fleet=fleet,
        fleet_config=fleet_config,
        kills=kills,
        verify=not args.no_verify,
    )
    text = json.dumps(result.to_json_dict(), sort_keys=True,
                      indent=None if args.compact else 2)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"fleet stats written to {args.output}")
    else:
        print(text)
    if args.metrics_output is not None:
        snapshot = fleet.metrics_snapshot(
            experiment=f"fleet:{args.profile}",
            seed=args.seed,
            clock_units=int(fleet.clock_units()),
        )
        args.metrics_output.write_text(json.dumps(
            snapshot, sort_keys=True,
            indent=None if args.compact else 2) + "\n")
        print(f"fleet metrics written to {args.metrics_output}")
    if args.reqtrace_output is not None:
        from repro.observability.reqtrace import validate_reqtrace

        doc = reqtrace.to_json_dict(
            experiment=f"fleet:{args.profile}",
            shards=int(args.shards), replicas=int(args.replicas))
        validate_reqtrace(doc)
        args.reqtrace_output.write_text(json.dumps(
            doc, sort_keys=True,
            indent=None if args.compact else 2) + "\n")
        print(f"request traces written to {args.reqtrace_output}")
    if args.reqtrace_chrome is not None:
        from repro.observability.profiler import (
            chrome_trace_json,
            validate_chrome_trace,
        )

        chrome = reqtrace.to_chrome_trace(
            experiment=f"fleet:{args.profile}", seed=args.seed)
        validate_chrome_trace(chrome)
        args.reqtrace_chrome.write_text(chrome_trace_json(
            chrome, indent=None if args.compact else 1) + "\n")
        print(f"request-trace chrome view written to "
              f"{args.reqtrace_chrome}")
    if args.mem_output is not None:
        mem_doc = fleet.memory_snapshot(
            experiment=f"fleet:{args.profile}", seed=args.seed)
        args.mem_output.write_text(json.dumps(
            mem_doc, sort_keys=True,
            indent=None if args.compact else 2) + "\n")
        print(f"fleet memory report written to {args.mem_output}")
    if not args.no_verify:
        bad = [n for n, ok in result.membership_matches_scratch.items()
               if not ok]
        bad += [n for n, ok in result.replicas_consistent.items()
                if not ok]
        if bad:
            print("error: fleet verification failed for "
                  f"{sorted(set(bad))}", file=sys.stderr)
            return 1
    return 0


#: First-token subcommands understood by :func:`main`.
_SUBCOMMANDS = ("run", "trace", "profile", "metrics", "bench", "serve",
                "reorder", "fleet", "reqtrace", "mem")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "bench":
        from repro.bench.__main__ import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "metrics":
        return metrics_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "reorder":
        return reorder_main(argv[1:])
    if argv and argv[0] == "fleet":
        return fleet_main(argv[1:])
    if argv and argv[0] == "reqtrace":
        return reqtrace_main(argv[1:])
    if argv and argv[0] == "mem":
        return mem_main(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_datasets:
        for name in registry_names():
            print(name)
        return 0
    if args.input is None:
        parser.error("the following arguments are required: input")

    graph = _load(args.input)
    config = LeidenConfig.variant(
        args.variant,
        refinement=args.refinement,
        vertex_label=args.vertex_label,
        quality=args.quality,
        engine=args.engine,
        resolution=args.resolution,
        max_passes=args.max_passes,
        seed=args.seed,
        relabel=args.relabel,
    )
    algo = leiden if args.algorithm == "leiden" else louvain
    rt = _make_runtime(args)
    try:
        result = algo(graph, config, runtime=rt)
    finally:
        rt.close()

    q = modularity(graph, result.membership, resolution=args.resolution)
    print(f"graph: {args.input}")
    print(f"vertices: {graph.num_vertices}  edges: {graph.num_edges}")
    print(f"algorithm: {args.algorithm} ({args.refinement}, {args.variant})")
    print(f"passes: {result.num_passes}  communities: {result.num_communities}")
    if getattr(result, "relabeling", None) is not None:
        relab = result.relabeling
        print(f"relabel: {relab.mode} "
              f"({relab.num_communities} layout communities)")
    print(f"modularity: {q:.6f}")
    print(f"wall time: {result.wall_seconds:.3f}s")
    if args.check_connectivity:
        report = disconnected_communities(graph, result.membership)
        print(f"disconnected communities: {report.num_disconnected} "
              f"({report.fraction:.2e})")
    if args.summary:
        from repro.metrics.summary import summarize_partition

        summary = summarize_partition(graph, result.membership)
        pct = summary.size_percentiles()
        print(f"coverage: {summary.coverage:.4f}")
        print("community sizes (min/25%/median/75%/max): "
              + "/".join(f"{pct[q]:.0f}" for q in (0, 25, 50, 75, 100)))
        worst = summary.worst_conductance(3)
        for c in worst:
            print(f"  weakest community {c.community_id}: size {c.size}, "
                  f"conductance {c.conductance:.3f}")
    if args.output is not None:
        args.output.write_text(
            "\n".join(str(int(c)) for c in result.membership) + "\n"
        )
        print(f"membership written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
