"""Command-line interface: ``gve-leiden`` / ``python -m repro``.

Detect communities in a graph file (MatrixMarket or edge list) or a named
registry dataset and print a summary, optionally writing the membership
vector to a file — mirroring how the paper's artifact is driven.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro._version import __version__
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.louvain import louvain
from repro.datasets.registry import load_graph, registry_names
from repro.graph.io_edgelist import read_edgelist
from repro.graph.io_mtx import read_mtx
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="gve-leiden",
        description="GVE-Leiden community detection (ICPP 2024 reproduction)",
    )
    p.add_argument("input", nargs="?", default=None,
                   help="graph file (.mtx or edge list) or a registry "
                        "dataset name (see --list)")
    p.add_argument("--list", action="store_true", dest="list_datasets",
                   help="list registry dataset names and exit")
    p.add_argument("--algorithm", choices=["leiden", "louvain"],
                   default="leiden")
    p.add_argument("--refinement", choices=["greedy", "random"],
                   default="greedy")
    p.add_argument("--variant", choices=["default", "medium", "heavy"],
                   default="default")
    p.add_argument("--vertex-label", choices=["move", "refine"],
                   default="move")
    p.add_argument("--quality", choices=["modularity", "cpm"],
                   default="modularity")
    p.add_argument("--engine", choices=["batch", "loop", "threads"],
                   default="batch")
    p.add_argument("--resolution", type=float, default=1.0)
    p.add_argument("--max-passes", type=int, default=10)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--output", type=Path, default=None,
                   help="write one community id per line to this file")
    p.add_argument("--check-connectivity", action="store_true",
                   help="also count internally-disconnected communities")
    p.add_argument("--summary", action="store_true",
                   help="print per-community structure statistics")
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {__version__}")
    return p


def _load(arg: str):
    if arg in registry_names():
        return load_graph(arg)
    path = Path(arg)
    if not path.exists():
        raise SystemExit(f"error: {arg!r} is neither a file nor a dataset "
                         f"name (use --list to see dataset names)")
    if path.suffix == ".mtx":
        return read_mtx(path)
    if path.suffix in (".graph", ".metis"):
        from repro.graph.io_metis import read_metis

        return read_metis(path)
    return read_edgelist(path)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_datasets:
        for name in registry_names():
            print(name)
        return 0
    if args.input is None:
        parser.error("the following arguments are required: input")

    graph = _load(args.input)
    config = LeidenConfig.variant(
        args.variant,
        refinement=args.refinement,
        vertex_label=args.vertex_label,
        quality=args.quality,
        engine=args.engine,
        resolution=args.resolution,
        max_passes=args.max_passes,
        seed=args.seed,
    )
    algo = leiden if args.algorithm == "leiden" else louvain
    result = algo(graph, config)

    q = modularity(graph, result.membership, resolution=args.resolution)
    print(f"graph: {args.input}")
    print(f"vertices: {graph.num_vertices}  edges: {graph.num_edges}")
    print(f"algorithm: {args.algorithm} ({args.refinement}, {args.variant})")
    print(f"passes: {result.num_passes}  communities: {result.num_communities}")
    print(f"modularity: {q:.6f}")
    print(f"wall time: {result.wall_seconds:.3f}s")
    if args.check_connectivity:
        report = disconnected_communities(graph, result.membership)
        print(f"disconnected communities: {report.num_disconnected} "
              f"({report.fraction:.2e})")
    if args.summary:
        from repro.metrics.summary import summarize_partition

        summary = summarize_partition(graph, result.membership)
        pct = summary.size_percentiles()
        print(f"coverage: {summary.coverage:.4f}")
        print("community sizes (min/25%/median/75%/max): "
              + "/".join(f"{pct[q]:.0f}" for q in (0, 25, 50, 75, 100)))
        worst = summary.worst_conductance(3)
        for c in worst:
            print(f"  weakest community {c.community_id}: size {c.size}, "
                  f"conductance {c.conductance:.3f}")
    if args.output is not None:
        args.output.write_text(
            "\n".join(str(int(c)) for c in result.membership) + "\n"
        )
        print(f"membership written to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
