"""Fleet lifecycle: spawn, kill, drain, and rebalance partition shards.

A :class:`PartitionFleet` owns N deterministic
:class:`~repro.service.server.PartitionServer` instances ("shards"),
the :class:`~repro.fleet.ring.HashRing` that places partition keys on
them, and the :class:`~repro.fleet.router.FleetRouter` that routes
requests.  Everything runs single-threaded on logical clocks, so a
fleet run is a pure function of (config, request sequence) — double
runs are byte-identical, which the CI fleet smoke asserts.

Lifecycle:

- :meth:`spawn` / :meth:`retire` change the shard set and return the
  explicit minimal :class:`~repro.fleet.ring.MovePlan` the ring change
  implies; the plan is *executed* immediately (entries copied to
  fetching shards, dropped from vacating ones) and also returned so
  tests can assert its moved-key count against the ``K/(N+1)``
  consistent-hashing bound;
- :meth:`kill` marks a shard unhealthy without a ring change — its
  queued tickets fail, and the router fails over reads to the
  surviving replicas (served DEGRADED);
- :meth:`drain` pumps the router until idle, then drains every alive
  shard (running their deferred reconciles).

Observability: each shard gets its own ``MetricsRegistry``;
:meth:`metrics_snapshot` merges them with the fleet-level registry into
one ``repro.metrics/1`` snapshot (counters/histograms sum across
shards), and the fleet ``HealthEvaluator`` tracks fleet SLOs —
hottest-shard query p99, error ratio, and the max/mean imbalance gauge.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.fleet.ring import HashRing, MovePlan, plan_moves
from repro.fleet.router import FleetRouter, Shard
from repro.observability.memtrack import MemoryLedger, merge_memory_snapshots
from repro.observability.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    exact_percentile,
)
from repro.service.requests import DETECT, FAILED, QUERY
from repro.service.server import PartitionServer, ServiceConfig

__all__ = ["FleetConfig", "PartitionFleet", "FLEET_STATS_SCHEMA"]

#: Version tag of the fleet stats document.
FLEET_STATS_SCHEMA = "repro.fleet-stats/1"


@dataclasses.dataclass
class FleetConfig:
    """Tunables of a partition-server fleet."""

    #: Number of shards spawned at construction.
    num_shards: int = 3
    #: Replication factor R (placement width is min(R, num shards)).
    replicas: int = 1
    #: Virtual nodes per shard on the hash ring.
    virtual_nodes: int = 64
    #: Per-shard service configuration (shared by all shards).
    service: ServiceConfig = dataclasses.field(default_factory=ServiceConfig)
    #: Shard ids are ``f"{shard_prefix}-{i}"``.
    shard_prefix: str = "shard"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ServiceError("num_shards must be >= 1")
        if self.replicas < 1:
            raise ServiceError("replicas must be >= 1")
        if self.virtual_nodes < 1:
            raise ServiceError("virtual_nodes must be >= 1")


class PartitionFleet:
    """N partition servers behind a deterministic consistent-hash router.

    Parameters
    ----------
    config:
        :class:`FleetConfig`; defaults apply when ``None``.
    metrics:
        Fleet-level :class:`MetricsRegistry` for router instruments.
        When enabled, every shard also gets its *own* registry and
        :meth:`metrics_snapshot` merges them all.
    health:
        Fleet :class:`~repro.observability.health.HealthEvaluator`
        (see :func:`~repro.observability.health.default_fleet_slos`);
        fed by the router on the fleet logical clock.
    fault_hook:
        Per-shard solve fault hook factory: ``callable(shard_id) ->
        hook | None``; the hook is passed to that shard's server
        (same contract as :class:`PartitionServer`'s ``fault_hook``).
    reqtrace:
        :class:`~repro.observability.reqtrace.RequestTracer` — the
        router mints one trace per fleet request and every hop
        (admission, shard queue wait, serve, refresh, failover, reply)
        appends spans; ``None`` disables request tracing.
    memory:
        Truthy to track memory: every shard gets its own
        :class:`~repro.observability.memtrack.MemoryLedger` (store
        bytes per shard) and :meth:`memory_snapshot` merges them into
        one ``repro.memory/1`` document with a per-shard breakdown.
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        health=None,
        fault_hook: Optional[Callable[[str], Optional[Callable]]] = None,
        reqtrace=None,
        memory: bool = False,
    ) -> None:
        self.config = config or FleetConfig()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.reqtrace = reqtrace
        self.track_memory = bool(memory)
        self._fault_hook = fault_hook
        #: Insertion-ordered: iteration order == spawn order, which the
        #: router's pump loop and all reporting rely on (never sorted(),
        #: so "shard-10" after "shard-9" stays stable).
        self.shards: "OrderedDict[str, Shard]" = OrderedDict()
        self._next_shard = 0
        #: Clock units accumulated by shards that have been retired.
        self._retired_clock = 0
        self._kills = 0
        self._rebalances = 0
        ids = [self._new_shard_id() for _ in range(self.config.num_shards)]
        for sid in ids:
            self.shards[sid] = self._make_shard(sid)
        self.ring = HashRing(
            ids,
            virtual_nodes=self.config.virtual_nodes,
            replicas=self.config.replicas,
        )
        self.router = FleetRouter(
            self.shards, self.ring, metrics=self.metrics, health=self.health,
            reqtrace=self.reqtrace)

    # -- shard construction ------------------------------------------------

    def _new_shard_id(self) -> str:
        sid = f"{self.config.shard_prefix}-{self._next_shard}"
        self._next_shard += 1
        return sid

    def _make_shard(self, sid: str) -> Shard:
        shard_metrics = (
            MetricsRegistry() if self.metrics.enabled else NULL_REGISTRY)
        shard_memory = MemoryLedger() if self.track_memory else None
        hook = self._fault_hook(sid) if self._fault_hook else None
        server = PartitionServer(
            self.config.service, metrics=shard_metrics, fault_hook=hook,
            memory=shard_memory)
        # Span lane of this server in merged request traces — one lane
        # per shard (the server's own ``reqtrace`` stays None: under a
        # fleet the router owns the trace lifecycle).
        server.lane = sid
        return Shard(id=sid, server=server, metrics=shard_metrics,
                     memory=shard_memory)

    # -- convenience request API (route + pump) ----------------------------

    def detect(self, graph, config=None):
        ticket = self.router.submit_detect(graph, config)
        self.router.pump()
        return ticket

    def query(self, key: str, query: str = "community_of", *,
              vertex: Optional[int] = None, community: Optional[int] = None):
        ticket = self.router.submit_query(
            key, query, vertex=vertex, community=community)
        self.router.pump()
        return ticket

    def update(self, key: str, batch):
        ticket = self.router.submit_update(key, batch)
        self.router.pump()
        return ticket

    def fanout_query(self, query: str = "community_of", **kwargs) -> dict:
        return self.router.fanout_query(query, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    @property
    def alive_shards(self) -> List[str]:
        return [sid for sid, sh in self.shards.items() if sh.alive]

    def clock_units(self) -> int:
        """Fleet logical clock: sum of all shard clocks, ever."""
        return (self._retired_clock
                + sum(sh.server.clock for sh in self.shards.values()))

    def kill(self, shard_id: str) -> int:
        """Mark ``shard_id`` unhealthy (no ring change); fail its queue.

        Returns the number of queued tickets failed.  Reads for keys
        whose primary this was now fail over to surviving replicas and
        are served DEGRADED; keys with no surviving replica fail.
        """
        shard = self._shard(shard_id)
        shard.alive = False
        self._kills += 1
        failed = 0
        while True:
            ticket = shard.server.queue.pop()
            if ticket is None:
                break
            ticket.status = FAILED
            ticket.response = {"error": f"shard {shard_id} killed"}
            ticket.completed_at = shard.server.clock
            if ticket.kind == DETECT:
                shard.server.queue.finish_detect(ticket.request.store_key())
            failed += 1
        return failed

    def revive(self, shard_id: str) -> None:
        """Bring a killed shard back (its store is as it was)."""
        self._shard(shard_id).alive = True

    def _shard(self, shard_id: str) -> Shard:
        if shard_id not in self.shards:
            raise ServiceError(
                f"unknown shard {shard_id!r}; have {list(self.shards)}")
        return self.shards[shard_id]

    def spawn(self) -> "tuple[str, MovePlan]":
        """Add one shard; rebalance; return ``(shard_id, move plan)``."""
        sid = self._new_shard_id()
        self.shards[sid] = self._make_shard(sid)
        plan = self._rebalance(list(self.shards))
        return sid, plan

    def retire(self, shard_id: str) -> MovePlan:
        """Drain a shard out of the fleet entirely (ring change).

        Its keys move to the surviving shards per the plan; its clock
        is folded into the fleet accumulator so ``clock_units`` never
        goes backwards.
        """
        shard = self._shard(shard_id)
        if len(self.shards) == 1:
            raise ServiceError("cannot retire the last shard")
        remaining = [sid for sid in self.shards if sid != shard_id]
        plan = self._rebalance(remaining, retiring=shard)
        self._retired_clock += shard.server.clock
        del self.shards[shard_id]
        return plan

    def rebalance(self, *, virtual_nodes: Optional[int] = None,
                  replicas: Optional[int] = None) -> MovePlan:
        """Re-ring the current shard set with new ring parameters."""
        if virtual_nodes is not None:
            self.config.virtual_nodes = int(virtual_nodes)
        if replicas is not None:
            self.config.replicas = int(replicas)
        return self._rebalance(list(self.shards))

    def _rebalance(self, shard_ids: List[str],
                   retiring: Optional[Shard] = None) -> MovePlan:
        """Swap the ring and execute the implied minimal move plan.

        For each moved key, every *fetching* shard copies the entry
        from the first current holder (placement order, the retiring
        shard included as a last resort), and every *dropping* shard
        discards its copy.  Only keys whose owner set changed move —
        the consistent-hashing minimality the ring tests assert.
        """
        new_ring = HashRing(
            shard_ids,
            virtual_nodes=self.config.virtual_nodes,
            replicas=self.config.replicas,
        )
        keys = set()
        for sh in self.shards.values():
            keys.update(sh.server.store.keys())
        plan = plan_moves(self.ring, new_ring, sorted(keys))
        for move in plan.moves:
            entry = None
            for holder in (*move.old_placement, *move.new_placement):
                holder_shard = self.shards.get(holder) or (
                    retiring if retiring and retiring.id == holder else None)
                if holder_shard is None:
                    continue
                entry = holder_shard.server.store.peek(move.key)
                if entry is not None:
                    break
            for sid in move.fetch:
                if entry is not None and sid in self.shards:
                    self.shards[sid].server.store.put(
                        dataclasses.replace(
                            entry, pending=list(entry.pending)))
            for sid in move.drop:
                if sid in self.shards:
                    self.shards[sid].server.store.discard(move.key)
        self.ring = new_ring
        self.router.ring = new_ring
        self._rebalances += 1
        return plan

    def drain(self) -> int:
        """Pump until idle, then drain every alive shard (reconciles)."""
        processed = self.router.pump()
        for sh in self.shards.values():
            if sh.alive:
                processed += sh.server.drain()
        self.router.pump()
        return processed

    # -- observability -----------------------------------------------------

    def metrics_snapshot(self, **meta) -> dict:
        """One ``repro.metrics/1`` snapshot for the whole fleet.

        The fleet-level registry (router instruments) and every shard's
        registry merge into a fresh one: counters and histograms sum
        across shards, gauges add (documented on
        :meth:`MetricsRegistry.merge`).  Health, when attached, is
        evaluated on the fleet clock.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        for sh in self.shards.values():
            if sh.metrics is not None and sh.metrics.enabled:
                merged.merge(sh.metrics)
        health_block = (self.health.evaluate(self.clock_units())
                        if self.health is not None else None)
        return merged.to_snapshot(health=health_block, **meta)

    def memory_snapshot(self, **meta) -> dict:
        """One merged ``repro.memory/1`` document for the whole fleet.

        Logical live/peak bytes sum per component and phase across the
        shards; a ``shards`` section keeps each shard's own logical
        view.  Requires construction with ``memory=True``.
        """
        if not self.track_memory:
            raise ServiceError(
                "fleet was not constructed with memory=True")
        per_shard = {
            sid: sh.memory.to_snapshot()
            for sid, sh in self.shards.items() if sh.memory is not None
        }
        return merge_memory_snapshots(per_shard, **meta)

    def hottest_shard_query_p99(self) -> float:
        """Largest per-shard QUERY latency p99 (logical units)."""
        worst = 0.0
        for sh in self.shards.values():
            lats = sh.server._latencies.get(QUERY, [])
            if lats:
                worst = max(worst, float(exact_percentile(lats, 99.0)))
        return worst

    def stats(self) -> dict:
        """Deterministic fleet stats document (byte-stable JSON).

        Contains only logical-clock and counter state — no wall-clock,
        no memory addresses — so two runs of the same seeded workload
        produce byte-identical serializations.
        """
        per_shard = {}
        for sid, sh in self.shards.items():
            srv = sh.server
            per_shard[sid] = {
                "alive": sh.alive,
                "clock_units": int(srv.clock),
                "requests": dict(sorted(srv._requests_by_kind.items())),
                "queue": srv.queue.stats(),
                "store": srv.store.stats(),
                "counters": dict(sorted(srv.counters.items())),
            }
        doc = {
            "schema": FLEET_STATS_SCHEMA,
            "config": {
                "num_shards": len(self.shards),
                "replicas": self.config.replicas,
                "virtual_nodes": self.config.virtual_nodes,
            },
            "ring": self.ring.describe(),
            "clock_units": int(self.clock_units()),
            "router": self.router.stats(),
            "shards": per_shard,
            "derived": {
                "imbalance": round(self.router.imbalance(), 6),
                "hottest_shard_query_p99": self.hottest_shard_query_p99(),
                "kills": self._kills,
                "rebalances": self._rebalances,
            },
        }
        if self.health is not None:
            doc["health"] = self.health.evaluate(self.clock_units())
        return doc
