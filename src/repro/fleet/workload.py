"""Seeded closed-loop Zipfian workload for the partition fleet.

Models "millions of users" traffic shapes against a
:class:`~repro.fleet.fleet.PartitionFleet`, deterministically for a
given ``(profile, seed, fleet config)``:

1. **warm-up** — a fleet DETECT per registry graph plus a *thundering
   herd* of duplicate DETECTs submitted before the first pump; every
   replica's admission queue coalesces its herd onto the in-flight
   original (the existing per-shard dedup layer, now exercised once per
   replica);
2. **steady state** — queries target a *hot-key-skewed* graph (Zipf
   over the key ranks) with a Zipf-skewed vertex inside the graph,
   interleaved with replicated UPDATE bursts and periodic cross-shard
   fan-out queries; an optional **kill script** marks shards unhealthy
   mid-run, after which reads fail over to surviving replicas (served
   DEGRADED, never failed — the failover smoke's assertion);
3. **drain + verify** — drain every shard, run a final ``membership``
   fan-out (its shard-count-invariant digest is recorded), then verify
   that (a) the served membership per graph equals a from-scratch
   solve on the final graph and (b) every alive replica of a key holds
   a byte-identical membership at the same version.

The request *sequence* depends only on ``(profile, seed)`` — never on
the shard count — so the final partitions, fan-out answers, and digest
are identical at 1, 2, and 4 shards (the acceptance invariance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.leiden import leiden
from repro.datasets.registry import load_graph
from repro.dynamic.batch import EdgeBatch, apply_batch, random_batch
from repro.errors import ConfigError
from repro.fleet.fleet import FleetConfig, PartitionFleet

__all__ = [
    "FleetWorkloadProfile",
    "FleetWorkloadResult",
    "FLEET_PROFILES",
    "run_fleet_workload",
]

#: Version tag of the fleet workload result document.
FLEET_WORKLOAD_SCHEMA = "repro.fleet-workload/1"


@dataclass(frozen=True)
class FleetWorkloadProfile:
    """One named fleet request mix."""

    name: str
    graphs: tuple
    #: Steady-state QUERY requests (total, across keys).
    num_queries: int
    #: UPDATE bursts injected across the steady state.
    update_bursts: int
    #: UPDATE requests per burst.
    burst_size: int
    #: Insertions (and deletions) per UPDATE batch.
    edges_per_update: int
    #: Thundering-herd duplicate DETECTs behind each warm-up original.
    herd_detects: int
    #: A cross-shard fan-out query every this many steady queries.
    fanout_every: int
    #: Zipf exponent of the query-vertex distribution.
    zipf_exponent: float = 1.3
    #: Zipf exponent of the hot-*key* (graph) distribution.
    key_zipf: float = 1.5


FLEET_PROFILES: Dict[str, FleetWorkloadProfile] = {
    p.name: p
    for p in [
        FleetWorkloadProfile(
            "tiny", ("com-Orkut", "asia_osm"), 30, 1, 3, 3, 4, 12),
        FleetWorkloadProfile(
            "quick", ("com-Orkut", "asia_osm", "uk-2002"),
            80, 2, 4, 4, 6, 25),
        FleetWorkloadProfile(
            "smoke", ("com-Orkut", "asia_osm", "uk-2002", "com-LiveJournal"),
            200, 3, 6, 5, 8, 40),
    ]
}


@dataclass
class FleetWorkloadResult:
    """Everything one fleet workload run produced."""

    profile: str
    seed: int
    stats: dict
    #: graph name -> bool: served membership == from-scratch solve.
    membership_matches_scratch: Dict[str, bool]
    #: graph name -> bool: all alive replicas hold identical partitions.
    replicas_consistent: Dict[str, bool]
    #: graph name -> store key.
    keys: Dict[str, str]
    #: Shard-count-invariant digest of the final membership fan-out.
    fanout_digest: str
    #: ``(shard_id, at_query)`` kills applied by the fault script.
    kills_applied: List[Tuple[str, int]] = field(default_factory=list)

    def to_json_dict(self) -> dict:
        return {
            "schema": FLEET_WORKLOAD_SCHEMA,
            "profile": self.profile,
            "seed": self.seed,
            "membership_matches_scratch": dict(
                sorted(self.membership_matches_scratch.items())),
            "replicas_consistent": dict(
                sorted(self.replicas_consistent.items())),
            "fanout_digest": self.fanout_digest,
            "kills_applied": [
                {"shard": sid, "at_query": at}
                for sid, at in self.kills_applied],
            "stats": self.stats,
        }


def _zipf_index(rng: np.random.Generator, n: int, s: float) -> int:
    """A Zipf-skewed rank in ``[0, n)`` (0 is the hot item)."""
    return int((int(rng.zipf(s)) - 1) % n)


def resolve_profile(profile: "str | FleetWorkloadProfile") \
        -> FleetWorkloadProfile:
    """Profile lookup with the standard unknown-name error."""
    if isinstance(profile, FleetWorkloadProfile):
        return profile
    try:
        return FLEET_PROFILES[profile]
    except KeyError:
        raise ConfigError(
            f"unknown fleet workload profile {profile!r}; "
            f"known: {sorted(FLEET_PROFILES)}") from None


def run_fleet_workload(
    profile: "str | FleetWorkloadProfile" = "quick",
    *,
    seed: int = 0,
    fleet: Optional[PartitionFleet] = None,
    fleet_config: Optional[FleetConfig] = None,
    kills: Sequence[Tuple[str, int]] = (),
    verify: bool = True,
) -> FleetWorkloadResult:
    """Drive a fleet through ``profile``; returns the result document.

    ``kills`` is the fault script: ``(shard, at_query)`` pairs, applied
    just before steady-state query ``at_query``.  ``shard`` is a shard
    id, a shard index (as a string), or the literal ``"primary"`` —
    the primary of the hottest key, whichever shard that lands on, so
    a failover test degrades reads regardless of ring layout.
    """
    prof = resolve_profile(profile)
    flt = fleet or PartitionFleet(fleet_config)
    rng = np.random.default_rng(seed)
    router = flt.router

    # -- warm-up: DETECT + thundering herd per graph -----------------------
    graphs = {name: load_graph(name) for name in prof.graphs}
    detect_tickets = {}
    for name, graph in graphs.items():
        detect_tickets[name] = router.submit_detect(graph)
        for _ in range(prof.herd_detects):
            # Herd replicas coalesce in every shard's admission queue.
            router.submit_detect(graph)
    router.pump()
    keys = {name: t.response["key"] for name, t in detect_tickets.items()}

    def _resolve_kill_target(token: str) -> str:
        if token == "primary":
            return flt.ring.primary(keys[prof.graphs[0]])
        if token in flt.shards:
            return token
        try:
            index = int(token)
        except ValueError:
            raise ConfigError(
                f"unknown kill target {token!r}; use a shard id, a "
                f"shard index, or 'primary'") from None
        ids = list(flt.shards)
        if not (0 <= index < len(ids)):
            raise ConfigError(
                f"kill index {index} out of range; have {len(ids)} shards")
        return ids[index]

    kill_at: Dict[int, List[str]] = {}
    for token, at in kills:
        kill_at.setdefault(int(at), []).append(str(token))

    def _alive_entry(key: str):
        """The entry for ``key`` from its first alive holder, if any."""
        for sid in flt.ring.placement(key):
            sh = flt.shards.get(sid)
            if sh is not None and sh.alive:
                entry = sh.server.store.peek(key)
                if entry is not None:
                    return entry
        return None

    # -- steady state: hot-key Zipf queries, bursts, kills, fan-outs -------
    names = list(prof.graphs)
    burst_at = {
        (i + 1) * prof.num_queries // (prof.update_bursts + 1)
        for i in range(prof.update_bursts)
    }
    submitted_batches: Dict[str, List[EdgeBatch]] = {n: [] for n in names}
    kills_applied: List[Tuple[str, int]] = []
    burst_index = 0
    for i in range(prof.num_queries):
        for token in kill_at.get(i, ()):
            sid = _resolve_kill_target(token)
            flt.kill(sid)
            kills_applied.append((sid, i))
        if i in burst_at:
            # Burst against the *hottest* key: the skewed write pattern.
            target = names[burst_index % len(names)]
            for j in range(prof.burst_size):
                batch = random_batch(
                    graphs[target],
                    num_insertions=prof.edges_per_update,
                    num_deletions=prof.edges_per_update,
                    seed=seed + 1000 * (burst_index + 1) + j,
                )
                submitted_batches[target].append(batch)
                router.submit_update(keys[target], batch)
            burst_index += 1
        # The rng draw sequence is fixed per (profile, seed): never
        # consult fleet state before drawing, so every shard count
        # sees the identical request tape.
        name = names[_zipf_index(rng, len(names), prof.key_zipf)]
        graph = graphs[name]
        kind_draw = float(rng.random())
        vertex = _zipf_index(rng, graph.num_vertices, prof.zipf_exponent)
        if kind_draw < 0.70:
            router.submit_query(keys[name], "community_of", vertex=vertex)
        elif kind_draw < 0.85:
            entry = _alive_entry(keys[name])
            community = (entry.index.community_of(vertex)
                         if entry is not None else 0)
            router.submit_query(keys[name], "members", community=community)
        elif kind_draw < 0.95:
            router.submit_query(keys[name], "neighbor_communities",
                                vertex=vertex)
        else:
            router.submit_query(keys[name], "membership")
        if prof.fanout_every and (i + 1) % prof.fanout_every == 0:
            router.fanout_query("community_of", vertex=0)
        router.pump()  # closed loop: drain before the next arrival

    # -- drain, final fan-out, verification --------------------------------
    flt.drain()
    final_fanout = router.fanout_query("membership")
    digest = router.fanout_invariant_digest(final_fanout)

    matches: Dict[str, bool] = {}
    consistent: Dict[str, bool] = {}
    if verify:
        for name in names:
            final_graph = graphs[name]
            for batch in submitted_batches[name]:
                final_graph = apply_batch(final_graph, batch)
            entry = _alive_entry(keys[name])
            scratch = leiden(final_graph, flt.config.service.leiden)
            matches[name] = (
                entry is not None
                and entry.graph == final_graph
                and np.array_equal(entry.membership, scratch.membership)
            )
            holders = [
                sh.server.store.peek(keys[name])
                for sh in flt.shards.values()
                if sh.alive and sh.server.store.peek(keys[name]) is not None
            ]
            consistent[name] = bool(holders) and all(
                h.version == holders[0].version
                and np.array_equal(h.membership, holders[0].membership)
                for h in holders[1:]
            ) if holders else False

    return FleetWorkloadResult(
        profile=prof.name,
        seed=seed,
        stats=flt.stats(),
        membership_matches_scratch=matches,
        replicas_consistent=consistent,
        keys=keys,
        fanout_digest=digest,
        kills_applied=kills_applied,
    )
