"""The trace-context a request carries through the fleet.

A :class:`TraceContext` is the propagation vehicle of
:mod:`repro.observability.reqtrace`: the router mints one per injected
request (:meth:`~repro.observability.reqtrace.RequestTracer.begin`),
attaches it to each shard :class:`~repro.service.requests.Ticket` it
fans the request out to, and every hop — admission, shard queue wait,
serve, refresh, failover, reply — appends a causal span to it.  The
server side never imports this module: tickets expose the context as a
plain ``ticket.trace`` attribute and span recording is duck-typed
(``ctx.span(...)``) behind a ``ctx is not None`` guard, preserving the
service → observability layering.

Dedup joins: when a DETECT lands on a shard ticket that already carries
a *different* context (the admission queue returned an in-flight
leader), the follower records a ``dedup_join`` span whose ``link`` is
the leader's trace_id — the two traces stay separate documents but the
join is navigable from either side.
"""

from __future__ import annotations

from typing import Optional

from repro.observability.reqtrace import ReqSpan, RequestTrace

__all__ = ["TraceContext"]


class TraceContext:
    """One request's live trace: a sink plus the mutable record."""

    __slots__ = ("tracer", "trace")

    def __init__(self, tracer, trace: RequestTrace) -> None:
        self.tracer = tracer
        self.trace = trace

    @property
    def trace_id(self) -> str:
        return self.trace.trace_id

    @property
    def seq(self) -> int:
        return self.trace.seq

    def span(
        self,
        name: str,
        lane: str,
        start_units: float,
        end_units: float,
        *,
        link: Optional[str] = None,
        **attrs,
    ) -> ReqSpan:
        """Append one causal span (clamped to a non-negative interval)."""
        s = ReqSpan(
            name=name,
            lane=lane,
            start_units=float(start_units),
            end_units=float(max(start_units, end_units)),
            attrs=attrs,
            link=link,
        )
        self.trace.spans.append(s)
        return s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceContext({self.trace.trace_id}, "
                f"{len(self.trace.spans)} spans)")
