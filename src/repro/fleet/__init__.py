"""Sharded partition-server fleet behind a deterministic router.

The "millions of users" layer: N deterministic
:class:`~repro.service.server.PartitionServer` shards placed on a
consistent-hash ring (:mod:`repro.fleet.ring`), routed by
:mod:`repro.fleet.router` (primary-shard DETECT/UPDATE with
replication, cross-shard QUERY fan-out with deterministic merge,
replica failover served DEGRADED), managed by
:mod:`repro.fleet.fleet` (spawn/kill/drain/rebalance with explicit
minimal key-movement plans), and driven by the hot-key Zipfian
workloads of :mod:`repro.fleet.workload`.  Request journeys are
traceable end to end: :mod:`repro.fleet.tracectx` threads the
:mod:`repro.observability.reqtrace` contexts through router and
shards.  See ``docs/FLEET.md``.
"""

from repro.fleet.fleet import FLEET_STATS_SCHEMA, FleetConfig, PartitionFleet
from repro.fleet.ring import HashRing, KeyMove, MovePlan, plan_moves
from repro.fleet.router import FANOUT_SCHEMA, FleetRouter, FleetTicket, Shard
from repro.fleet.tracectx import TraceContext
from repro.fleet.workload import (
    FLEET_PROFILES,
    FLEET_WORKLOAD_SCHEMA,
    FleetWorkloadProfile,
    FleetWorkloadResult,
    run_fleet_workload,
)

__all__ = [
    "FANOUT_SCHEMA",
    "FLEET_PROFILES",
    "FLEET_STATS_SCHEMA",
    "FLEET_WORKLOAD_SCHEMA",
    "FleetConfig",
    "FleetRouter",
    "FleetTicket",
    "FleetWorkloadProfile",
    "FleetWorkloadResult",
    "HashRing",
    "KeyMove",
    "MovePlan",
    "PartitionFleet",
    "Shard",
    "TraceContext",
    "plan_moves",
    "run_fleet_workload",
]
