"""Consistent-hash ring over partition-store keys.

The fleet places every partition key (``graph_fp:config_fp`` from
:mod:`repro.service.fingerprint`) on a ring of virtual nodes.  Each
shard contributes ``virtual_nodes`` points — blake2b digests of
``"{shard}#{v}"`` — and a key is owned by the first ``replicas``
*distinct* shards clockwise from the key's own point.  blake2b keeps
placement independent of ``PYTHONHASHSEED``; virtual nodes smooth the
per-shard load; and the classic consistent-hashing property holds:
adding one shard to ``N`` moves only ~``K/(N+1)`` of ``K`` keys.

:func:`plan_moves` turns a ring change into an explicit, minimal
key-movement plan — per key, which shards must *fetch* a copy and which
must *drop* theirs — which :meth:`repro.fleet.fleet.PartitionFleet.
rebalance` executes and tests assert the moved-key count of.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ServiceError

__all__ = ["HashRing", "KeyMove", "MovePlan", "plan_moves"]


def _point(label: str) -> int:
    """64-bit ring coordinate of ``label`` (hash-seed independent)."""
    digest = hashlib.blake2b(label.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Virtual-node consistent hashing with a replication factor.

    ``shard_ids`` keep their given order for reporting, but placement
    depends only on the shard *names* (via their hashed points), so two
    rings built from the same set agree regardless of construction
    order or hash randomization.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        *,
        virtual_nodes: int = 64,
        replicas: int = 1,
    ) -> None:
        ids = tuple(shard_ids)
        if not ids:
            raise ServiceError("a ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ServiceError(f"duplicate shard ids: {sorted(ids)}")
        if virtual_nodes < 1:
            raise ServiceError("virtual_nodes must be >= 1")
        if replicas < 1:
            raise ServiceError("replicas must be >= 1")
        self.shard_ids = ids
        self.virtual_nodes = int(virtual_nodes)
        #: Requested replication factor; effective placement width is
        #: ``min(replicas, len(shard_ids))``.
        self.replicas = int(replicas)
        entries: List[Tuple[int, str]] = []
        for shard in ids:
            for v in range(self.virtual_nodes):
                entries.append((_point(f"{shard}#{v}"), shard))
        # Ties (astronomically unlikely 64-bit collisions) break on the
        # shard id so the walk order is still deterministic.
        entries.sort()
        self._points = [p for p, _ in entries]
        self._owners = [s for _, s in entries]

    @property
    def num_shards(self) -> int:
        return len(self.shard_ids)

    def placement(self, key: str) -> Tuple[str, ...]:
        """The ``min(replicas, num_shards)`` owners of ``key``.

        The first entry is the primary; the rest are the replicas in
        ring-walk order.
        """
        want = min(self.replicas, self.num_shards)
        start = bisect_right(self._points, _point(key)) % len(self._points)
        owners: List[str] = []
        for i in range(len(self._points)):
            shard = self._owners[(start + i) % len(self._points)]
            if shard not in owners:
                owners.append(shard)
                if len(owners) == want:
                    break
        return tuple(owners)

    def primary(self, key: str) -> str:
        return self.placement(key)[0]

    def describe(self) -> dict:
        """Deterministic JSON-ready summary."""
        return {
            "shards": list(self.shard_ids),
            "virtual_nodes": self.virtual_nodes,
            "replicas": self.replicas,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HashRing({self.num_shards} shards, "
                f"{self.virtual_nodes} vnodes, R={self.replicas})")


@dataclass(frozen=True)
class KeyMove:
    """Placement change of one key across a ring change."""

    key: str
    old_placement: Tuple[str, ...]
    new_placement: Tuple[str, ...]
    #: Shards that must obtain a copy (in new placement order).
    fetch: Tuple[str, ...]
    #: Shards that must discard their copy.
    drop: Tuple[str, ...]

    @property
    def primary_moved(self) -> bool:
        return self.old_placement[0] != self.new_placement[0]

    def to_json_dict(self) -> dict:
        return {
            "key": self.key,
            "old": list(self.old_placement),
            "new": list(self.new_placement),
            "fetch": list(self.fetch),
            "drop": list(self.drop),
        }


@dataclass(frozen=True)
class MovePlan:
    """Minimal key-movement plan between two rings.

    Only keys whose owner *set* changed appear in ``moves``; a key both
    rings place identically costs nothing.  ``num_moved`` /
    ``num_primary_moved`` are what the consistent-hashing bound tests
    assert (adding one shard to ``N`` moves ~``K/(N+1)`` primaries).
    """

    moves: Tuple[KeyMove, ...]
    #: Keys whose placement is identical under both rings.
    unchanged: int = 0

    @property
    def num_moved(self) -> int:
        return len(self.moves)

    @property
    def num_primary_moved(self) -> int:
        return sum(1 for m in self.moves if m.primary_moved)

    @property
    def total_keys(self) -> int:
        return self.unchanged + len(self.moves)

    def to_json_dict(self) -> dict:
        return {
            "moves": [m.to_json_dict() for m in self.moves],
            "unchanged": self.unchanged,
            "num_moved": self.num_moved,
            "num_primary_moved": self.num_primary_moved,
        }


def plan_moves(
    old_ring: HashRing, new_ring: HashRing, keys: Iterable[str]
) -> MovePlan:
    """The explicit key-movement plan from ``old_ring`` to ``new_ring``.

    Keys are processed in sorted order so the plan (and everything a
    rebalance derives from it) is deterministic regardless of how the
    key set was collected.
    """
    moves: List[KeyMove] = []
    unchanged = 0
    seen: Dict[str, None] = {}
    for key in sorted(keys):
        if key in seen:
            continue
        seen[key] = None
        old_p = old_ring.placement(key)
        new_p = new_ring.placement(key)
        fetch = tuple(s for s in new_p if s not in old_p)
        drop = tuple(s for s in old_p if s not in new_p)
        if not fetch and not drop:
            unchanged += 1
            continue
        moves.append(KeyMove(key, old_p, new_p, fetch, drop))
    return MovePlan(moves=tuple(moves), unchanged=unchanged)
