"""Deterministic request routing across the partition-server fleet.

The router is the only component that talks to more than one shard:

- **DETECT/UPDATE** go to *every* alive shard in the key's ring
  placement, keeping replicas byte-identical (each shard runs the same
  deterministic solve); the per-shard admission queues still apply
  their own backpressure and DETECT dedup, so a thundering herd for a
  cold key costs one solve per replica;
- **QUERY** goes to the first alive shard of the placement.  When that
  is not the primary, the request has *failed over*: the replica serves
  it, but the response is marked ``state = "degraded"`` — the fleet
  analogue of the server's own retry/degrade path, which keeps serving
  the last good partition rather than failing the request;
- **fan-out QUERY** broadcasts one query per registered key to its
  owning shard and merges the answers deterministically (keys sorted,
  shard groups sorted by shard id), producing byte-identical JSON for a
  given fleet state.  The ``answers`` block depends only on the stored
  partitions, never on the shard count, which is what the 1/2/4-shard
  invariance gate compares.

Requests complete inside :meth:`FleetRouter.pump`, which steps the
shards in fleet order until every queue is idle — single-threaded and
deterministic, one logical clock per shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServiceOverloadError
from repro.observability.metrics import NULL_REGISTRY
from repro.observability.reqtrace import NULL_REQTRACE
from repro.service.requests import (
    DETECT,
    DONE,
    FAILED,
    NOT_FOUND,
    QUERY,
    UPDATE,
    DetectRequest,
    QueryRequest,
    Ticket,
    UpdateRequest,
)
from repro.service.fingerprint import partition_key
from repro.service.store import DEGRADED

__all__ = ["Shard", "FleetTicket", "FleetRouter", "FANOUT_SCHEMA"]

#: Version tag of the merged fan-out document.
FANOUT_SCHEMA = "repro.fleet-fanout/1"


@dataclass
class Shard:
    """One fleet member: a partition server plus liveness bookkeeping."""

    id: str
    server: object  # PartitionServer
    alive: bool = True
    #: Per-shard MetricsRegistry when the fleet runs instrumented.
    metrics: Optional[object] = None
    #: Per-shard MemoryLedger when the fleet tracks memory.
    memory: Optional[object] = None

    def describe(self) -> dict:
        return {"id": self.id, "alive": self.alive}


def _jsonify(value):
    """JSON-ready copy of a query answer (numpy arrays become lists)."""
    if isinstance(value, np.ndarray):
        return [int(v) if np.issubdtype(value.dtype, np.integer)
                else float(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in sorted(value.items())}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


@dataclass
class FleetTicket:
    """One fleet-level request tracked across its replica tickets."""

    key: str
    kind: str
    placement: Tuple[str, ...]
    #: ``(shard_id, ticket)`` per shard the request was submitted to.
    tickets: List[Tuple[str, Ticket]] = field(default_factory=list)
    #: The routing decision skipped a dead primary.
    failover: bool = False
    #: No alive shard could take the request at submission.
    no_replica: bool = False
    #: Request-trace context (:class:`~repro.fleet.tracectx.
    #: TraceContext`) when tracing is on; the router seals it at
    #: finalization.
    trace: Optional[object] = None

    @property
    def done(self) -> bool:
        if self.no_replica:
            return True
        return all(t.done for _, t in self.tickets)

    def _serving(self) -> Optional[Tuple[str, Ticket]]:
        """The replica ticket the fleet answer comes from.

        The first (placement-order) ticket that completed ``DONE``;
        falling back to the first completed ticket of any status.  A
        replica killed mid-flight therefore never masks a surviving
        one.
        """
        for sid, t in self.tickets:
            if t.status == DONE:
                return sid, t
        for sid, t in self.tickets:
            if t.done:
                return sid, t
        return self.tickets[0] if self.tickets else None

    @property
    def shard(self) -> Optional[str]:
        serving = self._serving()
        return serving[0] if serving else None

    @property
    def status(self) -> str:
        if self.no_replica:
            return FAILED
        serving = self._serving()
        return serving[1].status if serving else FAILED

    @property
    def latency_units(self) -> int:
        serving = self._serving()
        return serving[1].latency_units if serving else 0

    @property
    def response(self) -> dict:
        if self.no_replica:
            return {"key": self.key, "error": "no alive replica",
                    "shard": None, "fleet_state": "failed"}
        serving = self._serving()
        if serving is None:  # pragma: no cover - defensive
            return {"key": self.key, "error": "not routed"}
        sid, ticket = serving
        doc = dict(ticket.response)
        doc["shard"] = sid
        if self.failover and ticket.status == DONE:
            # Served by a replica because the primary is unhealthy: the
            # answer is the last good partition, reported DEGRADED —
            # same contract as the server's solve-failure degrade path.
            doc["fleet_state"] = DEGRADED
            if "state" in doc:
                doc["state"] = DEGRADED
        else:
            doc["fleet_state"] = "ok" if ticket.status == DONE else "failed"
        return doc


class FleetRouter:
    """Routes fleet requests onto shards and finalizes their tickets.

    ``shards`` is the fleet's ordered ``{shard_id: Shard}`` mapping and
    ``ring`` its current :class:`~repro.fleet.ring.HashRing`; the fleet
    swaps ``ring`` on rebalance.  ``metrics`` (fleet-level registry) and
    ``health`` are optional observability sinks.
    """

    def __init__(self, shards: "Dict[str, Shard]", ring, *,
                 metrics=None, health=None, reqtrace=None) -> None:
        self.shards = shards
        self.ring = ring
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.health = health
        self.reqtrace = reqtrace if reqtrace is not None else NULL_REQTRACE
        self.counters: Dict[str, int] = {
            "routed": 0,
            "failovers": 0,
            "degraded_serves": 0,
            "failover_failed": 0,
            "failed_requests": 0,
            "no_replica": 0,
            "fanouts": 0,
            "fanout_keys": 0,
        }
        self.requests_by_kind: Dict[str, int] = {
            DETECT: 0, QUERY: 0, UPDATE: 0,
        }
        self.routed_by_shard: Dict[str, int] = {}
        self._open: List[FleetTicket] = []
        m = self.metrics
        self._m_requests = m.counter(
            "fleet_requests_total",
            "fleet requests completed, by kind and final status",
            ("kind", "status"))
        self._m_routed = m.counter(
            "fleet_routed_total",
            "requests routed, by serving shard", ("shard",))
        self._m_failovers = m.counter(
            "fleet_failovers_total",
            "requests routed past a dead primary")
        self._m_degraded = m.counter(
            "fleet_degraded_serves_total",
            "requests served DEGRADED by a failover replica")
        self._m_degraded_served = m.counter(
            "fleet_degraded_served_total",
            "failover-path requests finalized, by final status — the "
            "failover-while-error path lands under status=failed instead "
            "of silently vanishing from the degraded accounting",
            ("status",))
        self._m_latency = m.histogram(
            "fleet_request_latency_units",
            "end-to-end fleet request latency (logical units), by kind; "
            "buckets carry trace_id exemplars when request tracing is on",
            ("kind",))
        self._m_fanouts = m.counter(
            "fleet_fanouts_total", "cross-shard query fan-outs")
        self._m_imbalance = m.gauge(
            "fleet_shard_imbalance",
            "max/mean requests routed per shard")

    # -- routing -----------------------------------------------------------

    def clock_units(self) -> int:
        """Fleet logical clock: the sum of the shard clocks."""
        return sum(sh.server.clock for sh in self.shards.values())

    def _alive_placement(self, key: str) -> Tuple[List[str], bool]:
        placement = self.ring.placement(key)
        alive = [sid for sid in placement
                 if sid in self.shards and self.shards[sid].alive]
        failover = bool(alive) and alive[0] != placement[0]
        return alive, failover

    def _track(self, ticket: FleetTicket) -> FleetTicket:
        self._begin_trace(ticket, [sid for sid, _ in ticket.tickets])
        self.counters["routed"] += 1
        self.requests_by_kind[ticket.kind] += 1
        if ticket.no_replica:
            self.counters["no_replica"] += 1
        else:
            serving = ticket.tickets[0][0]
            self.routed_by_shard[serving] = (
                self.routed_by_shard.get(serving, 0) + 1)
            self._m_routed.labels(serving).inc()
        if ticket.failover:
            self.counters["failovers"] += 1
            self._m_failovers.inc()
        if self.metrics.enabled:
            self._m_imbalance.set(self.imbalance())
        self._open.append(ticket)
        return ticket

    def _begin_trace(self, ticket: FleetTicket, routed) -> None:
        """Mint + attach a trace context for one fleet submission.

        Records the admission span on the ``router`` lane (fleet clock)
        and threads the context onto every replica ticket.  A replica
        ticket that *already* carries a different context means the
        shard's admission queue deduplicated this DETECT onto an
        in-flight leader: the follower records a ``dedup_join`` span
        linking to the leader's trace instead.
        """
        if not self.reqtrace.enabled:
            return
        clock = float(self.clock_units())
        ctx = self.reqtrace.begin(ticket.kind, ticket.key, clock)
        ticket.trace = ctx
        ctx.span("admission", "router", clock, clock,
                 kind=ticket.kind, placement=list(ticket.placement),
                 routed=list(routed), failover=ticket.failover,
                 no_replica=ticket.no_replica)
        for sid, shard_ticket in ticket.tickets:
            if shard_ticket.trace is None:
                shard_ticket.trace = ctx
            elif shard_ticket.trace is not ctx:
                now = float(self.clock_units())
                ctx.span("dedup_join", "router", now, now,
                         link=shard_ticket.trace.trace_id, shard=sid,
                         leader_seq=shard_ticket.trace.seq)

    def _submit_to_shard(self, sid: str, make_request) -> Ticket:
        """Submit to one shard, draining the fleet once on overflow.

        A replicated submission must never partially succeed (a retried
        UPDATE would double-apply on the shard that already accepted
        it), so an overflowing shard queue is resolved *inline*: pump
        the whole fleet until idle — which frees every queue — then
        retry once.  The queue's rejection counter still records the
        overflow.
        """
        server = self.shards[sid].server
        try:
            return server.submit(make_request())
        except ServiceOverloadError:
            self.pump()
            return server.submit(make_request())

    def submit_detect(self, graph, config=None) -> FleetTicket:
        """Route a DETECT to every alive shard of its placement."""
        key = partition_key(graph, config)
        alive, failover = self._alive_placement(key)
        ticket = FleetTicket(key=key, kind=DETECT,
                             placement=self.ring.placement(key),
                             failover=failover, no_replica=not alive)
        for sid in alive:
            shard_ticket = self._submit_to_shard(
                sid, lambda: DetectRequest(graph, config))
            ticket.tickets.append((sid, shard_ticket))
        return self._track(ticket)

    def submit_update(self, key: str, batch) -> FleetTicket:
        """Route an UPDATE to every alive shard of its placement."""
        alive, failover = self._alive_placement(key)
        ticket = FleetTicket(key=key, kind=UPDATE,
                             placement=self.ring.placement(key),
                             failover=failover, no_replica=not alive)
        for sid in alive:
            shard_ticket = self._submit_to_shard(
                sid, lambda: UpdateRequest(key, batch))
            ticket.tickets.append((sid, shard_ticket))
        return self._track(ticket)

    def submit_query(self, key: str, query: str = "community_of", *,
                     vertex: Optional[int] = None,
                     community: Optional[int] = None) -> FleetTicket:
        """Route a QUERY to the first alive shard of its placement."""
        alive, failover = self._alive_placement(key)
        ticket = FleetTicket(key=key, kind=QUERY,
                             placement=self.ring.placement(key),
                             failover=failover, no_replica=not alive)
        if alive:
            shard_ticket = self._submit_to_shard(
                alive[0],
                lambda: QueryRequest(key, query, vertex=vertex,
                                     community=community))
            ticket.tickets.append((alive[0], shard_ticket))
        return self._track(ticket)

    # -- the event loop ----------------------------------------------------

    def pump(self) -> int:
        """Step every alive shard (in fleet order) until all are idle.

        Returns the number of shard-level requests processed.  Completed
        fleet tickets are finalized here: counted, reported to metrics
        and fed to the health evaluator on the fleet clock.
        """
        processed = 0
        busy = True
        while busy:
            busy = False
            for sh in self.shards.values():
                if not sh.alive:
                    continue
                while sh.server.step() is not None:
                    processed += 1
                    busy = True
        still_open: List[FleetTicket] = []
        for ticket in self._open:
            if not ticket.done:
                still_open.append(ticket)
                continue
            self._finalize(ticket)
        self._open = still_open
        return processed

    def _finalize(self, ticket: FleetTicket) -> None:
        status = ticket.status
        # DEGRADED is an *answer* annotation: only a DONE failover
        # response carries it (``FleetTicket.response``).  A failover
        # request that still errored is accounted separately so it never
        # silently vanishes from the degraded bookkeeping.
        degraded = ticket.failover and status == DONE
        if status == FAILED:
            self.counters["failed_requests"] += 1
        if degraded:
            self.counters["degraded_serves"] += 1
            self._m_degraded.inc()
        if ticket.failover:
            if status != DONE:
                self.counters["failover_failed"] += 1
            self._m_degraded_served.labels(status).inc()
        ctx = ticket.trace
        fleet_state = ticket.response.get("fleet_state", "")
        if ctx is not None:
            clock = float(self.clock_units())
            ctx.span("reply", "router", clock, clock,
                     status=status, fleet_state=fleet_state,
                     shard=ticket.shard, failover=ticket.failover)
            self.reqtrace.finish(
                ctx, status=status, clock=clock, fleet_state=fleet_state,
                failover=ticket.failover,
                latency_units=float(ticket.latency_units))
        if self.metrics.enabled:
            self._m_requests.labels(ticket.kind, status).inc()
            self._m_latency.labels(ticket.kind).observe(
                float(ticket.latency_units),
                ctx.trace_id if ctx is not None else None)
        if self.health is not None:
            clock = self.clock_units()
            if ticket.kind == QUERY:
                self.health.record_value(
                    "fleet_query_latency_units", clock,
                    float(ticket.latency_units))
            self.health.record_event(
                "fleet_request_errors", clock, status == FAILED)
            self.health.record_value(
                "fleet_shard_imbalance", clock, self.imbalance())
            if self.reqtrace.enabled:
                self.reqtrace.observe_health(
                    self.health.state(clock), float(clock))

    # -- cross-shard fan-out -----------------------------------------------

    def registered_keys(self) -> List[str]:
        """Every key held by an alive shard, sorted (deterministic)."""
        keys = set()
        for sh in self.shards.values():
            if sh.alive:
                keys.update(sh.server.store.keys())
        return sorted(keys)

    def fanout_query(self, query: str = "community_of", *,
                     vertex: Optional[int] = None,
                     community: Optional[int] = None,
                     keys: Optional[List[str]] = None) -> dict:
        """Broadcast one QUERY per key and merge deterministically.

        The merged document groups routing by shard id (sorted) and
        keeps the shard-count-invariant ``answers`` separate from the
        routing metadata, so the same fleet state yields byte-identical
        JSON and the answers match at any shard count.
        """
        targets = sorted(keys) if keys is not None else self.registered_keys()
        tickets = [(key, self.submit_query(key, query, vertex=vertex,
                                           community=community))
                   for key in targets]
        self.pump()
        self.counters["fanouts"] += 1
        self.counters["fanout_keys"] += len(targets)
        self._m_fanouts.inc()
        answers: Dict[str, object] = {}
        states: Dict[str, str] = {}
        served_by: Dict[str, List[str]] = {}
        degraded: List[str] = []
        failed: List[str] = []
        for key, ticket in tickets:
            resp = ticket.response
            if ticket.status != DONE:
                failed.append(key)
                continue
            answers[key] = _jsonify(resp["value"])
            states[key] = resp["state"]
            served_by.setdefault(resp["shard"], []).append(key)
            if ticket.failover:
                degraded.append(key)
        params = {}
        if vertex is not None:
            params["vertex"] = int(vertex)
        if community is not None:
            params["community"] = int(community)
        return {
            "schema": FANOUT_SCHEMA,
            "query": query,
            "params": params,
            "answers": {k: answers[k] for k in sorted(answers)},
            "states": {k: states[k] for k in sorted(states)},
            "shards": {sid: sorted(ks)
                       for sid, ks in sorted(served_by.items())},
            "degraded": sorted(degraded),
            "failed": sorted(failed),
        }

    @staticmethod
    def fanout_invariant_digest(doc: dict) -> str:
        """Digest of a fan-out's shard-count-invariant portion.

        Covers query, params and answers only — never the routing
        metadata — so fleets at different shard counts serving the same
        partitions produce the same digest.
        """
        import hashlib

        payload = json.dumps(
            {"query": doc["query"], "params": doc["params"],
             "answers": doc["answers"]},
            sort_keys=True, separators=(",", ":"))
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()

    # -- accounting --------------------------------------------------------

    def imbalance(self) -> float:
        """Max/mean requests routed per shard (1.0 = perfectly even)."""
        if not self.shards:
            return 0.0
        loads = [self.routed_by_shard.get(sid, 0) for sid in self.shards]
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return max(loads) / mean

    def stats(self) -> dict:
        """Deterministic router block of the fleet stats document."""
        return {
            "requests": dict(sorted(self.requests_by_kind.items())),
            "per_shard": dict(sorted(self.routed_by_shard.items())),
            "counters": dict(sorted(self.counters.items())),
        }
