"""Shared dtype and type-alias conventions.

The paper (Section 5.1.2) uses 32-bit integers for vertex ids, 32-bit
floats for edge weights, and 64-bit floats for computations and hashtable
values.  We mirror that convention across the whole code base so memory
layouts match what the C++ implementation would use.
"""

from __future__ import annotations

from typing import Union

import numpy as np
from numpy.typing import NDArray

#: dtype for vertex ids and community ids (paper: 32-bit integers).
VERTEX_DTYPE = np.int32

#: dtype for CSR offsets — must hold up to 2*|E|+1, so 64-bit.
OFFSET_DTYPE = np.int64

#: dtype for stored edge weights (paper: 32-bit float).
WEIGHT_DTYPE = np.float32

#: dtype for accumulations, modularity and hashtable values (paper: 64-bit).
ACCUM_DTYPE = np.float64

VertexArray = NDArray[np.int32]
OffsetArray = NDArray[np.int64]
WeightArray = NDArray[np.float32]
AccumArray = NDArray[np.float64]

#: Anything accepted where a vertex id is expected.
VertexLike = Union[int, np.integer]


def as_vertex_array(values, *, copy: bool = False) -> VertexArray:
    """Coerce ``values`` to a contiguous int32 vertex-id array."""
    arr = np.asarray(values, dtype=VERTEX_DTYPE)
    if copy and arr is values:
        arr = arr.copy()
    return np.ascontiguousarray(arr)


def as_weight_array(values, *, copy: bool = False) -> WeightArray:
    """Coerce ``values`` to a contiguous float32 edge-weight array."""
    arr = np.asarray(values, dtype=WEIGHT_DTYPE)
    if copy and arr is values:
        arr = arr.copy()
    return np.ascontiguousarray(arr)


def as_accum_array(values) -> AccumArray:
    """Coerce ``values`` to a contiguous float64 accumulation array."""
    return np.ascontiguousarray(np.asarray(values, dtype=ACCUM_DTYPE))
