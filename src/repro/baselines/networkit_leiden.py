"""NetworKit ParallelLeiden — Nguyen's implementation signature.

NetworKit's parallel Leiden (the Bachelor's-thesis implementation the
paper benchmarks) differs from GVE-Leiden in three consequential ways:

- **queue-based pruning with vertex/community locking** instead of
  pruning flags — more synchronization work per move;
- an **unguarded parallel refinement**: vertices merge within their
  community bounds without the isolation/CAS discipline.  This is what
  costs it the Leiden connectivity guarantee — the paper measures a
  ~1.5e-2 fraction of internally-disconnected communities and ~25% lower
  modularity, concentrated on road networks and protein k-mer graphs;
- a **fixed convergence tolerance with no threshold scaling** and the
  paper's methodology caps it at 10 passes.

The fixed coarse tolerance is why its quality collapses exactly on the
low-degree graph classes: there, individual moves contribute ΔQ of order
1/m, so a coarse per-iteration tolerance stops the local-moving phase
long before the chains have coalesced.
"""

from __future__ import annotations

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime

__all__ = ["networkit_leiden", "NETWORKIT_LEIDEN_CONFIG"]

NETWORKIT_LEIDEN_CONFIG = LeidenConfig(
    threshold_scaling=False,      # fixed tolerance across passes
    strict_tolerance=0.01,        # coarse: hurts low-degree graphs
    aggregation_tolerance=None,
    max_iterations=20,
    max_passes=10,                # the paper's ParallelLeiden setup
    refinement="greedy",
    refine_guard="none",          # unguarded merges: loses the guarantee
    vertex_label="move",
)


def networkit_leiden(
    graph: CSRGraph,
    *,
    seed: int = 42,
    runtime: Runtime | None = None,
) -> LeidenResult:
    """Run the NetworKit-style parallel Leiden algorithm."""
    cfg = NETWORKIT_LEIDEN_CONFIG.with_(seed=seed)
    rt = runtime or Runtime(num_threads=1, seed=seed)
    return leiden(graph, cfg, runtime=rt)
