"""igraph Leiden — ``igraph_community_leiden``'s algorithmic signature.

The paper benchmarks igraph with modularity as the quality function
(resolution ``1/2|E|`` on the unscaled objective — equivalent to γ = 1 on
the normalized one), ``beta = 0.01`` for the refinement randomness, and
"run until convergence".  Relative to the original libleidenalg, igraph's
C implementation is leaner (the paper measures it ~4x faster than
original Leiden) but still sequential and still iterating to convergence
with randomized refinement.

We reproduce the signature with the shared engine: sequential execution,
randomized refinement, convergence-driven iteration with a small fixed
tolerance (igraph stops on exact stability of the partition; its
tighter inner loop is reflected in the smaller iteration caps and its
implementation profile).
"""

from __future__ import annotations

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime

__all__ = ["igraph_leiden", "IGRAPH_LEIDEN_CONFIG"]

IGRAPH_LEIDEN_CONFIG = LeidenConfig(
    threshold_scaling=False,
    strict_tolerance=0.0,          # "run until convergence"
    aggregation_tolerance=None,
    max_iterations=50,
    max_passes=20,
    refinement="random",
    vertex_label="move",
)


def igraph_leiden(
    graph: CSRGraph,
    *,
    seed: int = 42,
    runtime: Runtime | None = None,
) -> LeidenResult:
    """Run the igraph-style Leiden algorithm (sequential, randomized)."""
    cfg = IGRAPH_LEIDEN_CONFIG.with_(seed=seed)
    rt = runtime or Runtime(num_threads=1, seed=seed)
    return leiden(graph, cfg, runtime=rt)
