"""Original (Traag et al.) Leiden — libleidenalg's algorithmic signature.

Compared to GVE-Leiden, the original implementation:

- is **sequential**;
- uses the **randomized** refinement phase (selection ∝ ΔQ);
- runs the local-moving phase with a **work queue** rather than pruning
  flags and iterates **to full convergence** — no per-iteration tolerance,
  no threshold scaling;
- has **no aggregation tolerance** — it keeps aggregating as long as the
  partition changes at all;
- imposes no pass cap in practice (``optimise_partition`` loops until the
  partition is stable).

All of that translates into strictly more measured work per edge, which
(together with its sequential execution) is where the paper's 436x gap
comes from.  We reproduce the signature by driving the shared engine with
the equivalent configuration; the per-operation constant factor of the
C++ implementation is modelled by its
:class:`repro.parallel.costmodel.ImplementationProfile`.
"""

from __future__ import annotations

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime

__all__ = ["original_leiden", "ORIGINAL_LEIDEN_CONFIG"]

ORIGINAL_LEIDEN_CONFIG = LeidenConfig(
    threshold_scaling=False,       # no threshold scaling
    strict_tolerance=0.0,          # iterate until no improvement at all
    aggregation_tolerance=None,    # aggregate while anything changes
    max_iterations=100,            # effectively "until convergence"
    max_passes=20,
    refinement="random",           # randomized constrained merge
    vertex_label="move",
)


def original_leiden(
    graph: CSRGraph,
    *,
    seed: int = 42,
    runtime: Runtime | None = None,
) -> LeidenResult:
    """Run the original-Leiden-style algorithm (sequential, randomized)."""
    cfg = ORIGINAL_LEIDEN_CONFIG.with_(seed=seed)
    rt = runtime or Runtime(num_threads=1, seed=seed)
    return leiden(graph, cfg, runtime=rt)
