"""Reimplementations of the competing Leiden implementations.

The paper compares GVE-Leiden against four externally-developed systems.
Each is reproduced here as a Python implementation of that system's
*algorithmic signature* — the convergence policy, pruning style,
refinement rule and execution model that determine how much work it does
and what quality it reaches:

- :mod:`repro.baselines.original_leiden` — Traag et al.'s libleidenalg:
  sequential, randomized refinement, run to full convergence;
- :mod:`repro.baselines.igraph_leiden` — igraph's sequential C
  implementation, run until convergence;
- :mod:`repro.baselines.networkit_leiden` — NetworKit's ParallelLeiden
  (Nguyen): queue-based pruning with an unguarded parallel refinement,
  which is what loses the connectivity guarantee;
- :mod:`repro.baselines.cugraph_leiden` — cuGraph on a simulated A100:
  bulk-synchronous moves, device-memory limits (OOM on the largest
  graphs).

Constant-factor efficiency differences (C++ vs CUDA vs our counting) live
in :data:`repro.parallel.costmodel.IMPLEMENTATION_PROFILES`.
"""

from repro.baselines.cugraph_leiden import A100_DEVICE, cugraph_leiden
from repro.baselines.igraph_leiden import igraph_leiden
from repro.baselines.networkit_leiden import networkit_leiden
from repro.baselines.original_leiden import original_leiden
from repro.baselines.registry import (
    IMPLEMENTATIONS,
    Implementation,
    get_implementation,
    implementation_names,
)

__all__ = [
    "IMPLEMENTATIONS",
    "Implementation",
    "implementation_names",
    "get_implementation",
    "original_leiden",
    "igraph_leiden",
    "networkit_leiden",
    "cugraph_leiden",
    "A100_DEVICE",
]
