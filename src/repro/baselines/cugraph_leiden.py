"""cuGraph Leiden on a simulated NVIDIA A100.

cuGraph executes Leiden as bulk-synchronous GPU kernels.  Two properties
matter for the reproduction:

1. **Device memory**: the A100 has 80 GB.  The paper reports cuGraph
   failing with out-of-memory errors on arabic-2005, uk-2005,
   webbase-2001, it-2004 and sk-2005 — every graph above ~1B edges.  The
   :class:`DeviceModel` reproduces that gate: graph + working set must
   fit in device memory or :class:`repro.errors.SimulatedOutOfMemory` is
   raised.  When a registry stand-in carries its paper-scale statistics,
   the check uses the *paper's* edge count, so the same five graphs fail.

2. **BSP races in refinement**: the GPU kernels test isolation against
   the epoch snapshot but cannot serialize commits within an epoch; rare
   races leave a tiny fraction of disconnected communities (the paper
   measures ~6.6e-5) and cost a little modularity (~3.5% on average).
   ``refine_guard="racy"`` reproduces exactly that failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import (
    PHASE_AGGREGATE,
    PHASE_LOCAL_MOVE,
    PHASE_REFINE,
    LeidenResult,
)
from repro.datasets.registry import GraphSpec
from repro.errors import SimulatedOutOfMemory
from repro.graph.csr import CSRGraph
from repro.observability.memtrack import MemoryLedger
from repro.parallel.runtime import Runtime

__all__ = ["cugraph_leiden", "DeviceModel", "A100_DEVICE", "CUGRAPH_LEIDEN_CONFIG"]


@dataclass(frozen=True)
class DeviceModel:
    """A GPU device's memory budget for graph analytics."""

    name: str = "A100"
    memory_bytes: int = 80 * 1024**3
    #: Bytes of device memory per stored edge: CSR both directions,
    #: COO staging, per-edge scratch for the BSP kernels.
    bytes_per_edge: float = 72.0
    #: Bytes per vertex: memberships, weights, hash state, frontier.
    bytes_per_vertex: float = 96.0

    def required_bytes(self, num_vertices: float, num_edges: float) -> int:
        return int(
            num_edges * self.bytes_per_edge
            + num_vertices * self.bytes_per_vertex
        )

    def allocation_plan(self, num_vertices: float, num_edges: float):
        """The device working set as staged constituent allocations.

        Breaks the 72 B/edge + 96 B/vertex budget into the buffers the
        GPU pipeline actually holds, by component and Leiden phase, so
        an OOM can name what filled the card.  Fractions sum exactly to
        ``bytes_per_edge``/``bytes_per_vertex``; the last entry absorbs
        integer-rounding remainders so the staged total always equals
        :meth:`required_bytes`.
        """
        e, v = float(num_edges), float(num_vertices)
        plan = [
            # (component, buffer, phase, exact bytes)
            ("csr", "adjacency", "other", e * 24.0),
            ("coo", "staging", "other", e * 24.0),
            ("kernels", "edge_scratch", PHASE_LOCAL_MOVE, e * 24.0),
            ("csr", "offsets", "other", v * 16.0),
            ("state", "membership", PHASE_LOCAL_MOVE, v * 16.0),
            ("state", "community_weights", PHASE_LOCAL_MOVE, v * 24.0),
            ("kernels", "hash_state", PHASE_REFINE, v * 24.0),
            ("kernels", "frontier", PHASE_AGGREGATE, v * 16.0),
        ]
        need = self.required_bytes(num_vertices, num_edges)
        staged = [(c, w, p, int(b)) for c, w, p, b in plan[:-1]]
        c, w, p, _ = plan[-1]
        staged.append((c, w, p, need - sum(b for *_, b in staged)))
        return staged

    def check_fit(self, num_vertices: float, num_edges: float, what: str) -> None:
        need = self.required_bytes(num_vertices, num_edges)
        if need > self.memory_bytes:
            # Stage the working set into a ledger so the failure names
            # the buffers (largest first) that blew the budget.
            led = MemoryLedger()
            for comp, buf, phase, nbytes in self.allocation_plan(
                    num_vertices, num_edges):
                led.alloc(comp, buf, nbytes, phase=phase)
            raise SimulatedOutOfMemory(
                need, self.memory_bytes, what,
                alloc_trace=led.allocation_trace())


A100_DEVICE = DeviceModel()

CUGRAPH_LEIDEN_CONFIG = LeidenConfig(
    tolerance=1e-4,               # cuGraph's epoch convergence is fine-grained
    threshold_scaling=True,
    tolerance_drop=10.0,
    aggregation_tolerance=0.8,
    max_iterations=20,
    max_passes=10,
    refinement="greedy",
    refine_guard="racy",          # BSP: isolation tested, commits race
    vertex_label="move",
)


def cugraph_leiden(
    graph: CSRGraph,
    *,
    seed: int = 42,
    runtime: Runtime | None = None,
    device: DeviceModel = A100_DEVICE,
    spec: GraphSpec | None = None,
) -> LeidenResult:
    """Run cuGraph-style Leiden under the device-memory model.

    ``spec`` (a registry entry) supplies paper-scale |V|/|E| for the
    memory check, so the stand-ins reproduce the paper's OOM failures;
    without a spec the actual graph size is used.

    Raises
    ------
    SimulatedOutOfMemory
        If the graph does not fit in device memory.
    """
    if spec is not None:
        device.check_fit(spec.paper_vertices, spec.paper_edges, spec.name)
    else:
        device.check_fit(graph.num_vertices, graph.num_edges, "graph")
    cfg = CUGRAPH_LEIDEN_CONFIG.with_(seed=seed)
    rt = runtime or Runtime(num_threads=1, seed=seed)
    return leiden(graph, cfg, runtime=rt)
