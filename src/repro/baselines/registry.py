"""Implementation registry: everything Figure 6 compares, by name."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.baselines.cugraph_leiden import cugraph_leiden
from repro.baselines.igraph_leiden import igraph_leiden
from repro.baselines.networkit_leiden import networkit_leiden
from repro.baselines.original_leiden import original_leiden
from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.datasets.registry import GraphSpec
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.parallel.costmodel import (
    GPU_MACHINE,
    IMPLEMENTATION_PROFILES,
    PAPER_MACHINE,
    ImplementationProfile,
    MachineModel,
)
from repro.parallel.runtime import Runtime

__all__ = [
    "Implementation",
    "IMPLEMENTATIONS",
    "implementation_names",
    "get_implementation",
]


def _gve(graph: CSRGraph, *, seed: int = 42, runtime: Runtime | None = None,
         spec: GraphSpec | None = None) -> LeidenResult:
    rt = runtime or Runtime(num_threads=1, seed=seed)
    return leiden(graph, LeidenConfig(seed=seed), runtime=rt)


def _original(graph, *, seed=42, runtime=None, spec=None):
    return original_leiden(graph, seed=seed, runtime=runtime)


def _igraph(graph, *, seed=42, runtime=None, spec=None):
    return igraph_leiden(graph, seed=seed, runtime=runtime)


def _networkit(graph, *, seed=42, runtime=None, spec=None):
    return networkit_leiden(graph, seed=seed, runtime=runtime)


def _cugraph(graph, *, seed=42, runtime=None, spec=None):
    return cugraph_leiden(graph, seed=seed, runtime=runtime, spec=spec)


@dataclass(frozen=True)
class Implementation:
    """One comparable implementation: runner + cost/machine profile."""

    name: str
    display_name: str
    run: Callable[..., LeidenResult]
    profile: ImplementationProfile
    machine: MachineModel
    #: Threads the implementation uses on the modelled machine.
    model_threads: int

    def modeled_seconds(
        self, result: LeidenResult, *, scale: float = 1.0
    ) -> float:
        """Modelled runtime of ``result`` for this implementation.

        ``scale`` extrapolates the measured work to paper-scale inputs:
        the registry stand-ins are ~1000x smaller than the SuiteSparse
        originals, so per-region work is multiplied by the edge-count
        ratio while per-region *fixed* costs (barriers) are not — exactly
        how the same algorithm behaves on a 1000x larger graph.
        """
        sim = self.simulated(result, scale=scale)
        return sim.seconds + self.profile.fixed_overhead_seconds

    def simulated(self, result: LeidenResult, *, scale: float = 1.0):
        """Full :class:`~repro.parallel.simthread.SimulatedTime` record."""
        machine = self.profile.machine_for(self.machine)
        return result.ledger.simulate(
            machine, self.model_threads, work_scale=scale
        )


IMPLEMENTATIONS: Dict[str, Implementation] = {
    impl.name: impl
    for impl in [
        Implementation(
            "gve", "GVE-Leiden", _gve,
            IMPLEMENTATION_PROFILES["gve"], PAPER_MACHINE, 64,
        ),
        Implementation(
            "original", "Original Leiden", _original,
            IMPLEMENTATION_PROFILES["original"], PAPER_MACHINE, 1,
        ),
        Implementation(
            "igraph", "igraph Leiden", _igraph,
            IMPLEMENTATION_PROFILES["igraph"], PAPER_MACHINE, 1,
        ),
        Implementation(
            "networkit", "NetworKit Leiden", _networkit,
            IMPLEMENTATION_PROFILES["networkit"], PAPER_MACHINE, 64,
        ),
        Implementation(
            "cugraph", "cuGraph Leiden", _cugraph,
            IMPLEMENTATION_PROFILES["cugraph"], GPU_MACHINE, 108,
        ),
    ]
}


def implementation_names() -> List[str]:
    return list(IMPLEMENTATIONS)


def get_implementation(name: str) -> Implementation:
    try:
        return IMPLEMENTATIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown implementation {name!r}; known: {list(IMPLEMENTATIONS)}"
        ) from None
