"""Community-quality metrics: modularity, connectivity, partition tools."""

from repro.core.quality import cpm_quality
from repro.metrics.comparison import (
    adjusted_rand_index,
    contingency_counts,
    normalized_mutual_information,
)
from repro.metrics.connectivity import (
    connected_components,
    count_components,
    disconnected_communities,
    is_community_connected,
)
from repro.metrics.modularity import (
    community_weights,
    delta_modularity,
    intra_community_weight,
    modularity,
)
from repro.metrics.partition import (
    check_membership,
    community_sizes,
    count_communities,
    groups_from_membership,
    renumber_membership,
)
from repro.metrics.stability import StabilityReport, seed_stability
from repro.metrics.summary import (
    CommunitySummary,
    PartitionSummary,
    summarize_partition,
)

__all__ = [
    "modularity",
    "cpm_quality",
    "delta_modularity",
    "community_weights",
    "intra_community_weight",
    "connected_components",
    "count_components",
    "disconnected_communities",
    "is_community_connected",
    "community_sizes",
    "count_communities",
    "renumber_membership",
    "check_membership",
    "groups_from_membership",
    "contingency_counts",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "CommunitySummary",
    "PartitionSummary",
    "summarize_partition",
    "StabilityReport",
    "seed_stability",
]
