"""Connected components and internally-disconnected community detection.

The headline quality claim of the Leiden algorithm (and Figure 6(d) of the
paper) is the *absence of internally-disconnected communities*: for every
community, the subgraph induced by its members must be connected.  We
check this with a vectorized label-propagation connected-components pass
restricted to intra-community edges — itself a classic parallel CC
formulation (min-label hooking with pointer jumping), so it doubles as a
substrate exercised by the parallel runtime tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.metrics.partition import check_membership
from repro.types import VERTEX_DTYPE

__all__ = [
    "connected_components",
    "count_components",
    "disconnected_communities",
    "is_community_connected",
    "DisconnectedReport",
]


def _propagate_labels(n: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Min-label propagation with pointer jumping over the given edges."""
    labels = np.arange(n, dtype=np.int64)
    if src.size == 0:
        return labels
    while True:
        prev = labels.copy()
        # Hook: every vertex adopts the smallest label among its neighbors.
        gathered = labels[src]
        np.minimum.at(labels, dst, gathered)
        # Pointer jumping: compress chains label -> label[label].
        while True:
            jumped = labels[labels]
            if np.array_equal(jumped, labels):
                break
            labels = jumped
        if np.array_equal(labels, prev):
            return labels


def connected_components(graph: CSRGraph) -> np.ndarray:
    """Component label per vertex (labels are component-min vertex ids)."""
    src, dst, _ = graph.to_coo()
    return _propagate_labels(graph.num_vertices, src, dst)


def count_components(graph: CSRGraph) -> int:
    """Number of connected components (isolated vertices count)."""
    if graph.num_vertices == 0:
        return 0
    return int(np.unique(connected_components(graph)).shape[0])


@dataclass
class DisconnectedReport:
    """Outcome of the internally-disconnected-communities check."""

    num_communities: int
    num_disconnected: int
    disconnected_ids: np.ndarray

    @property
    def fraction(self) -> float:
        """Fraction of communities that are internally disconnected."""
        if self.num_communities == 0:
            return 0.0
        return self.num_disconnected / self.num_communities


def disconnected_communities(graph: CSRGraph, membership) -> DisconnectedReport:
    """Find communities whose induced subgraph is not connected.

    Runs one CC pass over only the intra-community edges, then counts,
    for every community, how many distinct components its members span.
    """
    C = check_membership(membership, graph.num_vertices)
    n = graph.num_vertices
    if n == 0:
        return DisconnectedReport(0, 0, np.empty(0, dtype=VERTEX_DTYPE))
    src, dst, _ = graph.to_coo()
    same = C[src] == C[dst]
    labels = _propagate_labels(n, src[same], dst[same])

    # Components per community: count unique (community, component) pairs.
    comm_ids, comm_index = np.unique(C, return_inverse=True)
    pair_keys = comm_index.astype(np.int64) * np.int64(n) + labels
    unique_pairs = np.unique(pair_keys)
    comps_per_comm = np.bincount(
        (unique_pairs // n).astype(np.int64), minlength=comm_ids.shape[0]
    )
    bad = comps_per_comm > 1
    return DisconnectedReport(
        num_communities=int(comm_ids.shape[0]),
        num_disconnected=int(bad.sum()),
        disconnected_ids=comm_ids[bad],
    )


def is_community_connected(graph: CSRGraph, membership, community: int) -> bool:
    """Whether one specific community is internally connected."""
    report = disconnected_communities(graph, membership)
    return community not in set(report.disconnected_ids.tolist())
