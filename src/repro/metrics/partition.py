"""Partition (community membership) utilities."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import GraphStructureError
from repro.types import VERTEX_DTYPE


def check_membership(membership, num_vertices: int) -> np.ndarray:
    """Validate and coerce a membership array; community ids must be >= 0."""
    C = np.asarray(membership, dtype=VERTEX_DTYPE).ravel()
    if C.shape[0] != num_vertices:
        raise GraphStructureError(
            f"membership has {C.shape[0]} entries for {num_vertices} vertices"
        )
    if C.shape[0] and C.min() < 0:
        raise GraphStructureError("community ids must be non-negative")
    return C


def count_communities(membership) -> int:
    """Number of distinct community ids |Γ|."""
    C = np.asarray(membership)
    if C.shape[0] == 0:
        return 0
    return int(np.unique(C).shape[0])


def community_sizes(membership) -> np.ndarray:
    """Sizes of the *present* communities, indexed by compact community id.

    ``community_sizes(renumber_membership(C)[0])`` is dense; for raw
    memberships absent ids are dropped.
    """
    C = np.asarray(membership)
    if C.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    counts = np.bincount(C)
    return counts[counts > 0]


def renumber_membership(membership) -> tuple[np.ndarray, np.ndarray]:
    """Compact community ids to ``0..k-1`` (Algorithm 1, line 11).

    Returns ``(renumbered, old_ids)`` where ``old_ids[new] == old``.
    Renumbering is by ascending old id, which is deterministic and
    order-independent — the parallel renumbering GVE uses.
    """
    C = np.asarray(membership, dtype=VERTEX_DTYPE)
    old_ids, renumbered = np.unique(C, return_inverse=True)
    return renumbered.astype(VERTEX_DTYPE), old_ids.astype(VERTEX_DTYPE)


def groups_from_membership(membership) -> Dict[int, List[int]]:
    """Mapping community id -> sorted member vertex list (test helper)."""
    C = np.asarray(membership)
    groups: Dict[int, List[int]] = {}
    order = np.argsort(C, kind="stable")
    for v in order.tolist():
        groups.setdefault(int(C[v]), []).append(v)
    return groups


def membership_from_groups(groups: Dict[int, List[int]], num_vertices: int) -> np.ndarray:
    """Inverse of :func:`groups_from_membership`."""
    C = np.full(num_vertices, -1, dtype=VERTEX_DTYPE)
    for cid, members in groups.items():
        for v in members:
            if C[v] != -1:
                raise GraphStructureError(f"vertex {v} assigned twice")
            C[v] = cid
    if (C == -1).any():
        raise GraphStructureError("some vertices are unassigned")
    return C
