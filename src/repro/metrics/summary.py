"""Per-community structural summaries.

Beyond the single quality number, downstream users of a community
detection library need to inspect *which* communities came out: their
sizes, internal densities, conductance, and how much of the graph the
partition explains.  All statistics are computed vectorized from one COO
pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.graph.csr import CSRGraph
from repro.metrics.partition import check_membership
from repro.types import ACCUM_DTYPE

__all__ = ["CommunitySummary", "PartitionSummary", "summarize_partition"]


@dataclass(frozen=True)
class CommunitySummary:
    """Structure of one community."""

    community_id: int
    size: int
    #: Undirected intra-community edge weight (self-loops once).
    internal_weight: float
    #: Weight crossing the community boundary (each cut edge once).
    cut_weight: float
    #: Sum of member weighted degrees.
    volume: float

    @property
    def internal_density(self) -> float:
        """Internal weight over the possible ``size*(size-1)/2`` pairs."""
        pairs = self.size * (self.size - 1) / 2.0
        return self.internal_weight / pairs if pairs else 0.0

    @property
    def conductance(self) -> float:
        """cut / min(vol, 2m - vol); 0 for isolated communities."""
        denom = min(self.volume, self._two_m - self.volume)
        return self.cut_weight / denom if denom > 0 else 0.0

    # populated by summarize_partition via object.__setattr__
    _two_m: float = 0.0


@dataclass
class PartitionSummary:
    """Whole-partition statistics."""

    num_communities: int
    communities: List[CommunitySummary]
    #: Fraction of edge weight that is intra-community.
    coverage: float
    modularity: float

    def sizes(self) -> np.ndarray:
        return np.array([c.size for c in self.communities], dtype=np.int64)

    def size_percentiles(self, qs=(0, 25, 50, 75, 100)) -> dict[int, float]:
        sizes = self.sizes()
        if sizes.size == 0:
            return {q: 0.0 for q in qs}
        return {q: float(np.percentile(sizes, q)) for q in qs}

    def worst_conductance(self, k: int = 5) -> List[CommunitySummary]:
        """The ``k`` most weakly separated communities."""
        return sorted(self.communities,
                      key=lambda c: c.conductance, reverse=True)[:k]


def summarize_partition(graph: CSRGraph, membership) -> PartitionSummary:
    """Compute :class:`PartitionSummary` for a membership vector."""
    from repro.metrics.modularity import modularity as _modularity

    C = check_membership(membership, graph.num_vertices)
    n = graph.num_vertices
    if n == 0:
        return PartitionSummary(0, [], 0.0, 0.0)
    comm_ids, comm_index = np.unique(C, return_inverse=True)
    k = comm_ids.shape[0]
    sizes = np.bincount(comm_index, minlength=k)

    src, dst, wgt = graph.to_coo()
    w64 = wgt.astype(ACCUM_DTYPE)
    cs = comm_index[src]
    cd = comm_index[dst]
    same = cs == cd
    loops = src == dst
    # internal: halve double-stored intra edges, keep loops whole.
    internal = (
        np.bincount(cs[same & ~loops], weights=w64[same & ~loops],
                    minlength=k) / 2.0
        + np.bincount(cs[same & loops], weights=w64[same & loops],
                      minlength=k)
    )
    # cut: each crossing undirected edge appears once per side; halve the
    # per-community sum of crossing stored edges... each stored direction
    # contributes to its source's community, so the per-community total
    # already counts each cut edge exactly once per community.
    cut = np.bincount(cs[~same], weights=w64[~same], minlength=k)
    volume = np.bincount(comm_index, weights=graph.vertex_weights(),
                         minlength=k)

    two_m = graph.total_weight
    communities = []
    for i in range(k):
        c = CommunitySummary(
            community_id=int(comm_ids[i]),
            size=int(sizes[i]),
            internal_weight=float(internal[i]),
            cut_weight=float(cut[i]),
            volume=float(volume[i]),
        )
        object.__setattr__(c, "_two_m", two_m)
        communities.append(c)

    total_weight = float(w64.sum())
    intra_weight = float(w64[same].sum())
    coverage = intra_weight / total_weight if total_weight else 0.0
    return PartitionSummary(
        num_communities=k,
        communities=communities,
        coverage=coverage,
        modularity=_modularity(graph, C),
    )
