"""Partition stability analysis across seeds.

Heuristic community detection is seed-dependent; a practitioner needs to
know *how* seed-dependent before trusting a partition.  This module runs
the algorithm under several seeds and reports the pairwise partition
similarity (NMI by default) plus the per-vertex co-assignment confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.graph.csr import CSRGraph
from repro.metrics.comparison import (
    adjusted_rand_index,
    normalized_mutual_information,
)

__all__ = ["StabilityReport", "seed_stability"]


@dataclass
class StabilityReport:
    """Outcome of a multi-seed stability run."""

    seeds: List[int]
    memberships: List[np.ndarray]
    #: Pairwise similarity matrix (symmetric, unit diagonal).
    similarity: np.ndarray
    metric: str

    @property
    def mean_similarity(self) -> float:
        """Mean off-diagonal pairwise similarity."""
        k = self.similarity.shape[0]
        if k < 2:
            return 1.0
        mask = ~np.eye(k, dtype=bool)
        return float(self.similarity[mask].mean())

    @property
    def min_similarity(self) -> float:
        k = self.similarity.shape[0]
        if k < 2:
            return 1.0
        mask = ~np.eye(k, dtype=bool)
        return float(self.similarity[mask].min())

    def community_counts(self) -> List[int]:
        return [int(len(np.unique(m))) for m in self.memberships]

    def coassignment_confidence(self, u: int, v: int) -> float:
        """Fraction of runs placing ``u`` and ``v`` together."""
        together = sum(
            1 for m in self.memberships if m[u] == m[v]
        )
        return together / len(self.memberships)


def seed_stability(
    graph: CSRGraph,
    config=None,
    *,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    metric: str = "nmi",
    algorithm: Callable | None = None,
) -> StabilityReport:
    """Run ``algorithm`` (default: Leiden) under each seed and compare
    the partitions."""
    # Imported lazily: this module is re-exported by repro.metrics, which
    # repro.core itself depends on — a module-level import would cycle.
    from repro.core.config import LeidenConfig
    from repro.core.leiden import leiden

    if algorithm is None:
        algorithm = leiden
    cfg = config or LeidenConfig()
    if metric == "nmi":
        compare = normalized_mutual_information
    elif metric == "ari":
        compare = adjusted_rand_index
    else:
        raise ValueError("metric must be 'nmi' or 'ari'")

    memberships = [
        algorithm(graph, cfg.with_(seed=s)).membership for s in seeds
    ]
    k = len(memberships)
    sim = np.eye(k)
    for i in range(k):
        for j in range(i + 1, k):
            sim[i, j] = sim[j, i] = compare(memberships[i], memberships[j])
    return StabilityReport(
        seeds=list(seeds),
        memberships=memberships,
        similarity=sim,
        metric=metric,
    )
