"""Partition comparison: NMI and adjusted Rand index.

Used by the dataset generators' tests (recovered vs planted communities)
and by the experiment harness when comparing implementations against each
other.  Both metrics are computed from a sparse contingency table built
with ``np.unique`` over fused pair keys — no Python loops over vertices.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "contingency_counts",
    "normalized_mutual_information",
    "adjusted_rand_index",
]


def contingency_counts(labels_a, labels_b):
    """Sparse contingency table of two labelings.

    Returns ``(counts, a_index, b_index, a_totals, b_totals)`` where
    ``counts[k]`` is the number of items with (renumbered) labels
    ``(a_index[k], b_index[k])``.
    """
    a = np.asarray(labels_a).ravel()
    b = np.asarray(labels_b).ravel()
    if a.shape != b.shape:
        raise ValueError("labelings must have equal length")
    if a.shape[0] == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z, z, z
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    nb = int(bi.max()) + 1
    keys = ai.astype(np.int64) * nb + bi
    uniq, counts = np.unique(keys, return_counts=True)
    a_idx = (uniq // nb).astype(np.int64)
    b_idx = (uniq % nb).astype(np.int64)
    a_tot = np.bincount(ai)
    b_tot = np.bincount(bi)
    return counts.astype(np.int64), a_idx, b_idx, a_tot, b_tot


def normalized_mutual_information(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalization, in ``[0, 1]``."""
    counts, a_idx, b_idx, a_tot, b_tot = contingency_counts(labels_a, labels_b)
    n = float(a_tot.sum())
    if n == 0:
        return 1.0
    pij = counts / n
    pa = a_tot / n
    pb = b_tot / n
    mi = float(np.sum(pij * np.log(pij / (pa[a_idx] * pb[b_idx]))))
    ha = float(-np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    hb = float(-np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    denom = 0.5 * (ha + hb)
    if denom <= 0:
        # Both labelings are constant: identical iff trivially matching.
        return 1.0
    return max(0.0, min(1.0, mi / denom))


def adjusted_rand_index(labels_a, labels_b) -> float:
    """Adjusted Rand index in ``[-1, 1]`` (1 = identical partitions)."""
    counts, _, _, a_tot, b_tot = contingency_counts(labels_a, labels_b)
    n = float(a_tot.sum())
    if n == 0:
        return 1.0

    def comb2(x):
        x = np.asarray(x, dtype=np.float64)
        return x * (x - 1.0) / 2.0

    sum_ij = float(comb2(counts).sum())
    sum_a = float(comb2(a_tot).sum())
    sum_b = float(comb2(b_tot).sum())
    total = comb2(n)
    expected = sum_a * sum_b / total if total else 0.0
    max_index = 0.5 * (sum_a + sum_b)
    if max_index == expected:
        return 1.0
    return (sum_ij - expected) / (max_index - expected)
