"""Modularity and delta-modularity (paper Section 3.2).

Modularity of a membership ``C`` over a graph with symmetric edge storage:

    Q = Σ_c [ σ_c / 2m − (Σ_c / 2m)² ]                        (Equation 1)

where ``σ_c`` sums intra-community stored edge weights (both directions of
each undirected edge, self-loops once), ``Σ_c`` is the community's total
edge weight (sum of member weighted degrees), and ``m`` the undirected
total edge weight.  Delta-modularity of moving vertex ``i`` from community
``d`` to ``c``:

    ΔQ = (K_{i→c} − K_{i→d}) / m − K_i (K_i + Σ_c − Σ_d) / 2m²  (Equation 2)

with ``Σ`` taken *before* the move (``i`` still counted in ``d``) and
``K_{i→*}`` excluding self-loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.types import ACCUM_DTYPE

__all__ = [
    "modularity",
    "delta_modularity",
    "community_weights",
    "intra_community_weight",
]


def community_weights(graph: CSRGraph, membership) -> np.ndarray:
    """Total edge weight ``Σ_c`` of every community.

    Output length is ``max(membership) + 1``.
    """
    C = np.asarray(membership)
    if C.shape[0] != graph.num_vertices:
        raise GraphStructureError("membership length must equal vertex count")
    K = graph.vertex_weights()
    size = int(C.max()) + 1 if C.shape[0] else 0
    return np.bincount(C, weights=K, minlength=size)


def intra_community_weight(graph: CSRGraph, membership) -> float:
    """Sum ``σ`` of stored intra-community edge weights (all communities)."""
    C = np.asarray(membership)
    src, dst, wgt = graph.to_coo()
    same = C[src] == C[dst]
    return float(wgt[same].sum(dtype=ACCUM_DTYPE))


def modularity(graph: CSRGraph, membership, *, resolution: float = 1.0) -> float:
    """Modularity ``Q`` of ``membership`` (Equation 1).

    ``resolution`` γ generalizes to Q = Σ_c [σ_c/2m − γ(Σ_c/2m)²]; the
    paper uses γ = 1.
    """
    C = np.asarray(membership)
    if C.shape[0] != graph.num_vertices:
        raise GraphStructureError("membership length must equal vertex count")
    if graph.num_vertices == 0:
        return 0.0
    two_m = graph.total_weight
    if two_m <= 0:
        return 0.0
    sigma = intra_community_weight(graph, membership)
    Sigma = community_weights(graph, membership)
    return float(sigma / two_m - resolution * np.sum((Sigma / two_m) ** 2))


def delta_modularity(
    k_i_to_c,
    k_i_to_d,
    k_i,
    sigma_c,
    sigma_d,
    m: float,
    *,
    resolution: float = 1.0,
):
    """Delta-modularity of moving ``i`` from ``d`` to ``c`` (Equation 2).

    All arguments may be scalars or broadcastable arrays; ``sigma_c`` /
    ``sigma_d`` are the community totals *before* the move.
    """
    k_i_to_c = np.asarray(k_i_to_c, dtype=ACCUM_DTYPE)
    gain = (k_i_to_c - k_i_to_d) / m
    penalty = resolution * k_i * (k_i + sigma_c - sigma_d) / (2.0 * m * m)
    return gain - penalty
