"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphFormatError(ReproError):
    """A graph file or edge list could not be parsed or is inconsistent."""


class GraphStructureError(ReproError):
    """A graph object violates a structural invariant (bad CSR, etc.)."""


class ConfigError(ReproError):
    """An algorithm configuration is invalid or inconsistent."""


class ConvergenceError(ReproError):
    """An algorithm failed to make progress within its iteration budget."""


class MetricsError(ReproError):
    """A metric instrument or SLO configuration is invalid or misused."""


class ServiceError(ReproError):
    """The partition-serving subsystem failed to satisfy a request."""


class ServiceOverloadError(ServiceError):
    """The service admission queue is full (backpressure).

    Raised by :meth:`repro.service.server.PartitionServer.submit` when
    the bounded admission queue rejects a request; clients are expected
    to drain or back off and resubmit.
    """


class SimulatedOutOfMemory(ReproError):
    """A simulated device (GPU model) ran out of device memory.

    Mirrors the cuGraph OOM failures the paper reports on arabic-2005,
    uk-2005, webbase-2001, it-2004 and sk-2005.
    """

    def __init__(self, required_bytes: int, capacity_bytes: int,
                 what: str = "graph", alloc_trace=None):
        self.required_bytes = int(required_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.what = what
        #: Largest-first ``component/what phase=... N B`` lines from the
        #: device memory ledger, naming what filled the budget (empty
        #: when the failing model did not stage its allocations).
        self.alloc_trace = list(alloc_trace) if alloc_trace else []
        message = (
            f"simulated device out of memory: {what} needs "
            f"{required_bytes} B but device holds {capacity_bytes} B"
        )
        if self.alloc_trace:
            message += "\n  allocation trace (largest first):\n    " + \
                "\n    ".join(self.alloc_trace)
        super().__init__(message)
