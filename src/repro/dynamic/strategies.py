"""Affected-vertex strategies for incremental updates.

Given the previous membership and an edge batch, each strategy marks the
vertices whose community assignment must be reconsidered:

- **naive-dynamic (ND)** — everyone; the warm start alone saves work;
- **delta-screening (DS)** (Zarayeneh & Kalyanaraman) — for an inserted
  edge between different communities: both endpoints and their
  neighbourhoods plus the destination community; for a deleted edge
  within a community: the whole community.  Conservative but sound;
- **dynamic-frontier (DF)** (the paper group's follow-up) — only the
  endpoints of changed edges; the local-moving phase's pruning rule
  ("mark neighbours of movers unprocessed") then grows the frontier
  organically.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.batch import EdgeBatch
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["APPROACHES", "affected_vertices"]

APPROACHES = ("naive", "delta-screening", "frontier")


def affected_vertices(
    graph: CSRGraph,
    membership: np.ndarray,
    batch: EdgeBatch,
    *,
    approach: str = "frontier",
) -> np.ndarray:
    """Boolean mask of vertices the update must reconsider.

    ``graph`` is the *updated* graph; ``membership`` the pre-update
    partition (already padded/truncated to the new vertex count).
    """
    if approach not in APPROACHES:
        raise ConfigError(f"approach must be one of {APPROACHES}")
    n = graph.num_vertices
    mask = np.zeros(n, dtype=bool)
    if approach == "naive":
        mask[:] = True
        return mask

    touched = batch.touched_vertices()
    touched = touched[touched < n]
    mask[touched] = True
    if approach == "frontier":
        return mask

    # delta-screening: widen around the change sites.
    C = np.asarray(membership)
    # Insertions: both endpoints' neighbourhoods, plus every vertex of
    # the community the edge points into (it may now attract others).
    for u, v in zip(batch.insert_sources.tolist(),
                    batch.insert_targets.tolist()):
        if u < n:
            mask[graph.neighbors(u)] = True
        if v < n:
            mask[graph.neighbors(v)] = True
            mask[C == C[v]] = True
    # Deletions: an intra-community deletion can split the community, so
    # all of it must be revisited; endpoints' neighbourhoods regardless.
    for u, v in zip(batch.delete_sources.tolist(),
                    batch.delete_targets.tolist()):
        if u < n:
            mask[graph.neighbors(u)] = True
        if v < n:
            mask[graph.neighbors(v)] = True
        if u < n and v < n and C[u] == C[v]:
            mask[C == C[u]] = True
    return mask
