"""Dynamic (incremental) Leiden for evolving graphs.

The paper closes its variant discussion with the observation that the
refine-based super-vertex labelling "may be more suitable for the design
of dynamic Leiden algorithm (for dynamic graphs)" — the follow-up work
the same group published as ND/DS/DF-Leiden.  This package implements
that extension on top of the static engine:

- :mod:`repro.dynamic.batch` — edge insertion/deletion batches and their
  application to a CSR graph;
- :mod:`repro.dynamic.strategies` — the three affected-vertex policies
  from the dynamic-community-detection literature:

  * **naive-dynamic (ND)**: warm-start from the previous membership,
    reconsider every vertex;
  * **delta-screening (DS)**: reconsider the endpoints of changed edges,
    their neighbourhoods, and (for deletions) everything in the affected
    communities;
  * **dynamic-frontier (DF)**: reconsider only the endpoints; the
    pruning flags propagate work outward exactly like the static
    algorithm's "mark neighbours unprocessed" rule;

- :mod:`repro.dynamic.update` — ``dynamic_leiden``, the incremental
  driver tying them together.
"""

from repro.dynamic.batch import EdgeBatch, apply_batch
from repro.dynamic.strategies import (
    APPROACHES,
    affected_vertices,
)
from repro.dynamic.update import DynamicResult, dynamic_leiden

__all__ = [
    "EdgeBatch",
    "apply_batch",
    "APPROACHES",
    "affected_vertices",
    "DynamicResult",
    "dynamic_leiden",
]
