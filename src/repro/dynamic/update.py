"""The incremental driver: ``dynamic_leiden``.

Applies an edge batch to a graph, selects the affected vertices per the
chosen strategy, and re-runs the static engine warm-started from the
previous membership.  Communities of deleted intra-community edges can
split; the refinement phase's connectivity discipline still applies, so
the updated partition carries the same guarantee as a from-scratch run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.core.result import LeidenResult
from repro.dynamic.batch import EdgeBatch, apply_batch
from repro.dynamic.strategies import affected_vertices
from repro.graph.csr import CSRGraph
from repro.parallel.runtime import Runtime
from repro.types import VERTEX_DTYPE

__all__ = ["DynamicResult", "dynamic_leiden"]


@dataclass
class DynamicResult:
    """Outcome of one incremental update."""

    result: LeidenResult
    graph: CSRGraph
    #: Fraction of vertices initially reconsidered (1.0 for naive).
    affected_fraction: float

    @property
    def membership(self) -> np.ndarray:
        return self.result.membership

    @property
    def num_communities(self) -> int:
        return self.result.num_communities


def dynamic_leiden(
    graph: CSRGraph,
    membership: np.ndarray,
    batch: EdgeBatch,
    config: LeidenConfig | None = None,
    *,
    approach: str = "frontier",
    runtime: Runtime | None = None,
) -> DynamicResult:
    """Update ``membership`` after applying ``batch`` to ``graph``.

    Parameters
    ----------
    graph:
        The pre-update graph.
    membership:
        The pre-update community of each vertex (e.g. a previous
        :class:`~repro.core.result.LeidenResult`'s membership).
    batch:
        Edge insertions/deletions to apply.
    approach:
        ``"naive"``, ``"delta-screening"`` or ``"frontier"``.
    """
    cfg = config or LeidenConfig()
    updated = apply_batch(graph, batch)

    # Pad the previous membership over any newly-appearing vertices:
    # each starts in its own fresh community.
    old = np.asarray(membership, dtype=VERTEX_DTYPE)
    n_new = updated.num_vertices
    if n_new > old.shape[0]:
        extra = np.arange(n_new - old.shape[0], dtype=VERTEX_DTYPE)
        warm = np.concatenate([old, old.max(initial=-1) + 1 + extra])
    else:
        warm = old[:n_new].copy()

    mask = affected_vertices(updated, warm, batch, approach=approach)
    result = leiden(
        updated,
        cfg,
        runtime=runtime,
        initial_membership=warm,
        affected=mask,
    )
    frac = float(mask.mean()) if mask.shape[0] else 0.0
    return DynamicResult(result=result, graph=updated,
                         affected_fraction=frac)
