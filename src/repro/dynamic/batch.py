"""Edge batches: the unit of change for the dynamic algorithm.

A batch carries undirected insertions and deletions.  ``apply_batch``
produces the updated CSR graph: deletions remove *all* parallel edges
between their endpoint pairs (both directions), insertions are added
symmetrically and coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

__all__ = ["EdgeBatch", "apply_batch", "random_batch"]


def _as_pairs(edges) -> tuple[np.ndarray, np.ndarray]:
    if edges is None or len(edges) == 0:
        e = np.empty(0, dtype=VERTEX_DTYPE)
        return e, e.copy()
    arr = np.asarray(edges, dtype=VERTEX_DTYPE)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphStructureError("edges must be an (n, 2) array")
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


@dataclass
class EdgeBatch:
    """A set of undirected edge insertions and deletions."""

    insert_sources: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE))
    insert_targets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE))
    insert_weights: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=WEIGHT_DTYPE))
    delete_sources: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE))
    delete_targets: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VERTEX_DTYPE))

    @classmethod
    def from_edges(cls, insertions=None, deletions=None,
                   insert_weights=None) -> "EdgeBatch":
        """Build a batch from ``(u, v)`` pair lists."""
        isrc, idst = _as_pairs(insertions)
        dsrc, ddst = _as_pairs(deletions)
        if insert_weights is None:
            iw = np.ones(isrc.shape[0], dtype=WEIGHT_DTYPE)
        else:
            iw = np.asarray(insert_weights, dtype=WEIGHT_DTYPE)
            if iw.shape[0] != isrc.shape[0]:
                raise GraphStructureError("insert_weights length mismatch")
        return cls(isrc, idst, iw, dsrc, ddst)

    @property
    def num_insertions(self) -> int:
        return int(self.insert_sources.shape[0])

    @property
    def num_deletions(self) -> int:
        return int(self.delete_sources.shape[0])

    def touched_vertices(self) -> np.ndarray:
        """Sorted unique endpoints of every changed edge."""
        return np.unique(np.concatenate([
            self.insert_sources, self.insert_targets,
            self.delete_sources, self.delete_targets,
        ]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"EdgeBatch(+{self.num_insertions} edges, "
                f"-{self.num_deletions} edges)")


def apply_batch(graph: CSRGraph, batch: EdgeBatch) -> CSRGraph:
    """The graph after applying ``batch``.

    Deletions remove all stored edges between each ``{u, v}`` pair (in
    both directions); insertions are symmetrized and coalesced with any
    surviving parallel edges.  The vertex set may grow if insertions
    reference new ids.
    """
    src, dst, wgt = graph.to_coo()
    if batch.num_deletions:
        n = max(graph.num_vertices,
                int(batch.delete_sources.max(initial=-1)) + 1,
                int(batch.delete_targets.max(initial=-1)) + 1)
        # canonical undirected keys
        lo = np.minimum(src, dst).astype(np.int64)
        hi = np.maximum(src, dst).astype(np.int64)
        keys = lo * n + hi
        dlo = np.minimum(batch.delete_sources, batch.delete_targets).astype(np.int64)
        dhi = np.maximum(batch.delete_sources, batch.delete_targets).astype(np.int64)
        dkeys = np.unique(dlo * n + dhi)
        keep = ~np.isin(keys, dkeys)
        src, dst, wgt = src[keep], dst[keep], wgt[keep]

    if batch.num_insertions:
        # New edges enter directed-once; symmetrize only them, then merge.
        isrc = batch.insert_sources
        idst = batch.insert_targets
        iw = batch.insert_weights
        loops = isrc == idst
        add_src = np.concatenate([isrc, idst[~loops]])
        add_dst = np.concatenate([idst, isrc[~loops]])
        add_w = np.concatenate([iw, iw[~loops]])
        src = np.concatenate([src, add_src])
        dst = np.concatenate([dst, add_dst])
        wgt = np.concatenate([wgt, add_w])

    num_vertices = graph.num_vertices
    if src.shape[0]:
        num_vertices = max(num_vertices,
                           int(src.max()) + 1, int(dst.max()) + 1)
    return build_csr_from_edges(
        src, dst, wgt,
        num_vertices=num_vertices,
        symmetrize=False,
        coalesce="sum",
    )


def random_batch(
    graph: CSRGraph,
    *,
    num_insertions: int = 0,
    num_deletions: int = 0,
    seed: int = 0,
) -> EdgeBatch:
    """A random batch: uniform new pairs plus uniformly sampled existing
    edges to delete — the standard dynamic-benchmark workload."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    ins = None
    if num_insertions:
        u = rng.integers(0, n, num_insertions)
        v = rng.integers(0, n, num_insertions)
        keep = u != v
        ins = np.stack([u[keep], v[keep]], axis=1)
    dels = None
    if num_deletions:
        src, dst, _ = graph.to_coo()
        fwd = src < dst
        src, dst = src[fwd], dst[fwd]
        if src.shape[0]:
            pick = rng.choice(src.shape[0],
                              size=min(num_deletions, src.shape[0]),
                              replace=False)
            dels = np.stack([src[pick], dst[pick]], axis=1)
    return EdgeBatch.from_edges(ins, dels)
