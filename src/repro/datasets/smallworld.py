"""Preferential-attachment and small-world generators.

Two additional classic families beyond the registry's needs:

- :func:`barabasi_albert_graph` — scale-free growth by preferential
  attachment (another social-network-like profile, with a hub backbone
  rather than planted blocks);
- :func:`watts_strogatz_graph` — a ring lattice with random rewiring,
  interpolating between the road-like (high clustering, long paths) and
  random regimes.

Both are vectorized: Barabási-Albert uses the repeated-endpoints trick
(sampling uniformly from the running edge-endpoint list is exactly
degree-proportional sampling), Watts-Strogatz rewires all ring edges in
one pass.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["barabasi_albert_graph", "watts_strogatz_graph"]


def barabasi_albert_graph(
    num_vertices: int,
    attach: int,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Scale-free graph: each new vertex attaches to ``attach`` existing
    vertices with probability proportional to their degree."""
    if attach < 1:
        raise ConfigError("attach must be >= 1")
    if num_vertices <= attach:
        raise ConfigError("num_vertices must exceed attach")
    rng = np.random.default_rng(seed)

    # Seed clique over the first attach+1 vertices.
    seed_nodes = np.arange(attach + 1)
    su, sv = np.triu_indices(attach + 1, k=1)
    src_parts = [seed_nodes[su]]
    dst_parts = [seed_nodes[sv]]

    # The endpoint pool realizes preferential attachment: every vertex
    # appears once per incident edge, so uniform pool sampling is
    # degree-proportional.
    pool = np.concatenate([seed_nodes[su], seed_nodes[sv]]).tolist()
    for v in range(attach + 1, num_vertices):
        targets = set()
        while len(targets) < attach:
            targets.add(int(pool[rng.integers(0, len(pool))]))
        tgt = list(targets)
        src_parts.append(np.full(len(tgt), v, dtype=np.int64))
        dst_parts.append(np.asarray(tgt, dtype=np.int64))
        pool.extend(tgt)
        pool.extend([v] * len(tgt))

    return build_csr_from_edges(
        np.concatenate(src_parts).astype(VERTEX_DTYPE),
        np.concatenate(dst_parts).astype(VERTEX_DTYPE),
        num_vertices=num_vertices,
    )


def watts_strogatz_graph(
    num_vertices: int,
    neighbors: int,
    rewire_probability: float,
    *,
    seed: int = 0,
) -> CSRGraph:
    """Ring lattice (each vertex linked to ``neighbors`` nearest on each
    side) with each edge's far endpoint rewired with the given
    probability."""
    if num_vertices < 4:
        raise ConfigError("num_vertices must be >= 4")
    if not 1 <= neighbors < num_vertices // 2:
        raise ConfigError("neighbors must be in [1, n/2)")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ConfigError("rewire_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = num_vertices

    base = np.arange(n, dtype=np.int64)
    src = np.repeat(base, neighbors)
    offsets = np.tile(np.arange(1, neighbors + 1, dtype=np.int64), n)
    dst = (src + offsets) % n

    rewire = rng.random(src.shape[0]) < rewire_probability
    new_dst = rng.integers(0, n, int(rewire.sum()))
    dst = dst.copy()
    dst[rewire] = new_dst
    keep = src != dst
    return build_csr_from_edges(
        src[keep].astype(VERTEX_DTYPE),
        dst[keep].astype(VERTEX_DTYPE),
        num_vertices=n,
    )
