"""R-MAT (recursive matrix) graph generator.

R-MAT with skewed quadrant probabilities produces the heavy-tailed degree
distributions of web crawls and social networks.  Edge endpoints are
sampled fully vectorized: for each of the ``log2(n)`` levels, one batch of
random draws picks a quadrant for every edge at once.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["rmat_graph", "rmat_edges"]


def rmat_edges(
    scale: int,
    num_edges: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    noise: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``num_edges`` R-MAT edge endpoints over ``2**scale`` vertices.

    ``a + b + c`` must be < 1; the fourth quadrant gets the remainder.
    ``noise`` jitters the quadrant probabilities per level (the standard
    smoothing that avoids exact self-similar artifacts).
    """
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ConfigError("quadrant probabilities must be non-negative")
    if scale < 1 or scale > 30:
        raise ConfigError("scale must be in [1, 30]")
    rng = np.random.default_rng(seed)
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        jitter = 1.0 + noise * (rng.random(4) - 0.5)
        pa, pb, pc, pd = np.array([a, b, c, d]) * jitter
        total = pa + pb + pc + pd
        pa, pb, pc = pa / total, pb / total, pc / total
        u = rng.random(num_edges)
        right = u >= pa + pb  # destination bit
        lower = ((u >= pa) & (u < pa + pb)) | (u >= pa + pb + pc)  # source bit
        src = (src << 1) | lower.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)
    return src, dst


def rmat_graph(
    scale: int,
    avg_degree: float,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    connect: bool = True,
) -> CSRGraph:
    """An undirected R-MAT graph on ``2**scale`` vertices.

    ``avg_degree`` counts stored (bidirectional) edge endpoints per
    vertex, matching the paper's ``D_avg`` convention.  ``connect=True``
    threads a Hamiltonian path through all vertices so the graph has no
    isolated vertices (SuiteSparse web crawls are crawled, hence
    reachable).
    """
    n = 1 << scale
    num_edges = max(1, int(n * avg_degree / 2))
    src, dst = rmat_edges(scale, num_edges, a=a, b=b, c=c, seed=seed)
    if connect:
        path = np.arange(n - 1, dtype=np.int64)
        src = np.concatenate([src, path])
        dst = np.concatenate([dst, path + 1])
    keep = src != dst
    return build_csr_from_edges(
        src[keep].astype(VERTEX_DTYPE),
        dst[keep].astype(VERTEX_DTYPE),
        num_vertices=n,
    )
