"""Planted-partition and stochastic-block-model generators.

These produce the social-network-like stand-ins: dense-ish graphs whose
community structure strength is controlled by the intra/inter degree
split.  Sampling is vectorized: edge endpoints are drawn directly rather
than flipping a coin per vertex pair, so generation is O(edges).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["planted_partition", "stochastic_block_model"]


def planted_partition(
    num_communities: int,
    community_size: int,
    *,
    intra_degree: float = 10.0,
    inter_degree: float = 2.0,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Equal-sized planted communities.

    Every vertex receives on average ``intra_degree`` edge endpoints
    inside its community and ``inter_degree`` endpoints anywhere.
    Returns ``(graph, planted_membership)``.
    """
    if num_communities < 1 or community_size < 2:
        raise ConfigError("need at least one community of size >= 2")
    rng = np.random.default_rng(seed)
    n = num_communities * community_size
    m_intra_per_comm = max(1, int(community_size * intra_degree / 2))
    m_inter = int(n * inter_degree / 2)

    bases = np.repeat(
        np.arange(num_communities, dtype=np.int64) * community_size,
        m_intra_per_comm,
    )
    u = rng.integers(0, community_size, bases.shape[0]) + bases
    v = rng.integers(0, community_size, bases.shape[0]) + bases
    uo = rng.integers(0, n, m_inter)
    vo = rng.integers(0, n, m_inter)
    src = np.concatenate([u, uo])
    dst = np.concatenate([v, vo])
    keep = src != dst
    graph = build_csr_from_edges(
        src[keep].astype(VERTEX_DTYPE),
        dst[keep].astype(VERTEX_DTYPE),
        num_vertices=n,
    )
    membership = np.repeat(
        np.arange(num_communities, dtype=VERTEX_DTYPE), community_size
    )
    return graph, membership


def stochastic_block_model(
    block_sizes,
    *,
    intra_degree: float = 10.0,
    mixing: float = 0.2,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """SBM with arbitrary block sizes and a mixing parameter.

    ``mixing`` is the expected fraction of each vertex's edges that leave
    its block (the LFR μ convention): 0 gives disconnected blocks, values
    near 1 destroy the community structure (the com-Orkut-like regime).
    Returns ``(graph, planted_membership)``.
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.shape[0] == 0 or (sizes < 1).any():
        raise ConfigError("block_sizes must be positive integers")
    if not 0.0 <= mixing <= 1.0:
        raise ConfigError("mixing must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = int(sizes.sum())
    k = sizes.shape[0]
    starts = np.zeros(k, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    membership = np.repeat(np.arange(k, dtype=VERTEX_DTYPE), sizes)

    total_endpoints = n * intra_degree
    m_intra_per_block = np.maximum(
        (sizes * intra_degree * (1.0 - mixing) / 2).astype(np.int64), 0
    )
    m_inter = int(total_endpoints * mixing / 2)

    src_parts, dst_parts = [], []
    for b in range(k):
        mb = int(m_intra_per_block[b])
        if mb == 0 or sizes[b] < 2:
            continue
        u = rng.integers(0, sizes[b], mb) + starts[b]
        v = rng.integers(0, sizes[b], mb) + starts[b]
        src_parts.append(u)
        dst_parts.append(v)
    if m_inter:
        src_parts.append(rng.integers(0, n, m_inter))
        dst_parts.append(rng.integers(0, n, m_inter))
    if src_parts:
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        keep = src != dst
        src, dst = src[keep], dst[keep]
    else:
        src = dst = np.empty(0, dtype=np.int64)
    graph = build_csr_from_edges(
        src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE), num_vertices=n
    )
    return graph, membership
