"""Synthetic dataset generators and the paper's 13-graph registry.

The paper evaluates on SuiteSparse graphs of 25M-3.8B edges across four
families — web crawls (LAW), social networks (SNAP), road networks
(DIMACS10) and protein k-mer graphs (GenBank).  Those inputs are not
available offline and would not fit this environment, so
:mod:`repro.datasets.registry` provides scaled-down synthetic stand-ins
(~1000x smaller) whose degree profiles and community structure match each
class; the per-class observations the paper makes (phase splits, runtime
per edge, community counts) are driven by exactly those properties.
"""

from repro.datasets.geometric import road_network
from repro.datasets.kmer import kmer_graph
from repro.datasets.lfr import lfr_like_graph
from repro.datasets.registry import (
    REGISTRY,
    GraphSpec,
    graph_spec,
    load_graph,
    registry_names,
)
from repro.datasets.rmat import rmat_graph
from repro.datasets.sbm import planted_partition, stochastic_block_model
from repro.datasets.smallworld import barabasi_albert_graph, watts_strogatz_graph

__all__ = [
    "rmat_graph",
    "planted_partition",
    "stochastic_block_model",
    "lfr_like_graph",
    "road_network",
    "kmer_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "GraphSpec",
    "REGISTRY",
    "registry_names",
    "load_graph",
    "graph_spec",
]
