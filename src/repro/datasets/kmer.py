"""Protein k-mer-graph-like generator.

GenBank k-mer graphs (kmer_A2a, kmer_V1r) are unions of long, mostly
linear chains (de Bruijn paths) with occasional branch points, average
degree ~2.1-2.2, and very many small natural communities.  We model them
as a forest of chains: fixed-length paths, a small probability of a
branch sprouting mid-chain, and rare chain-to-chain links so the graph is
not completely disconnected.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["kmer_graph"]


def kmer_graph(
    num_chains: int,
    chain_length: int,
    *,
    branch_probability: float = 0.05,
    link_probability: float = 0.3,
    seed: int = 0,
) -> CSRGraph:
    """A forest of chains with branches and sparse inter-chain links.

    - ``num_chains`` paths of ``chain_length`` vertices each;
    - each interior vertex sprouts a chord to a vertex further down its
      own chain with ``branch_probability``;
    - each chain links to the next with ``link_probability``.
    """
    if num_chains < 1 or chain_length < 2:
        raise ConfigError("need at least one chain of length >= 2")
    rng = np.random.default_rng(seed)
    n = num_chains * chain_length
    src_parts, dst_parts = [], []

    path_u = np.arange(n - 1, dtype=np.int64)
    inside = (path_u % chain_length) != (chain_length - 1)
    src_parts.append(path_u[inside])
    dst_parts.append(path_u[inside] + 1)

    interior = np.flatnonzero(inside)
    branch = rng.random(interior.shape[0]) < branch_probability
    bu = path_u[interior[branch]]
    if bu.shape[0]:
        chain = bu // chain_length
        offset = bu % chain_length
        span = rng.integers(2, max(3, chain_length // 3), bu.shape[0])
        bv = chain * chain_length + np.minimum(offset + span, chain_length - 1)
        keep = bu != bv
        src_parts.append(bu[keep])
        dst_parts.append(bv[keep])

    if num_chains > 1:
        linked = np.flatnonzero(rng.random(num_chains - 1) < link_probability)
        if linked.shape[0]:
            u = linked * chain_length + rng.integers(0, chain_length, linked.shape[0])
            v = (linked + 1) * chain_length + rng.integers(
                0, chain_length, linked.shape[0]
            )
            src_parts.append(u)
            dst_parts.append(v)

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    return build_csr_from_edges(
        src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE), num_vertices=n
    )
