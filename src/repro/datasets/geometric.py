"""Road-network-like generator.

DIMACS10 road networks (asia_osm, europe_osm) have average degree ~2.1,
enormous diameter, and strong spatial community structure.  We reproduce
those properties with a perturbed path-plus-shortcuts construction:
vertices sit on a line of spatial blocks; each block is internally a path
with a few local shortcuts; neighbouring blocks connect sparsely.  The
result has degree ≈ 2.1, block-shaped communities and long chains — the
regime where the paper observes many passes and a high runtime/|E|.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["road_network"]


def road_network(
    num_blocks: int,
    block_size: int,
    *,
    shortcut_fraction: float = 0.05,
    inter_block_links: int = 2,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """A chain of spatial blocks, each a path with local shortcuts.

    - inside each block: a path ``v0-v1-...`` plus
      ``shortcut_fraction * block_size`` random short-range chords;
    - between consecutive blocks: ``inter_block_links`` edges.

    Returns ``(graph, planted_block_membership)``.
    """
    if num_blocks < 1 or block_size < 2:
        raise ConfigError("need at least one block of size >= 2")
    if not 0.0 <= shortcut_fraction <= 1.0:
        raise ConfigError("shortcut_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = num_blocks * block_size
    src_parts, dst_parts = [], []

    # Paths within blocks, vectorized across all blocks at once: the global
    # path minus the edges that would cross block boundaries.
    path_u = np.arange(n - 1, dtype=np.int64)
    inside = (path_u % block_size) != (block_size - 1)
    src_parts.append(path_u[inside])
    dst_parts.append(path_u[inside] + 1)

    # Short-range chords within blocks.
    n_short = int(num_blocks * block_size * shortcut_fraction)
    if n_short:
        block = rng.integers(0, num_blocks, n_short)
        i = rng.integers(0, block_size, n_short)
        span = rng.integers(2, max(3, block_size // 4), n_short)
        j = np.minimum(i + span, block_size - 1)
        base = block * block_size
        u, v = base + i, base + j
        keep = u != v
        src_parts.append(u[keep])
        dst_parts.append(v[keep])

    # Sparse inter-block connections between consecutive blocks.
    if num_blocks > 1 and inter_block_links:
        blocks = np.repeat(np.arange(num_blocks - 1, dtype=np.int64),
                           inter_block_links)
        u = blocks * block_size + rng.integers(0, block_size, blocks.shape[0])
        v = (blocks + 1) * block_size + rng.integers(0, block_size, blocks.shape[0])
        src_parts.append(u)
        dst_parts.append(v)

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    graph = build_csr_from_edges(
        src.astype(VERTEX_DTYPE), dst.astype(VERTEX_DTYPE), num_vertices=n
    )
    membership = np.repeat(np.arange(num_blocks, dtype=VERTEX_DTYPE), block_size)
    return graph, membership
