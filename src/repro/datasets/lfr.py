"""LFR-like benchmark generator (web-crawl stand-in).

The LAW web crawls have heavy-tailed degrees, heavy-tailed community
sizes and strong, well-separated communities (the paper finds only a few
thousand communities in graphs of tens of millions of vertices — i.e.,
very large communities).  The full LFR benchmark rewires a configuration
model; here we keep its two defining ingredients — power-law degrees and
power-law community sizes with a mixing parameter μ — and sample edges
directly:

- each vertex draws a target degree from a truncated power law;
- community sizes follow a (coarser) truncated power law;
- a fraction 1-μ of each vertex's edge endpoints attach to random
  endpoints *within its community* (degree-weighted), the rest anywhere.

Degree-weighted endpoint sampling reproduces the hub-dominated structure
of crawls without per-edge Python work.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = ["lfr_like_graph", "powerlaw_integers"]


def powerlaw_integers(
    count: int,
    exponent: float,
    minimum: int,
    maximum: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``count`` integers from a truncated power law via inverse CDF."""
    if minimum < 1 or maximum < minimum:
        raise ConfigError("need 1 <= minimum <= maximum")
    if exponent <= 1.0:
        raise ConfigError("exponent must exceed 1")
    u = rng.random(count)
    a = 1.0 - exponent
    lo, hi = float(minimum), float(maximum) + 1.0
    vals = (u * (hi**a - lo**a) + lo**a) ** (1.0 / a)
    return np.minimum(vals.astype(np.int64), maximum)


def lfr_like_graph(
    num_vertices: int,
    *,
    avg_degree: float = 20.0,
    degree_exponent: float = 2.5,
    max_degree_fraction: float = 0.05,
    community_exponent: float = 2.0,
    min_community: int = 50,
    max_community_fraction: float = 0.25,
    mixing: float = 0.1,
    seed: int = 0,
) -> tuple[CSRGraph, np.ndarray]:
    """Power-law degrees + power-law communities + mixing μ.

    Returns ``(graph, planted_membership)``.  ``avg_degree`` counts
    stored (bidirectional) endpoints per vertex (the paper's D_avg).
    """
    if num_vertices < 4:
        raise ConfigError("num_vertices must be >= 4")
    if not 0.0 <= mixing <= 1.0:
        raise ConfigError("mixing must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = num_vertices

    # Community sizes: draw until they cover n, then trim.
    max_comm = max(min_community, int(n * max_community_fraction))
    sizes = []
    covered = 0
    while covered < n:
        s = int(powerlaw_integers(1, community_exponent, min_community,
                                  max_comm, rng)[0])
        s = min(s, n - covered)
        sizes.append(s)
        covered += s
    sizes = np.asarray(sizes, dtype=np.int64)
    k = sizes.shape[0]
    starts = np.zeros(k, dtype=np.int64)
    np.cumsum(sizes[:-1], out=starts[1:])
    membership = np.repeat(np.arange(k, dtype=VERTEX_DTYPE), sizes)

    # Per-vertex degrees: truncated power law rescaled to hit avg_degree.
    max_deg = max(2, int(n * max_degree_fraction))
    deg = powerlaw_integers(n, degree_exponent, 1, max_deg, rng).astype(np.float64)
    deg *= avg_degree / deg.mean()

    # Intra-community endpoints, degree-weighted within each block.
    intra_endpoints = deg * (1.0 - mixing)
    src_parts, dst_parts = [], []
    for b in range(k):
        lo, size = starts[b], sizes[b]
        if size < 2:
            continue
        local = intra_endpoints[lo : lo + size]
        m_b = max(1, int(local.sum() / 2))
        p = local / local.sum()
        u = rng.choice(size, size=m_b, p=p) + lo
        v = rng.choice(size, size=m_b, p=p) + lo
        src_parts.append(u)
        dst_parts.append(v)

    # Inter-community endpoints, degree-weighted globally.
    m_inter = int(deg.sum() * mixing / 2)
    if m_inter:
        p = deg / deg.sum()
        src_parts.append(rng.choice(n, size=m_inter, p=p))
        dst_parts.append(rng.choice(n, size=m_inter, p=p))

    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    keep = src != dst
    graph = build_csr_from_edges(
        src[keep].astype(VERTEX_DTYPE),
        dst[keep].astype(VERTEX_DTYPE),
        num_vertices=n,
    )
    return graph, membership
