"""Community-aware vertex relabeling (locality-optimized CSR layout).

The paper's shared-memory speed is bounded by CSR scan locality; the
GraphBrew line of work takes the next step and uses the community
structure *itself* to renumber vertices so that members of one community
occupy a contiguous id range.  Every subsequent CSR traversal — kernels,
engines, serving queries — then touches a smaller working set.

This module computes the permutation and carries its metadata around:

- :func:`community_relabeling` builds a :class:`Relabeling` from one or
  more membership levels (typically a dendrogram's, finest to coarsest):
  vertices are grouped contiguously by the coarsest communities, within
  them by each finer level, within a community optionally by descending
  weighted degree, with ascending original id as the stable tiebreak;
- :meth:`CSRGraph.permute(perm) <repro.graph.csr.CSRGraph.permute>`
  applies it, returning the relabeled graph plus the inverse map;
- :func:`is_community_contiguous` detects layouts whose communities
  occupy contiguous id ranges (the precondition for serving member
  ranges as slices instead of gathers).

Permutation semantics (fixed across the whole stack):

- ``perm[new_id] = old_id`` — the new vertex order, as original ids;
- ``inv[old_id] = new_id`` — the inverse, ``inv[perm] == arange(n)``;
- a membership over relabeled ids maps back as ``M_new[inv]``; one over
  original ids maps forward as ``M_old[perm]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError, GraphStructureError
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE

__all__ = [
    "RELABEL_MODES",
    "Relabeling",
    "community_relabeling",
    "is_community_contiguous",
    "validate_permutation",
]

#: Supported relabel modes.  ``"none"`` is the config-level off switch;
#: ``"community"`` groups communities contiguously with ascending
#: original ids inside each; ``"community-degree"`` additionally sorts
#: each community's members by descending weighted degree (hubs first).
RELABEL_MODES = ("none", "community", "community-degree")


@dataclass(frozen=True)
class Relabeling:
    """A vertex permutation plus the metadata the stack threads around."""

    #: ``perm[new_id] = old_id`` (int64, a bijection on ``0..n-1``).
    perm: np.ndarray
    #: ``inv[old_id] = new_id`` (int64).
    inv: np.ndarray
    #: Mode the layout was built with (one of :data:`RELABEL_MODES`).
    mode: str
    #: Community count of the coarsest level the layout groups by.
    num_communities: int

    @property
    def num_vertices(self) -> int:
        return self.perm.shape[0]

    def to_original(self, membership_new) -> np.ndarray:
        """Express a relabeled-id membership in original vertex ids."""
        m = np.asarray(membership_new)
        if m.shape[0] != self.inv.shape[0]:
            raise GraphStructureError(
                "membership length must equal vertex count")
        return np.ascontiguousarray(m[self.inv])

    def to_relabeled(self, membership_old) -> np.ndarray:
        """Express an original-id membership in relabeled vertex ids."""
        m = np.asarray(membership_old)
        if m.shape[0] != self.perm.shape[0]:
            raise GraphStructureError(
                "membership length must equal vertex count")
        return np.ascontiguousarray(m[self.perm])

    def describe(self) -> dict:
        """Deterministic JSON-ready summary (no array payloads)."""
        return {
            "mode": self.mode,
            "num_vertices": int(self.num_vertices),
            "num_communities": int(self.num_communities),
        }


def validate_permutation(perm, n: int) -> np.ndarray:
    """Check ``perm`` is a bijection on ``0..n-1``; return it as int64."""
    p = np.ascontiguousarray(perm, dtype=np.int64)
    if p.ndim != 1 or p.shape[0] != n:
        raise GraphStructureError(
            f"permutation must be 1-D of length {n}, got shape {p.shape}")
    if n:
        seen = np.zeros(n, dtype=bool)
        if p.min() < 0 or p.max() >= n:
            raise GraphStructureError("permutation entries out of range")
        seen[p] = True
        if not seen.all():
            raise GraphStructureError("permutation has repeated entries")
    return p


def inverse_permutation(perm: np.ndarray) -> np.ndarray:
    """``inv`` with ``inv[perm] == arange(n)`` (perm assumed validated)."""
    inv = np.empty(perm.shape[0], dtype=np.int64)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv


def community_relabeling(
    graph: CSRGraph | None,
    levels: Sequence[np.ndarray] | np.ndarray,
    *,
    mode: str = "community",
) -> Relabeling:
    """Build the community-contiguous layout from membership levels.

    ``levels`` is one membership array or a sequence of them over the
    *original* vertices, finest to coarsest (a dendrogram's
    :meth:`~repro.core.dendrogram.Dendrogram.memberships`).  The layout
    groups vertices by the coarsest level first, refines ties with each
    finer level, then (``"community-degree"`` only, needs ``graph``)
    sorts within the finest community by descending weighted degree;
    original id is always the final, stable tiebreak.
    """
    if mode not in RELABEL_MODES or mode == "none":
        raise ConfigError(
            f"relabel mode must be one of {RELABEL_MODES[1:]}, got {mode!r}")
    if isinstance(levels, np.ndarray):
        levels = [levels]
    levels = [np.ascontiguousarray(lvl, dtype=VERTEX_DTYPE) for lvl in levels]
    if not levels:
        raise GraphStructureError("need at least one membership level")
    n = levels[0].shape[0]
    for lvl in levels:
        if lvl.ndim != 1 or lvl.shape[0] != n:
            raise GraphStructureError(
                "all membership levels must be 1-D of equal length")
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return Relabeling(perm=empty, inv=empty.copy(), mode=mode,
                          num_communities=0)
    # np.lexsort sorts by the *last* key first, so keys run from the
    # least significant (within-community order) to the most significant
    # (the coarsest communities); the sort is stable, so ascending
    # original id breaks any remaining ties.
    keys: list[np.ndarray] = []
    if mode == "community-degree":
        if graph is None:
            raise ConfigError(
                "mode 'community-degree' needs the graph for degrees")
        if graph.num_vertices != n:
            raise GraphStructureError(
                "graph vertex count must match membership length")
        keys.append(-graph.vertex_weights())
    keys.extend(levels)  # finest ... coarsest; coarsest is primary
    perm = np.lexsort(tuple(keys)).astype(np.int64, copy=False)
    coarsest = levels[-1]
    num_comms = int(np.unique(coarsest).shape[0])
    return Relabeling(
        perm=perm,
        inv=inverse_permutation(perm),
        mode=mode,
        num_communities=num_comms,
    )


def is_community_contiguous(membership) -> bool:
    """True when every community occupies one contiguous id range.

    This is the layout property that lets ``members(c)`` be a slice of
    a precomputed order instead of a gather: along ascending vertex id,
    the community changes exactly ``num_communities - 1`` times.
    """
    m = np.asarray(membership)
    if m.shape[0] == 0:
        return True
    changes = int(np.count_nonzero(m[1:] != m[:-1]))
    return changes + 1 == int(np.unique(m).shape[0])
