"""Deep structural validation for CSR graphs.

:class:`repro.graph.csr.CSRGraph` performs cheap checks on construction;
this module adds the expensive whole-graph checks used by tests and by the
benchmark harness before trusting a generated dataset: symmetry of the
stored edge set, weight symmetry, and absence of dangling slack in holey
rows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph


def validate_csr(
    graph: CSRGraph,
    *,
    require_symmetric: bool = True,
    require_positive_weights: bool = True,
) -> None:
    """Raise :class:`GraphStructureError` on any violated invariant."""
    src, dst, wgt = graph.to_coo()
    n = graph.num_vertices
    if src.size != graph.num_edges:
        raise GraphStructureError("degree sum does not match stored edges")
    if src.size and (dst.min() < 0 or dst.max() >= n):
        raise GraphStructureError("edge target out of range")
    if require_positive_weights and src.size and wgt.min() <= 0:
        raise GraphStructureError("non-positive edge weight")
    if not np.all(np.isfinite(wgt)):
        raise GraphStructureError("non-finite edge weight")
    if require_symmetric:
        _check_symmetry(src, dst, wgt)


def _check_symmetry(src: np.ndarray, dst: np.ndarray, wgt: np.ndarray) -> None:
    """Check the multiset of (u,v,w) equals the multiset of (v,u,w)."""
    fwd = np.lexsort((wgt, dst, src))
    rev = np.lexsort((wgt, src, dst))
    same = (
        np.array_equal(src[fwd], dst[rev])
        and np.array_equal(dst[fwd], src[rev])
        and np.allclose(wgt[fwd], wgt[rev])
    )
    if not same:
        raise GraphStructureError("stored edge set is not symmetric")


def is_undirected(graph: CSRGraph) -> bool:
    """True when every stored edge has a matching reverse edge."""
    try:
        validate_csr(graph, require_positive_weights=False)
    except GraphStructureError:
        return False
    return True
