"""Vectorized breadth-first traversal.

A frontier-expansion BFS with one numpy pass per level — the standard
data-parallel formulation.  Used for the ``"bfs"`` vertex ordering
(processing vertices in discovery order improves locality on road-like
graphs) and as a general substrate for reachability queries.
"""

from __future__ import annotations


import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.graph.segments import gather_rows

__all__ = ["bfs_levels", "bfs_order", "eccentricity_lower_bound"]


def bfs_levels(graph: CSRGraph, sources) -> np.ndarray:
    """Distance (in hops) from the nearest source; -1 if unreachable.

    ``sources`` is a vertex id or an array of them (multi-source BFS).
    Each level expands the whole frontier with one ragged gather.
    """
    n = graph.num_vertices
    levels = np.full(n, -1, dtype=np.int64)
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if src.size and (src.min() < 0 or src.max() >= n):
        raise GraphStructureError("source vertex out of range")
    levels[src] = 0
    frontier = np.unique(src)
    depth = 0
    offsets = graph.offsets[:-1]
    degrees = graph.degrees
    targets = graph.targets
    weights = graph.weights
    while frontier.shape[0]:
        depth += 1
        _, dst, _ = gather_rows(offsets, degrees, targets, weights, frontier)
        fresh = np.unique(dst[levels[dst] < 0])
        levels[fresh] = depth
        frontier = fresh
    return levels


def bfs_order(graph: CSRGraph, *, seed: int = 0) -> np.ndarray:
    """A permutation visiting vertices in BFS discovery order.

    Starts from the highest-degree vertex of each component (components
    are discovered on the fly); ties and isolated vertices follow in id
    order.  Deterministic for a given graph.
    """
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    K = graph.vertex_weights()
    by_degree = np.argsort(-K, kind="stable")
    for start in by_degree.tolist():
        if visited[start]:
            continue
        levels = bfs_levels(graph, start)
        # component members, sorted by (level, id) = discovery order
        members = np.flatnonzero((levels >= 0) & ~visited)
        comp_order = members[np.lexsort((members, levels[members]))]
        order[pos : pos + comp_order.shape[0]] = comp_order
        visited[comp_order] = True
        pos += comp_order.shape[0]
    return order


def eccentricity_lower_bound(graph: CSRGraph, vertex: int) -> int:
    """Max BFS depth from ``vertex`` over its component (its eccentricity)."""
    levels = bfs_levels(graph, vertex)
    return int(levels.max(initial=0))
