"""Graph substrate: CSR storage, builders, transforms and I/O.

The paper stores the input graph either as a *weighted 2D-vector* graph or
a *weighted CSR with degree* (Figure 5), and stores the super-vertex graph
produced by the aggregation phase in a *weighted holey CSR with degree*
(Algorithm 4).  This package implements all three representations plus the
usual conversion, symmetrization and file I/O plumbing around them.
"""

from repro.graph.adjacency import AdjacencyGraph
from repro.graph.builder import GraphBuilder, build_csr_from_edges
from repro.graph.csr import CSRGraph, empty_csr
from repro.graph.io_edgelist import read_edgelist, write_edgelist
from repro.graph.io_metis import read_metis, write_metis
from repro.graph.io_mtx import read_mtx, write_mtx
from repro.graph.ops import (
    coalesce_edges,
    degree_histogram,
    induced_subgraph,
    relabel_compact,
    remove_self_loops,
    symmetrize_edges,
)
from repro.graph.relabel import (
    RELABEL_MODES,
    Relabeling,
    community_relabeling,
    is_community_contiguous,
    validate_permutation,
)
from repro.graph.reorder import order_ranks, vertex_order
from repro.graph.traversal import bfs_levels, bfs_order
from repro.graph.validate import validate_csr

__all__ = [
    "CSRGraph",
    "empty_csr",
    "AdjacencyGraph",
    "GraphBuilder",
    "build_csr_from_edges",
    "symmetrize_edges",
    "coalesce_edges",
    "remove_self_loops",
    "relabel_compact",
    "degree_histogram",
    "induced_subgraph",
    "vertex_order",
    "order_ranks",
    "RELABEL_MODES",
    "Relabeling",
    "community_relabeling",
    "is_community_contiguous",
    "validate_permutation",
    "bfs_levels",
    "bfs_order",
    "read_edgelist",
    "write_edgelist",
    "read_mtx",
    "write_mtx",
    "read_metis",
    "write_metis",
    "validate_csr",
]
