"""High-level graph construction pipeline.

``build_csr_from_edges`` is the one-stop entry point: it takes raw edge
arrays (or an iterable of tuples) and applies the same normalization the
paper applies to its datasets — "we ensure edges to be undirected and
weighted with a default of 1" (Section 5.1.3) — i.e. symmetrize, coalesce
parallel edges, and freeze into CSR.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.graph.ops import coalesce_edges, remove_self_loops, symmetrize_edges
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE


def build_csr_from_edges(
    sources,
    targets,
    weights=None,
    *,
    num_vertices: int | None = None,
    symmetrize: bool = True,
    coalesce: str | None = "sum",
    drop_self_loops: bool = False,
) -> CSRGraph:
    """Normalize an edge list and build a :class:`CSRGraph`.

    Parameters
    ----------
    sources, targets, weights:
        Parallel edge arrays; ``weights`` defaults to all ones.
    num_vertices:
        Vertex count; inferred as ``max id + 1`` when omitted.
    symmetrize:
        Add reverse edges (undirected storage).  Self-loops are kept
        single.
    coalesce:
        Merge parallel edges with this reduction (``"sum"``, ``"max"``,
        ``"first"``) or ``None`` to keep multi-edges.
    drop_self_loops:
        Remove ``(i, i)`` edges before anything else.
    """
    src = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(targets, dtype=VERTEX_DTYPE).ravel()
    if weights is None:
        wgt = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
    else:
        wgt = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise GraphStructureError("vertex ids must be non-negative")
    if drop_self_loops:
        src, dst, wgt = remove_self_loops(src, dst, wgt)
    if symmetrize:
        src, dst, wgt = symmetrize_edges(src, dst, wgt)
    if coalesce is not None:
        src, dst, wgt = coalesce_edges(src, dst, wgt, reduce=coalesce)
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
    return CSRGraph.from_coo(src, dst, wgt, num_vertices=num_vertices)


class GraphBuilder:
    """Incremental builder that buffers edges then freezes to CSR.

    Unlike :class:`repro.graph.adjacency.AdjacencyGraph`, the builder
    stores flat buffers and defers all normalization to
    :func:`build_csr_from_edges`, so building a graph from a million
    scattered ``add_edge`` calls stays cheap.
    """

    def __init__(self, num_vertices: int = 0) -> None:
        self._src: list[int] = []
        self._dst: list[int] = []
        self._wgt: list[float] = []
        self._min_vertices = int(num_vertices)

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> "GraphBuilder":
        """Buffer one undirected edge ``{u, v}``."""
        if u < 0 or v < 0:
            raise GraphStructureError("vertex ids must be non-negative")
        self._src.append(int(u))
        self._dst.append(int(v))
        self._wgt.append(float(weight))
        return self

    def add_edges(
        self, edges: Iterable[Tuple[int, int] | Tuple[int, int, float]]
    ) -> "GraphBuilder":
        """Buffer many edges; tuples may omit the weight."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(u, v)
            else:
                u, v, w = edge  # type: ignore[misc]
                self.add_edge(u, v, w)
        return self

    @property
    def num_buffered_edges(self) -> int:
        return len(self._src)

    def build(
        self,
        *,
        num_vertices: int | None = None,
        symmetrize: bool = True,
        coalesce: str | None = "sum",
        drop_self_loops: bool = False,
    ) -> CSRGraph:
        """Freeze the buffered edges into a normalized CSR graph."""
        if num_vertices is None and self._min_vertices:
            inferred = 0
            if self._src:
                inferred = max(max(self._src), max(self._dst)) + 1
            num_vertices = max(self._min_vertices, inferred)
        return build_csr_from_edges(
            np.asarray(self._src, dtype=VERTEX_DTYPE),
            np.asarray(self._dst, dtype=VERTEX_DTYPE),
            np.asarray(self._wgt, dtype=WEIGHT_DTYPE),
            num_vertices=num_vertices,
            symmetrize=symmetrize,
            coalesce=coalesce,
            drop_self_loops=drop_self_loops,
        )
