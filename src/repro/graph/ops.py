"""Vectorized edge-list transforms used by the build pipeline.

All functions operate on parallel ``(sources, targets, weights)`` COO
arrays and follow the guide's idiom of avoiding Python-level loops: the
heavy lifting is ``np.lexsort`` + ``np.add.reduceat``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.types import (
    ACCUM_DTYPE,
    OFFSET_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
)

Coo = Tuple[np.ndarray, np.ndarray, np.ndarray]


def _as_coo(sources, targets, weights=None) -> Coo:
    src = np.asarray(sources, dtype=VERTEX_DTYPE).ravel()
    dst = np.asarray(targets, dtype=VERTEX_DTYPE).ravel()
    if src.shape != dst.shape:
        raise GraphStructureError("sources/targets length mismatch")
    if weights is None:
        wgt = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
    else:
        wgt = np.asarray(weights, dtype=WEIGHT_DTYPE).ravel()
        if wgt.shape != src.shape:
            raise GraphStructureError("weights length mismatch")
    return src, dst, wgt


def symmetrize_edges(sources, targets, weights=None) -> Coo:
    """Add the reverse of every non-loop edge (paper Table 2 convention)."""
    src, dst, wgt = _as_coo(sources, targets, weights)
    loop = src == dst
    rsrc, rdst, rwgt = dst[~loop], src[~loop], wgt[~loop]
    return (
        np.concatenate([src, rsrc]),
        np.concatenate([dst, rdst]),
        np.concatenate([wgt, rwgt]),
    )


def coalesce_edges(sources, targets, weights=None, *, reduce: str = "sum") -> Coo:
    """Merge parallel edges. ``reduce`` is ``"sum"``, ``"max"`` or ``"first"``."""
    src, dst, wgt = _as_coo(sources, targets, weights)
    if src.size == 0:
        return src, dst, wgt
    order = np.lexsort((dst, src))
    src, dst, wgt = src[order], dst[order], wgt[order]
    new_group = np.empty(src.shape[0], dtype=bool)
    new_group[0] = True
    np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    if reduce == "sum":
        merged = np.add.reduceat(wgt.astype(ACCUM_DTYPE), starts)
    elif reduce == "max":
        merged = np.maximum.reduceat(wgt.astype(ACCUM_DTYPE), starts)
    elif reduce == "first":
        merged = wgt[starts].astype(ACCUM_DTYPE)
    else:
        raise GraphStructureError(f"unknown reduce mode {reduce!r}")
    return src[starts], dst[starts], merged.astype(WEIGHT_DTYPE)


def remove_self_loops(sources, targets, weights=None) -> Coo:
    """Drop all ``(i, i)`` edges."""
    src, dst, wgt = _as_coo(sources, targets, weights)
    keep = src != dst
    return src[keep], dst[keep], wgt[keep]


def relabel_compact(sources, targets, weights=None) -> Tuple[Coo, np.ndarray]:
    """Renumber the used vertex ids to ``0..k-1``.

    Returns the relabelled COO plus the sorted array of original ids, so
    ``original_ids[new_id] == old_id``.
    """
    src, dst, wgt = _as_coo(sources, targets, weights)
    used = np.union1d(src, dst)
    new_src = np.searchsorted(used, src).astype(VERTEX_DTYPE)
    new_dst = np.searchsorted(used, dst).astype(VERTEX_DTYPE)
    return (new_src, new_dst, wgt), used


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """Histogram ``h`` where ``h[d]`` counts vertices of degree ``d``."""
    degs = graph.degrees
    if degs.size == 0:
        return np.zeros(1, dtype=OFFSET_DTYPE)
    return np.bincount(degs).astype(OFFSET_DTYPE)


def induced_subgraph(graph: CSRGraph, vertices) -> Tuple[CSRGraph, np.ndarray]:
    """Subgraph induced by ``vertices``, relabelled to ``0..k-1``.

    Returns the subgraph and the sorted original-id array (new -> old).
    Used by the disconnected-community checker to examine each community
    in isolation.
    """
    keep = np.unique(np.asarray(vertices, dtype=VERTEX_DTYPE))
    n = graph.num_vertices
    member = np.zeros(n, dtype=bool)
    member[keep] = True
    new_id = np.full(n, -1, dtype=VERTEX_DTYPE)
    new_id[keep] = np.arange(keep.shape[0], dtype=VERTEX_DTYPE)

    src_parts, dst_parts, wgt_parts = [], [], []
    for old in keep.tolist():
        dst, wgt = graph.edges(old)
        sel = member[dst]
        if not sel.any():
            continue
        kept_dst = dst[sel]
        src_parts.append(np.full(kept_dst.shape[0], new_id[old], dtype=VERTEX_DTYPE))
        dst_parts.append(new_id[kept_dst])
        wgt_parts.append(wgt[sel])
    if src_parts:
        coo = (
            np.concatenate(src_parts),
            np.concatenate(dst_parts),
            np.concatenate(wgt_parts),
        )
    else:
        coo = (
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=VERTEX_DTYPE),
            np.empty(0, dtype=WEIGHT_DTYPE),
        )
    sub = CSRGraph.from_coo(*coo, num_vertices=keep.shape[0])
    return sub, keep
