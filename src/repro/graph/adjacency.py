"""Mutable 2D-vector-based weighted graph.

This mirrors the "Weighted 2D-vector-based input graph" of Figure 5: one
growable edge vector per vertex.  It is the convenient representation for
incremental construction and small edits; convert to :class:`CSRGraph`
before running the algorithms.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE


class AdjacencyGraph:
    """A weighted graph stored as per-vertex adjacency lists."""

    def __init__(self, num_vertices: int = 0) -> None:
        self._targets: list[list[int]] = [[] for _ in range(num_vertices)]
        self._weights: list[list[float]] = [[] for _ in range(num_vertices)]

    # -- construction ------------------------------------------------------

    @classmethod
    def from_csr(cls, graph: CSRGraph) -> "AdjacencyGraph":
        """Copy a CSR graph into mutable adjacency-list form."""
        g = cls(graph.num_vertices)
        for i in range(graph.num_vertices):
            dst, wgt = graph.edges(i)
            g._targets[i] = dst.tolist()
            g._weights[i] = [float(w) for w in wgt]
        return g

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex; return its id."""
        self._targets.append([])
        self._weights.append([])
        return len(self._targets) - 1

    def ensure_vertices(self, count: int) -> None:
        """Grow the vertex set so at least ``count`` vertices exist."""
        while len(self._targets) < count:
            self.add_vertex()

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add a directed edge ``u -> v``.

        For an undirected graph call :meth:`add_undirected_edge` instead so
        both directions stay in sync.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        self._targets[u].append(int(v))
        self._weights[u].append(float(weight))

    def add_undirected_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add both directions of an undirected edge (one slot if u == v)."""
        self.add_edge(u, v, weight)
        if u != v:
            self.add_edge(v, u, weight)

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Add many directed ``(u, v, w)`` edges."""
        for u, v, w in edges:
            self.add_edge(u, v, w)

    # -- queries -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._targets)

    @property
    def num_edges(self) -> int:
        """Number of stored directed edges."""
        return sum(len(t) for t in self._targets)

    def degree(self, i: int) -> int:
        self._check_vertex(i)
        return len(self._targets[i])

    def neighbors(self, i: int) -> list[int]:
        self._check_vertex(i)
        return list(self._targets[i])

    def edges(self, i: int) -> Iterator[Tuple[int, float]]:
        """Yield ``(target, weight)`` pairs of vertex ``i``."""
        self._check_vertex(i)
        return iter(zip(self._targets[i], self._weights[i]))

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        return int(v) in self._targets[u]

    def edge_weight(self, u: int, v: int) -> float:
        """Total weight of parallel ``u -> v`` edges (0.0 when absent)."""
        self._check_vertex(u)
        total = 0.0
        for t, w in zip(self._targets[u], self._weights[u]):
            if t == v:
                total += w
        return total

    def _check_vertex(self, i: int) -> None:
        if not 0 <= int(i) < len(self._targets):
            raise GraphStructureError(f"vertex {i} out of range")

    # -- conversion ----------------------------------------------------------

    def to_csr(self) -> CSRGraph:
        """Freeze into an immutable CSR graph."""
        n = self.num_vertices
        counts = np.fromiter(
            (len(t) for t in self._targets), dtype=OFFSET_DTYPE, count=n
        )
        offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        targets = np.empty(total, dtype=VERTEX_DTYPE)
        weights = np.empty(total, dtype=WEIGHT_DTYPE)
        for i in range(n):
            s, e = offsets[i], offsets[i + 1]
            targets[s:e] = self._targets[i]
            weights[s:e] = self._weights[i]
        return CSRGraph(offsets, targets, weights, validate=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdjacencyGraph(n={self.num_vertices}, edges={self.num_edges})"
