"""Plain edge-list file I/O.

Format: one edge per line, ``u v [w]``, whitespace separated.  Lines
starting with ``#`` or ``%`` are comments.  This covers the SNAP and
DIMACS10-ish exports commonly used for the paper's dataset classes.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathOrFile = Union[str, Path, TextIO]


def _open_for_read(source: PathOrFile):
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8"), True
    return source, False


def _open_for_write(target: PathOrFile):
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def read_edgelist(
    source: PathOrFile,
    *,
    symmetrize: bool = True,
    default_weight: float = 1.0,
    num_vertices: int | None = None,
) -> CSRGraph:
    """Parse an edge-list file into a normalized CSR graph."""
    fh, owned = _open_for_read(source)
    try:
        src, dst, wgt = [], [], []
        for lineno, line in enumerate(fh, start=1):
            text = line.strip()
            if not text or text[0] in "#%":
                continue
            parts = text.split()
            if len(parts) < 2:
                raise GraphFormatError(f"line {lineno}: expected 'u v [w]'")
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) > 2 else default_weight
            except ValueError as exc:
                raise GraphFormatError(f"line {lineno}: {exc}") from exc
            if u < 0 or v < 0:
                raise GraphFormatError(f"line {lineno}: negative vertex id")
            src.append(u)
            dst.append(v)
            wgt.append(w)
    finally:
        if owned:
            fh.close()
    return build_csr_from_edges(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        np.asarray(wgt, dtype=WEIGHT_DTYPE),
        symmetrize=symmetrize,
        num_vertices=num_vertices,
    )


def write_edgelist(
    graph: CSRGraph,
    target: PathOrFile,
    *,
    directed: bool = False,
    write_weights: bool = True,
) -> None:
    """Write a CSR graph as an edge list.

    With ``directed=False`` each undirected edge is emitted once
    (``u <= v``), matching what :func:`read_edgelist` expects back.
    """
    fh, owned = _open_for_write(target)
    try:
        src, dst, wgt = graph.to_coo()
        if not directed:
            keep = src <= dst
            src, dst, wgt = src[keep], dst[keep], wgt[keep]
        if write_weights:
            for u, v, w in zip(src.tolist(), dst.tolist(), wgt.tolist()):
                fh.write(f"{u} {v} {w:.9g}\n")
        else:
            for u, v in zip(src.tolist(), dst.tolist()):
                fh.write(f"{u} {v}\n")
    finally:
        if owned:
            fh.close()


def edgelist_from_string(text: str, **kwargs) -> CSRGraph:
    """Convenience wrapper: parse an edge list from an in-memory string."""
    return read_edgelist(io.StringIO(text), **kwargs)
