"""Weighted CSR graph, including the *holey* variant used by aggregation.

A CSR (Compressed Sparse Row) graph stores, for each vertex ``i``, its
outgoing edges in ``targets[offsets[i]:offsets[i] + degrees[i]]`` with
matching ``weights``.  In the ordinary (dense) case
``degrees[i] == offsets[i+1] - offsets[i]`` and the edge arrays have no
gaps.  The aggregation phase of GVE-Leiden (Algorithm 4) instead
*overestimates* each super-vertex degree, producing a **holey CSR** whose
rows have unused slack at the end; tracking the true ``degrees`` array
makes that representation first-class instead of forcing a compaction
after every aggregation.

Undirected graphs are stored with both edge directions present, matching
the paper's convention (|E| counts edges after adding reverse edges).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphStructureError
from repro.types import (
    ACCUM_DTYPE,
    OFFSET_DTYPE,
    VERTEX_DTYPE,
    WEIGHT_DTYPE,
    AccumArray,
    OffsetArray,
    VertexArray,
    WeightArray,
)


#: Lazily imported :mod:`repro.observability.memtrack` — importing it at
#: module scope would close a package cycle (observability.locality
#: imports this module).  First CSR construction happens long after the
#: import graph settles, so the deferred import is safe.
_memtrack = None


def _memmod():
    global _memtrack
    mt = _memtrack
    if mt is None:
        from repro.observability import memtrack as mt

        _memtrack = mt
    return mt


class CSRGraph:
    """An immutable weighted graph in CSR form.

    Parameters
    ----------
    offsets:
        ``int64`` array of length ``n + 1``; row ``i`` starts at
        ``offsets[i]``.
    targets:
        ``int32`` array of edge targets (may contain slack for holey CSR).
    weights:
        ``float32`` array parallel to ``targets``.
    degrees:
        Optional ``int32`` per-vertex edge counts.  When omitted, rows are
        assumed dense (``degrees = diff(offsets)``).
    validate:
        When true (default) cheap structural checks are performed.
    """

    __slots__ = (
        "offsets",
        "targets",
        "weights",
        "degrees",
        "_vertex_weights",
        "_total_weight",
        "_fingerprint",
    )

    def __init__(
        self,
        offsets,
        targets,
        weights,
        degrees=None,
        *,
        validate: bool = True,
    ) -> None:
        self.offsets: OffsetArray = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        self.targets: VertexArray = np.ascontiguousarray(targets, dtype=VERTEX_DTYPE)
        self.weights: WeightArray = np.ascontiguousarray(weights, dtype=WEIGHT_DTYPE)
        if degrees is None:
            degrees = np.diff(self.offsets)
        self.degrees: OffsetArray = np.ascontiguousarray(degrees, dtype=OFFSET_DTYPE)
        self._vertex_weights: AccumArray | None = None
        self._total_weight: float | None = None
        self._fingerprint: str | None = None
        mt = _memmod()
        led = mt._ACTIVE
        if led.enabled:
            # Logical allocation events for the CSR arrays: attributed
            # to whatever phase built this graph (the aggregate phase
            # for super-graphs, "other" for loads).  Views handed in by
            # a caller count too — the ledger models logical ownership,
            # not malloc calls, which keeps the report deterministic.
            phase = mt.active_phase()
            for what, arr in (("offsets", self.offsets),
                              ("targets", self.targets),
                              ("weights", self.weights),
                              ("degrees", self.degrees)):
                led.alloc("csr", what, arr.nbytes, phase=phase,
                          dtype=str(arr.dtype))
        if validate:
            self._check_structure()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        sources,
        targets,
        weights=None,
        *,
        num_vertices: int | None = None,
    ) -> "CSRGraph":
        """Build a CSR graph from a COO edge list (already symmetric).

        Edges are *not* deduplicated or symmetrized here; use
        :func:`repro.graph.builder.build_csr_from_edges` for that.
        """
        src = np.asarray(sources, dtype=VERTEX_DTYPE)
        dst = np.asarray(targets, dtype=VERTEX_DTYPE)
        if src.shape != dst.shape:
            raise GraphStructureError("sources and targets must have equal length")
        if weights is None:
            wgt = np.ones(src.shape[0], dtype=WEIGHT_DTYPE)
        else:
            wgt = np.asarray(weights, dtype=WEIGHT_DTYPE)
            if wgt.shape != src.shape:
                raise GraphStructureError("weights must match edge count")
        if num_vertices is None:
            num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        n = int(num_vertices)
        counts = np.bincount(src, minlength=n).astype(OFFSET_DTYPE)
        offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        order = np.argsort(src, kind="stable")
        return cls(offsets, dst[order], wgt[order])

    # -- invariants ------------------------------------------------------

    def _check_structure(self) -> None:
        n = self.num_vertices
        if self.offsets.ndim != 1 or self.offsets.shape[0] < 1:
            raise GraphStructureError("offsets must be a 1-D array of length n+1")
        if self.degrees.shape[0] != n:
            raise GraphStructureError("degrees length must equal vertex count")
        if self.targets.shape != self.weights.shape:
            raise GraphStructureError("targets and weights must be parallel arrays")
        if n and np.any(np.diff(self.offsets) < 0):
            raise GraphStructureError("offsets must be non-decreasing")
        if n:
            row_capacity = np.diff(self.offsets)
            if np.any(self.degrees < 0) or np.any(self.degrees > row_capacity):
                raise GraphStructureError("degrees must fit inside row capacity")
        if self.offsets[-1] > self.targets.shape[0]:
            raise GraphStructureError("offsets overrun the edge arrays")
        if self.num_edges:
            used = self._used_mask()
            tv = self.targets[used]
            if tv.size and (tv.min() < 0 or tv.max() >= n):
                raise GraphStructureError("edge target out of range")

    def _used_mask(self) -> np.ndarray:
        """Boolean mask over the edge arrays selecting real (non-slack) slots."""
        from repro.graph.segments import ragged_indices

        mask = np.zeros(self.targets.shape[0], dtype=bool)
        _, idx = ragged_indices(self.offsets[:-1], self.degrees)
        mask[idx] = True
        return mask

    # -- basic properties ------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``N``."""
        return self.offsets.shape[0] - 1

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges ``|E|``.

        For an undirected graph stored both ways this counts each edge
        twice, matching the paper's |E| convention in Table 2.
        """
        return int(self.degrees.sum())

    @property
    def is_holey(self) -> bool:
        """True when rows carry slack (holey CSR from aggregation)."""
        return bool(np.any(self.degrees != np.diff(self.offsets)))

    @property
    def total_weight(self) -> float:
        """Sum of stored edge weights (= 2m for symmetric storage)."""
        if self._total_weight is None:
            self._total_weight = float(self.vertex_weights().sum())
        return self._total_weight

    @property
    def m(self) -> float:
        """Sum of undirected edge weights ``m`` (paper Section 3)."""
        return self.total_weight / 2.0

    # -- row access (views, never copies) ---------------------------------

    def neighbors(self, i: int) -> VertexArray:
        """Targets of vertex ``i`` as a view into the CSR arrays."""
        s = self.offsets[i]
        return self.targets[s : s + self.degrees[i]]

    def edge_weights(self, i: int) -> WeightArray:
        """Weights of vertex ``i``'s edges as a view."""
        s = self.offsets[i]
        return self.weights[s : s + self.degrees[i]]

    def edges(self, i: int) -> Tuple[VertexArray, WeightArray]:
        """``(targets, weights)`` views for vertex ``i``."""
        s = self.offsets[i]
        e = s + self.degrees[i]
        return self.targets[s:e], self.weights[s:e]

    def degree(self, i: int) -> int:
        """Number of edges incident to vertex ``i`` (out-degree)."""
        return int(self.degrees[i])

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Yield all stored ``(source, target, weight)`` triples."""
        for i in range(self.num_vertices):
            dst, wgt = self.edges(i)
            for j, w in zip(dst.tolist(), wgt.tolist()):
                yield i, j, float(w)

    # -- whole-graph views -------------------------------------------------

    def vertex_weights(self) -> AccumArray:
        """Weighted degree ``K_i`` of every vertex, in float64.

        The result is cached; callers must not mutate it.
        """
        if self._vertex_weights is None:
            if self.weights.shape[0] == 0 or self.num_vertices == 0:
                out = np.zeros(self.num_vertices, dtype=ACCUM_DTYPE)
            elif self.is_holey:
                from repro.graph.segments import ragged_indices

                seg, idx = ragged_indices(self.offsets[:-1], self.degrees)
                out = np.bincount(
                    seg,
                    weights=self.weights[idx].astype(ACCUM_DTYPE),
                    minlength=self.num_vertices,
                )
            else:
                # Row sums as differences of the weight prefix sum —
                # exact for empty rows, one vectorized pass.
                prefix = np.zeros(self.weights.shape[0] + 1, dtype=ACCUM_DTYPE)
                np.cumsum(self.weights, dtype=ACCUM_DTYPE, out=prefix[1:])
                out = prefix[self.offsets[1:]] - prefix[self.offsets[:-1]]
            self._vertex_weights = out
        return self._vertex_weights

    def fingerprint(self) -> str:
        """Content hash of the graph (hex digest, cached).

        Hashes the dense CSR arrays (``offsets``, ``targets``,
        ``weights``) plus the vertex count, so two independently built
        graphs with identical edge content produce the same digest while
        any structural or weight change produces a different one.  Holey
        CSR graphs are compacted first, making the digest independent of
        row slack.  This is what keys partitions by *graph identity*
        rather than object identity in :mod:`repro.service`.
        """
        if self._fingerprint is None:
            if self.is_holey:
                self._fingerprint = self.compact().fingerprint()
            else:
                import hashlib

                h = hashlib.blake2b(digest_size=16)
                h.update(str(self.num_vertices).encode())
                h.update(np.ascontiguousarray(self.offsets).tobytes())
                h.update(np.ascontiguousarray(self.targets).tobytes())
                h.update(np.ascontiguousarray(self.weights).tobytes())
                self._fingerprint = h.hexdigest()
        return self._fingerprint

    def to_coo(self) -> Tuple[VertexArray, VertexArray, WeightArray]:
        """Return ``(sources, targets, weights)`` arrays of the real edges."""
        if not self.is_holey:
            counts = np.diff(self.offsets)
            src = np.repeat(
                np.arange(self.num_vertices, dtype=VERTEX_DTYPE), counts
            )
            return src, self.targets.copy(), self.weights.copy()
        mask = self._used_mask()
        src = np.repeat(
            np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.degrees
        )
        return src, self.targets[mask], self.weights[mask]

    def compact(self) -> "CSRGraph":
        """Return an equivalent dense (non-holey) CSR graph."""
        if not self.is_holey:
            return self
        src, dst, wgt = self.to_coo()
        offsets = np.zeros(self.num_vertices + 1, dtype=OFFSET_DTYPE)
        np.cumsum(self.degrees, out=offsets[1:])
        return CSRGraph(offsets, dst, wgt, validate=False)

    def permute(self, perm) -> Tuple["CSRGraph", np.ndarray]:
        """Relabel vertices by ``perm`` (``perm[new_id] = old_id``).

        Returns ``(relabeled, inv)`` where ``inv[old_id] = new_id`` maps
        memberships over the relabeled graph back to original ids
        (``membership_new[inv]``).  Rows are gathered in permutation
        order and each row's edge order is preserved (targets are only
        *renamed* through ``inv``, never reordered), which makes the
        round trip exact: ``relabeled.permute(inv)[0]`` reproduces this
        graph's dense form bitwise.  Holey CSR graphs are compacted
        first, so the result is always dense.
        """
        from repro.graph.relabel import (
            inverse_permutation,
            validate_permutation,
        )
        from repro.graph.segments import ragged_indices

        g = self.compact()
        n = g.num_vertices
        p = validate_permutation(perm, n)
        inv = inverse_permutation(p)
        mt = _memmod()
        led = mt._ACTIVE
        degrees = g.degrees[p]
        offsets = np.zeros(n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(degrees, out=offsets[1:])
        _, idx = ragged_indices(g.offsets[:-1][p], degrees)
        if led.enabled:
            # The gather index is the permute transient: as large as the
            # edge arrays, gone when this call returns.  Recording the
            # alloc/free pair makes the permute's footprint spike show
            # in the peak watermarks without changing final live bytes.
            phase = mt.active_phase()
            h_idx = led.alloc("csr", "permute_gather_idx", idx.nbytes,
                              phase=phase, dtype=str(idx.dtype))
            led.alloc("csr", "permute_inv", inv.nbytes, phase=phase,
                      dtype=str(inv.dtype))
        targets = inv[g.targets[idx]].astype(VERTEX_DTYPE, copy=False)
        weights = g.weights[idx]
        relabeled = CSRGraph(offsets, targets, weights, validate=False)
        if led.enabled:
            led.free(h_idx)
        return relabeled, inv

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "holey CSR" if self.is_holey else "CSR"
        return (
            f"CSRGraph({kind}, n={self.num_vertices}, "
            f"edges={self.num_edges}, m={self.m:.1f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        if self.num_vertices != other.num_vertices:
            return False
        a = _canonical_coo(self)
        b = _canonical_coo(other)
        return all(np.array_equal(x, y) for x, y in zip(a, b))

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)


def _canonical_coo(g: CSRGraph):
    src, dst, wgt = g.to_coo()
    order = np.lexsort((dst, src))
    return src[order], dst[order], wgt[order]


def empty_csr(num_vertices: int = 0) -> CSRGraph:
    """An edgeless CSR graph on ``num_vertices`` vertices."""
    return CSRGraph(
        np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE),
        np.empty(0, dtype=VERTEX_DTYPE),
        np.empty(0, dtype=WEIGHT_DTYPE),
        validate=False,
    )
