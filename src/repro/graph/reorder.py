"""Vertex-ordering strategies for the local-moving phase.

The paper's related-work section lists "ordering of vertices based on
importance" (Aldabobi et al. [1]) among the Louvain improvements that
carry over to Leiden.  Processing well-connected vertices first lets big
communities crystallize early, which can cut iterations; random orders
decorrelate the processing sequence from vertex ids (useful when ids
encode generation artifacts).

These functions return a permutation of the vertex ids; the kernels
process (the unpruned subset of) vertices in that sequence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

__all__ = ["vertex_order", "ORDERINGS", "order_ranks"]

ORDERINGS = ("natural", "degree", "degree-desc", "random", "bfs")


def vertex_order(
    graph: CSRGraph,
    strategy: str = "natural",
    *,
    seed: int = 0,
) -> np.ndarray:
    """A processing permutation of ``graph``'s vertices.

    - ``natural``: ascending vertex id (the paper's default);
    - ``degree``: ascending weighted degree (leaves first);
    - ``degree-desc``: descending weighted degree (hubs first — the
      importance ordering of [1]);
    - ``random``: uniformly random permutation;
    - ``bfs``: breadth-first discovery order from high-degree roots
      (locality-friendly on road-like graphs).

    Every strategy returns a C-contiguous ``int64`` array; conversions
    are no-ops (``copy=False`` / ``ascontiguousarray``) whenever the
    producing routine already satisfies that policy.
    """
    n = graph.num_vertices
    if strategy not in ORDERINGS:
        raise ConfigError(f"ordering must be one of {ORDERINGS}")
    if strategy == "natural":
        return np.arange(n, dtype=np.int64)
    if strategy == "random":
        rng = np.random.default_rng(seed)
        return rng.permutation(n).astype(np.int64, copy=False)
    if strategy == "bfs":
        from repro.graph.traversal import bfs_order

        return np.ascontiguousarray(bfs_order(graph, seed=seed),
                                    dtype=np.int64)
    K = graph.vertex_weights()
    order = np.argsort(K, kind="stable").astype(np.int64, copy=False)
    if strategy == "degree-desc":
        # One copy total: the reversed view is materialized contiguous.
        order = np.ascontiguousarray(order[::-1])
    return order


def order_ranks(order: np.ndarray) -> np.ndarray:
    """Rank of each vertex in ``order`` (inverse permutation)."""
    ranks = np.empty(order.shape[0], dtype=np.int64)
    ranks[order] = np.arange(order.shape[0], dtype=np.int64)
    return ranks
