"""MatrixMarket coordinate-format graph I/O.

The paper's datasets come from the SuiteSparse Matrix Collection, which
distributes graphs as ``.mtx`` files.  We support the coordinate format
with ``pattern`` / ``real`` / ``integer`` fields and ``general`` /
``symmetric`` symmetry, which covers every graph in Table 2.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathOrFile = Union[str, Path, TextIO]

_VALID_FIELDS = {"pattern", "real", "integer", "double"}
_VALID_SYMMETRY = {"general", "symmetric"}


def read_mtx(source: PathOrFile, *, symmetrize: bool = True) -> CSRGraph:
    """Parse a MatrixMarket coordinate file into a CSR graph.

    Vertex ids in the file are 1-based (MatrixMarket convention) and are
    shifted to 0-based.  Rectangular matrices are rejected — a graph
    adjacency matrix must be square.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_mtx_stream(fh, symmetrize=symmetrize)
    return _read_mtx_stream(source, symmetrize=symmetrize)


def _read_mtx_stream(fh: TextIO, *, symmetrize: bool) -> CSRGraph:
    header = fh.readline()
    if not header.startswith("%%MatrixMarket"):
        raise GraphFormatError("missing %%MatrixMarket header")
    parts = header.strip().split()
    if len(parts) < 5:
        raise GraphFormatError(f"malformed header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = parts[:5]
    if obj.lower() != "matrix" or fmt.lower() != "coordinate":
        raise GraphFormatError("only 'matrix coordinate' files are supported")
    field = field.lower()
    symmetry = symmetry.lower()
    if field not in _VALID_FIELDS:
        raise GraphFormatError(f"unsupported field type {field!r}")
    if symmetry not in _VALID_SYMMETRY:
        raise GraphFormatError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read the size line.
    size_line = None
    for line in fh:
        text = line.strip()
        if not text or text.startswith("%"):
            continue
        size_line = text
        break
    if size_line is None:
        raise GraphFormatError("missing size line")
    dims = size_line.split()
    if len(dims) != 3:
        raise GraphFormatError(f"malformed size line: {size_line!r}")
    rows, cols, nnz = (int(x) for x in dims)
    if rows != cols:
        raise GraphFormatError("adjacency matrix must be square")

    pattern = field == "pattern"
    src = np.empty(nnz, dtype=VERTEX_DTYPE)
    dst = np.empty(nnz, dtype=VERTEX_DTYPE)
    wgt = np.ones(nnz, dtype=WEIGHT_DTYPE)
    count = 0
    for line in fh:
        text = line.strip()
        if not text or text.startswith("%"):
            continue
        if count >= nnz:
            raise GraphFormatError("more entries than declared nnz")
        parts = text.split()
        if pattern:
            if len(parts) < 2:
                raise GraphFormatError(f"bad pattern entry: {text!r}")
            u, v, w = int(parts[0]), int(parts[1]), 1.0
        else:
            if len(parts) < 3:
                raise GraphFormatError(f"bad weighted entry: {text!r}")
            u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
        if not (1 <= u <= rows and 1 <= v <= cols):
            raise GraphFormatError(f"entry out of bounds: {text!r}")
        src[count] = u - 1
        dst[count] = v - 1
        wgt[count] = w
        count += 1
    if count != nnz:
        raise GraphFormatError(f"declared {nnz} entries but found {count}")

    # 'symmetric' files store one triangle; mirroring is exactly the
    # symmetrize step of the build pipeline.
    do_symmetrize = symmetrize or symmetry == "symmetric"
    return build_csr_from_edges(
        src, dst, wgt, num_vertices=rows, symmetrize=do_symmetrize
    )


def write_mtx(graph: CSRGraph, target: PathOrFile, *, field: str = "real") -> None:
    """Write a CSR graph as a general MatrixMarket coordinate file.

    All stored (directed) edges are emitted, so reading the file back with
    ``symmetrize=False`` reproduces the same graph.
    """
    if field not in {"real", "pattern"}:
        raise GraphFormatError(f"unsupported output field {field!r}")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write_mtx_stream(graph, fh, field)
    else:
        _write_mtx_stream(graph, target, field)


def _write_mtx_stream(graph: CSRGraph, fh: TextIO, field: str) -> None:
    src, dst, wgt = graph.to_coo()
    fh.write(f"%%MatrixMarket matrix coordinate {field} general\n")
    fh.write(f"% written by repro (GVE-Leiden reproduction)\n")
    n = graph.num_vertices
    fh.write(f"{n} {n} {src.shape[0]}\n")
    if field == "pattern":
        for u, v in zip(src.tolist(), dst.tolist()):
            fh.write(f"{u + 1} {v + 1}\n")
    else:
        for u, v, w in zip(src.tolist(), dst.tolist(), wgt.tolist()):
            fh.write(f"{u + 1} {v + 1} {w:.9g}\n")
