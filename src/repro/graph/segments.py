"""Segmented gather helpers for CSR row batches.

The batch-parallel kernels repeatedly need "all edges of this set of
vertices" as flat arrays plus a parallel segment-id array.  This is the
standard vectorized ragged-gather trick: no Python loop, one pass of
``repeat``/``cumsum`` arithmetic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["ragged_indices", "gather_rows"]


def ragged_indices(starts: np.ndarray, lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flat indices of the concatenation of ``[starts[k], starts[k]+lengths[k])``.

    Returns ``(segment_ids, flat_indices)``: ``segment_ids[e]`` says which
    row edge-slot ``e`` came from, ``flat_indices[e]`` is its position in
    the underlying edge arrays.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    seg = np.repeat(np.arange(lengths.shape[0], dtype=np.int64), lengths)
    # position within each segment: global arange minus the segment's start
    # position in the concatenated output.
    out_starts = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=out_starts[1:])
    within = np.arange(total, dtype=np.int64) - out_starts[seg]
    return seg, starts[seg] + within


def gather_rows(
    offsets: np.ndarray,
    degrees: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    rows: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All edges of ``rows``: ``(segment_ids, targets, weights)``.

    ``segment_ids[e]`` indexes into ``rows`` (not vertex ids), so
    ``rows[segment_ids]`` recovers per-edge source vertices.
    """
    seg, idx = ragged_indices(offsets[rows], degrees[rows])
    return seg, targets[idx], weights[idx]
