"""METIS graph-format I/O.

The DIMACS10 graphs the paper uses (asia_osm, europe_osm) are distributed
in METIS format alongside MatrixMarket: a header line
``<num_vertices> <num_edges> [fmt [ncon]]`` followed by one line per
vertex listing its (1-based) neighbors, optionally interleaved with edge
weights when ``fmt`` has the 1-bit set (``1``, ``11``, ...).  Vertex
weights (``fmt`` 10-bit) are parsed and ignored — the algorithms here are
edge-weighted.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.types import VERTEX_DTYPE, WEIGHT_DTYPE

PathOrFile = Union[str, Path, TextIO]

__all__ = ["read_metis", "write_metis"]


def read_metis(source: PathOrFile) -> CSRGraph:
    """Parse a METIS graph file into a (symmetrized, coalesced) CSR graph."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return _read_stream(fh)
    return _read_stream(source)


def _data_lines(fh: TextIO):
    for line in fh:
        text = line.strip()
        if text.startswith("%"):
            continue
        yield text


def _read_stream(fh: TextIO) -> CSRGraph:
    lines = _data_lines(fh)
    try:
        header = next(lines)
    except StopIteration:
        raise GraphFormatError("empty METIS file") from None
    parts = header.split()
    if len(parts) < 2 or len(parts) > 4:
        raise GraphFormatError(f"malformed METIS header: {header!r}")
    try:
        n = int(parts[0])
        declared_edges = int(parts[1])
    except ValueError as exc:
        raise GraphFormatError(f"malformed METIS header: {header!r}") from exc
    fmt = parts[2] if len(parts) >= 3 else "0"
    ncon = int(parts[3]) if len(parts) == 4 else 0
    fmt = fmt.zfill(3)
    has_vertex_weights = fmt[-2] == "1"
    has_edge_weights = fmt[-1] == "1"
    has_vertex_sizes = fmt[-3] == "1"
    nweights = ncon if (has_vertex_weights and ncon) else (
        1 if has_vertex_weights else 0
    )

    src, dst, wgt = [], [], []
    count = 0
    for u in range(n):
        try:
            text = next(lines)
        except StopIteration:
            raise GraphFormatError(
                f"expected {n} vertex lines, found {u}"
            ) from None
        tokens = text.split()
        pos = (1 if has_vertex_sizes else 0) + nweights
        if has_edge_weights:
            if (len(tokens) - pos) % 2:
                raise GraphFormatError(
                    f"vertex {u + 1}: odd neighbor/weight token count"
                )
            pairs = tokens[pos:]
            for k in range(0, len(pairs), 2):
                v = int(pairs[k]) - 1
                w = float(pairs[k + 1])
                _check_neighbor(u, v, n)
                src.append(u)
                dst.append(v)
                wgt.append(w)
                count += 1
        else:
            for tok in tokens[pos:]:
                v = int(tok) - 1
                _check_neighbor(u, v, n)
                src.append(u)
                dst.append(v)
                wgt.append(1.0)
                count += 1
    # METIS lists each undirected edge from both endpoints.
    if count != 2 * declared_edges:
        raise GraphFormatError(
            f"header declares {declared_edges} edges but found "
            f"{count} adjacency entries (expected {2 * declared_edges})"
        )
    return build_csr_from_edges(
        np.asarray(src, dtype=VERTEX_DTYPE),
        np.asarray(dst, dtype=VERTEX_DTYPE),
        np.asarray(wgt, dtype=WEIGHT_DTYPE),
        num_vertices=n,
        symmetrize=True,   # heals one-sided listings, coalesces doubles
        coalesce="max",    # both sides list the same weight
    )


def _check_neighbor(u: int, v: int, n: int) -> None:
    if not 0 <= v < n:
        raise GraphFormatError(f"vertex {u + 1}: neighbor {v + 1} out of range")


def write_metis(
    graph: CSRGraph,
    target: PathOrFile,
    *,
    edge_weights: bool = False,
) -> None:
    """Write a CSR graph in METIS format.

    Self-loops are dropped (METIS does not allow them); parallel edges
    should have been coalesced already.
    """
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            _write_stream(graph, fh, edge_weights)
    else:
        _write_stream(graph, target, edge_weights)


def _write_stream(graph: CSRGraph, fh: TextIO, edge_weights: bool) -> None:
    n = graph.num_vertices
    src, dst, _ = graph.to_coo()
    undirected = int(((src != dst)).sum()) // 2
    fmt = " 001" if edge_weights else ""
    fh.write(f"{n} {undirected}{fmt}\n")
    for u in range(n):
        nbrs, wgts = graph.edges(u)
        keep = nbrs != u
        nbrs, wgts = nbrs[keep], wgts[keep]
        if edge_weights:
            toks = []
            for v, w in zip(nbrs.tolist(), wgts.tolist()):
                toks.append(str(v + 1))
                toks.append(f"{w:.9g}")
            fh.write(" ".join(toks) + "\n")
        else:
            fh.write(" ".join(str(v + 1) for v in nbrs.tolist()) + "\n")
