"""Tests for the competitor reimplementations."""

import pytest

from repro.baselines import (
    IMPLEMENTATIONS,
    get_implementation,
    igraph_leiden,
    implementation_names,
    networkit_leiden,
    original_leiden,
)
from repro.datasets.geometric import road_network
from repro.datasets.sbm import planted_partition
from repro.errors import ConfigError
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import random_graph, two_cliques_graph


class TestRegistry:
    def test_five_implementations(self):
        assert implementation_names() == [
            "gve", "original", "igraph", "networkit", "cugraph"
        ]

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            get_implementation("snap")

    def test_display_names(self):
        assert IMPLEMENTATIONS["gve"].display_name == "GVE-Leiden"

    def test_model_threads(self):
        assert IMPLEMENTATIONS["original"].model_threads == 1
        assert IMPLEMENTATIONS["gve"].model_threads == 64
        assert IMPLEMENTATIONS["cugraph"].model_threads == 108


class TestSequentialBaselines:
    def test_original_finds_cliques(self):
        g = two_cliques_graph()
        res = original_leiden(g, seed=3)
        assert res.num_communities == 2

    def test_igraph_finds_cliques(self):
        g = two_cliques_graph()
        res = igraph_leiden(g, seed=3)
        assert res.num_communities == 2

    def test_original_no_disconnected(self):
        g = random_graph(n=120, avg_degree=6, seed=1)
        res = original_leiden(g, seed=1)
        assert disconnected_communities(g, res.membership).num_disconnected == 0

    def test_original_quality_at_least_gve(self):
        """Run-to-convergence should match or beat the tolerance-bounded
        GVE quality (within noise)."""
        from repro.core.leiden import leiden
        g, _ = planted_partition(6, 40, intra_degree=10, inter_degree=3, seed=2)
        q_orig = modularity(g, original_leiden(g, seed=2).membership)
        q_gve = modularity(g, leiden(g).membership)
        assert q_orig > q_gve - 0.02

    def test_original_does_more_work_than_gve(self):
        from repro.core.leiden import leiden
        g = random_graph(n=150, avg_degree=6, seed=4)
        w_orig = original_leiden(g, seed=4).ledger.total_work
        w_gve = leiden(g).ledger.total_work
        assert w_orig > w_gve


class TestNetworkit:
    def test_runs(self):
        g = two_cliques_graph()
        res = networkit_leiden(g, seed=1)
        assert res.num_communities == 2

    def test_quality_collapses_on_chains(self):
        """The paper's key NetworKit observation: much lower modularity
        on road-network-like graphs."""
        from repro.core.leiden import leiden
        g, _ = road_network(30, 100, seed=3)
        q_nk = modularity(g, networkit_leiden(g, seed=3).membership)
        q_gve = modularity(g, leiden(g).membership)
        assert q_nk < q_gve - 0.2

    def test_max_ten_passes(self):
        g = random_graph(n=100, avg_degree=4, seed=5)
        res = networkit_leiden(g, seed=5)
        assert res.num_passes <= 10


class TestModeledSeconds:
    def test_gve_fastest_on_dense_graph(self):
        g = random_graph(n=200, avg_degree=10, seed=6)
        times = {}
        for name in ("gve", "original", "igraph"):
            impl = IMPLEMENTATIONS[name]
            res = impl.run(g, seed=6)
            times[name] = impl.modeled_seconds(res, scale=1000.0)
        assert times["gve"] < times["igraph"] < times["original"]

    def test_scale_increases_time(self):
        g = random_graph(n=100, avg_degree=6, seed=7)
        impl = IMPLEMENTATIONS["gve"]
        res = impl.run(g, seed=7)
        assert impl.modeled_seconds(res, scale=1000.0) > \
            impl.modeled_seconds(res, scale=1.0)
