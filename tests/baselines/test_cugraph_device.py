"""Tests for the cuGraph baseline and its A100 device model."""

import pytest

from repro.baselines.cugraph_leiden import (
    A100_DEVICE,
    DeviceModel,
    cugraph_leiden,
)
from repro.datasets.registry import graph_spec, load_graph
from repro.errors import SimulatedOutOfMemory
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import random_graph, two_cliques_graph

#: Graphs the paper reports cuGraph failing on (out of memory).
PAPER_OOM = ["arabic-2005", "uk-2005", "webbase-2001", "it-2004", "sk-2005"]
PAPER_OK = ["indochina-2004", "uk-2002", "com-LiveJournal", "com-Orkut",
            "asia_osm", "europe_osm", "kmer_A2a", "kmer_V1r"]


class TestDeviceModel:
    def test_a100_capacity(self):
        assert A100_DEVICE.memory_bytes == 80 * 1024**3

    def test_required_bytes_monotone(self):
        small = A100_DEVICE.required_bytes(1e6, 1e8)
        large = A100_DEVICE.required_bytes(1e6, 1e9)
        assert large > small

    def test_check_fit_raises_with_details(self):
        with pytest.raises(SimulatedOutOfMemory) as exc:
            A100_DEVICE.check_fit(1e9, 1e10, "huge")
        assert exc.value.capacity_bytes == A100_DEVICE.memory_bytes
        assert exc.value.required_bytes > exc.value.capacity_bytes
        assert "huge" in str(exc.value)

    def test_small_device(self):
        tiny = DeviceModel(memory_bytes=1024)
        with pytest.raises(SimulatedOutOfMemory):
            tiny.check_fit(100, 100, "g")

    def test_allocation_plan_sums_to_required_bytes(self):
        plan = A100_DEVICE.allocation_plan(1e6, 1e8)
        assert sum(nbytes for *_rest, nbytes in plan) == \
            A100_DEVICE.required_bytes(1e6, 1e8)

    def test_oom_on_largest_graph_reports_allocation_trace(self):
        """The paper's biggest OOM case (sk-2005): the exception must
        carry a non-empty allocation trace naming component and phase of
        what filled the device budget."""
        spec = graph_spec("sk-2005")
        with pytest.raises(SimulatedOutOfMemory) as exc:
            A100_DEVICE.check_fit(
                spec.paper_vertices, spec.paper_edges, "sk-2005")
        trace = exc.value.alloc_trace
        assert trace, "OOM must carry an allocation trace"
        # Largest constituent first, with component/phase attribution.
        assert "csr/adjacency" in trace[0]
        assert any("phase=local_move" in line for line in trace)
        assert "allocation trace (largest first)" in str(exc.value)

    def test_oom_trace_is_deterministic(self):
        def grab():
            with pytest.raises(SimulatedOutOfMemory) as exc:
                A100_DEVICE.check_fit(1e9, 1e10, "huge")
            return exc.value.alloc_trace

        assert grab() == grab()


class TestPaperOomPattern:
    @pytest.mark.parametrize("name", PAPER_OOM)
    def test_paper_oom_graphs_fail(self, name):
        g = load_graph(name)
        with pytest.raises(SimulatedOutOfMemory):
            cugraph_leiden(g, spec=graph_spec(name))

    @pytest.mark.parametrize("name", PAPER_OK)
    def test_other_graphs_fit(self, name):
        spec = graph_spec(name)
        A100_DEVICE.check_fit(spec.paper_vertices, spec.paper_edges, name)


class TestCugraphQuality:
    def test_runs_without_spec(self):
        g = two_cliques_graph()
        res = cugraph_leiden(g, seed=1)
        assert res.num_communities == 2

    def test_quality_close_to_gve(self):
        from repro.core.leiden import leiden
        g = random_graph(n=200, avg_degree=8, seed=2)
        q_cu = modularity(g, cugraph_leiden(g, seed=2).membership)
        q_gve = modularity(g, leiden(g).membership)
        assert q_cu > q_gve - 0.05

    def test_disconnected_fraction_tiny(self):
        g = random_graph(n=300, avg_degree=6, seed=3)
        res = cugraph_leiden(g, seed=3)
        report = disconnected_communities(g, res.membership)
        assert report.fraction < 0.02
