"""Tests for the ragged-gather helpers."""

import numpy as np

from repro.graph.segments import gather_rows, ragged_indices


class TestRaggedIndices:
    def test_basic(self):
        seg, idx = ragged_indices(np.array([0, 5]), np.array([2, 3]))
        assert seg.tolist() == [0, 0, 1, 1, 1]
        assert idx.tolist() == [0, 1, 5, 6, 7]

    def test_empty_rows_skipped(self):
        seg, idx = ragged_indices(np.array([0, 2, 2]), np.array([2, 0, 1]))
        assert seg.tolist() == [0, 0, 2]
        assert idx.tolist() == [0, 1, 2]

    def test_all_empty(self):
        seg, idx = ragged_indices(np.array([3, 3]), np.array([0, 0]))
        assert seg.shape == (0,)
        assert idx.shape == (0,)

    def test_no_rows(self):
        seg, idx = ragged_indices(np.array([]), np.array([]))
        assert seg.shape == (0,)

    def test_matches_python_loop(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 100, 20)
        lengths = rng.integers(0, 7, 20)
        seg, idx = ragged_indices(starts, lengths)
        expect_seg, expect_idx = [], []
        for k, (s, l) in enumerate(zip(starts, lengths)):
            for off in range(l):
                expect_seg.append(k)
                expect_idx.append(s + off)
        assert seg.tolist() == expect_seg
        assert idx.tolist() == expect_idx


class TestGatherRows:
    def test_gathers_edges(self, two_cliques):
        g = two_cliques
        rows = np.array([0, 5])
        seg, dst, wgt = gather_rows(
            g.offsets[:-1], g.degrees, g.targets, g.weights, rows
        )
        assert seg.shape[0] == g.degree(0) + g.degree(5)
        assert dst[seg == 0].tolist() == g.neighbors(0).tolist()
        assert dst[seg == 1].tolist() == g.neighbors(5).tolist()

    def test_empty_rows(self, two_cliques):
        g = two_cliques
        seg, dst, wgt = gather_rows(
            g.offsets[:-1], g.degrees, g.targets, g.weights,
            np.array([], dtype=np.int64),
        )
        assert seg.shape == (0,)
