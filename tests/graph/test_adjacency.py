"""Tests for the mutable 2D-vector graph."""

import pytest

from repro.errors import GraphStructureError
from repro.graph.adjacency import AdjacencyGraph


class TestMutation:
    def test_add_vertex(self):
        g = AdjacencyGraph()
        assert g.add_vertex() == 0
        assert g.add_vertex() == 1
        assert g.num_vertices == 2

    def test_ensure_vertices(self):
        g = AdjacencyGraph(2)
        g.ensure_vertices(5)
        assert g.num_vertices == 5
        g.ensure_vertices(3)  # never shrinks
        assert g.num_vertices == 5

    def test_add_directed_edge(self):
        g = AdjacencyGraph(3)
        g.add_edge(0, 1, 2.0)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.edge_weight(0, 1) == 2.0

    def test_add_undirected_edge(self):
        g = AdjacencyGraph(3)
        g.add_undirected_edge(0, 2)
        assert g.has_edge(0, 2) and g.has_edge(2, 0)
        assert g.num_edges == 2

    def test_undirected_self_loop_single_slot(self):
        g = AdjacencyGraph(1)
        g.add_undirected_edge(0, 0)
        assert g.num_edges == 1

    def test_parallel_edges_accumulate_weight(self):
        g = AdjacencyGraph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.5)
        assert g.edge_weight(0, 1) == pytest.approx(3.5)
        assert g.degree(0) == 2

    def test_out_of_range_rejected(self):
        g = AdjacencyGraph(2)
        with pytest.raises(GraphStructureError):
            g.add_edge(0, 5)
        with pytest.raises(GraphStructureError):
            g.degree(9)


class TestConversion:
    def test_to_csr_roundtrip(self, small_random_weighted):
        adj = AdjacencyGraph.from_csr(small_random_weighted)
        assert adj.num_vertices == small_random_weighted.num_vertices
        assert adj.num_edges == small_random_weighted.num_edges
        back = adj.to_csr()
        assert back == small_random_weighted

    def test_to_csr_empty(self):
        g = AdjacencyGraph(3).to_csr()
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_edges_iterator(self):
        g = AdjacencyGraph(2)
        g.add_edge(0, 1, 4.0)
        assert list(g.edges(0)) == [(1, 4.0)]
