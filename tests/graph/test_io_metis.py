"""Tests for METIS graph I/O."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph.io_metis import read_metis, write_metis
from tests.conftest import random_graph


def read_text(text: str):
    return read_metis(io.StringIO(text))


class TestRead:
    def test_basic_triangle(self):
        g = read_text("3 3\n2 3\n1 3\n1 2\n")
        assert g.num_vertices == 3
        assert g.num_edges == 6
        assert g.neighbors(0).tolist() == [1, 2]

    def test_comments_skipped(self):
        g = read_text("% a comment\n2 1\n% another\n2\n1\n")
        assert g.num_edges == 2

    def test_edge_weights(self):
        g = read_text("2 1 001\n2 5.0\n1 5.0\n")
        assert g.edge_weights(0).tolist() == [5.0]

    def test_vertex_weights_ignored(self):
        # fmt 010: one vertex weight before the neighbor list
        g = read_text("2 1 010\n7 2\n9 1\n")
        assert g.num_edges == 2
        assert g.edge_weights(0).tolist() == [1.0]

    def test_vertex_and_edge_weights(self):
        g = read_text("2 1 011\n7 2 3.5\n9 1 3.5\n")
        assert g.edge_weights(0).tolist() == [3.5]

    def test_ncon_multiple_vertex_weights(self):
        g = read_text("2 1 010 2\n7 8 2\n9 1 1\n")
        assert g.num_edges == 2

    def test_isolated_vertices(self):
        g = read_text("3 1\n2\n1\n\n")
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_empty_file_rejected(self):
        with pytest.raises(GraphFormatError):
            read_text("")

    def test_bad_header(self):
        with pytest.raises(GraphFormatError):
            read_text("3\n")

    def test_missing_vertex_lines(self):
        with pytest.raises(GraphFormatError):
            read_text("3 1\n2\n")

    def test_neighbor_out_of_range(self):
        with pytest.raises(GraphFormatError):
            read_text("2 1\n3\n1\n")

    def test_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError):
            read_text("3 5\n2\n1\n\n")

    def test_odd_weight_tokens(self):
        with pytest.raises(GraphFormatError):
            read_text("2 1 001\n2\n1 1.0\n")


class TestRoundtrip:
    def test_unweighted(self, two_cliques):
        buf = io.StringIO()
        write_metis(two_cliques, buf)
        buf.seek(0)
        assert read_metis(buf) == two_cliques

    def test_weighted(self):
        g = random_graph(n=30, avg_degree=4, seed=2, weighted=True)
        buf = io.StringIO()
        write_metis(g, buf, edge_weights=True)
        buf.seek(0)
        back = read_metis(buf)
        assert back == g

    def test_file_roundtrip(self, tmp_path, two_cliques):
        p = tmp_path / "g.graph"
        write_metis(two_cliques, p)
        assert read_metis(p) == two_cliques

    def test_self_loops_dropped_on_write(self):
        from repro.graph.builder import build_csr_from_edges
        g = build_csr_from_edges([0, 0], [0, 1])
        buf = io.StringIO()
        write_metis(g, buf)
        buf.seek(0)
        back = read_metis(buf)
        assert back.num_edges == 2  # only the 0-1 edge survives
