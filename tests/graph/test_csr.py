"""Unit tests for the CSR graph structure (dense and holey)."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph, empty_csr
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE


def make_holey():
    """Two vertices, capacity 3 each, degrees 2 and 1."""
    offsets = np.array([0, 3, 6], dtype=OFFSET_DTYPE)
    targets = np.array([1, 1, 0, 0, 0, 0], dtype=VERTEX_DTYPE)
    weights = np.array([1.0, 2.0, 0, 3.0, 0, 0], dtype=WEIGHT_DTYPE)
    degrees = np.array([2, 1], dtype=OFFSET_DTYPE)
    return CSRGraph(offsets, targets, weights, degrees)


class TestConstruction:
    def test_from_coo_basic(self):
        g = CSRGraph.from_coo([0, 1, 2], [1, 2, 0])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors(0)) == [1]

    def test_from_coo_unsorted_sources(self):
        g = CSRGraph.from_coo([2, 0, 1, 0], [0, 1, 2, 2])
        assert list(g.neighbors(0)) == [1, 2]
        assert list(g.neighbors(2)) == [0]

    def test_from_coo_explicit_vertex_count(self):
        g = CSRGraph.from_coo([0], [1], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_from_coo_default_weights_are_one(self):
        g = CSRGraph.from_coo([0, 1], [1, 0])
        assert g.edge_weights(0).tolist() == [1.0]

    def test_from_coo_length_mismatch(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_coo([0, 1], [1])

    def test_from_coo_weight_mismatch(self):
        with pytest.raises(GraphStructureError):
            CSRGraph.from_coo([0, 1], [1, 0], [1.0])

    def test_empty(self):
        g = empty_csr(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.total_weight == 0.0

    def test_zero_vertices(self):
        g = empty_csr(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_invalid_target_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(
                np.array([0, 1]), np.array([5]), np.array([1.0])
            )

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(
                np.array([0, 2, 1]),
                np.array([0, 1, 0]),
                np.array([1.0, 1.0, 1.0]),
            )

    def test_degrees_exceeding_capacity_rejected(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(
                np.array([0, 1, 2]),
                np.array([0, 1]),
                np.array([1.0, 1.0]),
                degrees=np.array([2, 0]),
            )


class TestProperties:
    def test_dtypes(self, small_random):
        g = small_random
        assert g.offsets.dtype == OFFSET_DTYPE
        assert g.targets.dtype == VERTEX_DTYPE
        assert g.weights.dtype == WEIGHT_DTYPE

    def test_total_weight_counts_both_directions(self, two_cliques):
        g = two_cliques
        # 2 cliques of 5 => 2*10 edges + 1 bridge, stored twice.
        assert g.num_edges == 2 * (20 + 1)
        assert g.total_weight == pytest.approx(g.num_edges)
        assert g.m == pytest.approx(g.num_edges / 2)

    def test_vertex_weights_match_manual(self, small_random_weighted):
        g = small_random_weighted
        K = g.vertex_weights()
        for i in range(g.num_vertices):
            assert K[i] == pytest.approx(float(g.edge_weights(i).sum()),
                                         rel=1e-6)

    def test_vertex_weights_empty_rows(self):
        g = CSRGraph.from_coo([0], [2], num_vertices=4)
        K = g.vertex_weights()
        assert K.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_neighbors_are_views(self, small_random):
        g = small_random
        i = next(v for v in range(g.num_vertices) if g.degree(v) > 0)
        nbrs = g.neighbors(i)
        assert nbrs.base is g.targets

    def test_iter_edges_count(self, two_cliques):
        assert len(list(two_cliques.iter_edges())) == two_cliques.num_edges

    def test_len(self, path10):
        assert len(path10) == 10


class TestHoley:
    def test_is_holey(self):
        g = make_holey()
        assert g.is_holey

    def test_dense_is_not_holey(self, path10):
        assert not path10.is_holey

    def test_holey_neighbors_skip_slack(self):
        g = make_holey()
        assert g.neighbors(0).tolist() == [1, 1]
        assert g.neighbors(1).tolist() == [0]

    def test_holey_vertex_weights(self):
        g = make_holey()
        assert g.vertex_weights().tolist() == [3.0, 3.0]

    def test_holey_to_coo_drops_slack(self):
        g = make_holey()
        src, dst, wgt = g.to_coo()
        assert src.tolist() == [0, 0, 1]
        assert dst.tolist() == [1, 1, 0]
        assert wgt.tolist() == [1.0, 2.0, 3.0]

    def test_compact_equivalence(self):
        g = make_holey()
        c = g.compact()
        assert not c.is_holey
        assert c == g
        assert c.num_edges == g.num_edges

    def test_compact_of_dense_is_identity(self, path10):
        assert path10.compact() is path10


class TestEquality:
    def test_equal_same_graph(self, path10):
        other = CSRGraph.from_coo(*path10.to_coo(),
                                  num_vertices=path10.num_vertices)
        assert path10 == other

    def test_unequal_different_weights(self):
        a = CSRGraph.from_coo([0, 1], [1, 0], [1.0, 1.0])
        b = CSRGraph.from_coo([0, 1], [1, 0], [2.0, 2.0])
        assert a != b

    def test_unequal_vertex_count(self):
        a = empty_csr(2)
        b = empty_csr(3)
        assert a != b
