"""Tests for the BFS traversal substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.builder import build_csr_from_edges
from repro.graph.traversal import bfs_levels, bfs_order, eccentricity_lower_bound
from tests.conftest import random_graph, two_cliques_graph


class TestBfsLevels:
    def test_path_distances(self, path10):
        levels = bfs_levels(path10, 0)
        assert levels.tolist() == list(range(10))

    def test_star_center(self, star8):
        levels = bfs_levels(star8, 0)
        assert levels[0] == 0
        assert (levels[1:] == 1).all()

    def test_unreachable_is_minus_one(self):
        g = build_csr_from_edges([0], [1], num_vertices=4)
        levels = bfs_levels(g, 0)
        assert levels.tolist() == [0, 1, -1, -1]

    def test_multi_source(self, path10):
        levels = bfs_levels(path10, [0, 9])
        assert levels[0] == 0 and levels[9] == 0
        assert levels[5] == 4  # closest source wins

    def test_out_of_range_source(self, path10):
        with pytest.raises(GraphStructureError):
            bfs_levels(path10, 99)

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        g = random_graph(n=60, avg_degree=4, seed=seed)
        G = nx.Graph()
        G.add_nodes_from(range(g.num_vertices))
        src, dst, _ = g.to_coo()
        G.add_edges_from(zip(src.tolist(), dst.tolist()))
        levels = bfs_levels(g, 0)
        nx_levels = nx.single_source_shortest_path_length(G, 0)
        for v in range(g.num_vertices):
            expect = nx_levels.get(v, -1)
            assert levels[v] == expect, v


class TestBfsOrder:
    def test_is_permutation(self, two_cliques):
        order = bfs_order(two_cliques)
        assert sorted(order.tolist()) == list(range(10))

    def test_levels_nondecreasing_within_component(self, path10):
        order = bfs_order(path10)
        root = order[0]
        levels = bfs_levels(path10, int(root))
        seq = levels[order]
        assert all(a <= b for a, b in zip(seq, seq[1:]))

    def test_isolated_vertices_included(self):
        g = build_csr_from_edges([0], [1], num_vertices=5)
        order = bfs_order(g)
        assert sorted(order.tolist()) == list(range(5))

    def test_deterministic(self, small_random):
        assert np.array_equal(bfs_order(small_random),
                              bfs_order(small_random))


class TestEccentricity:
    def test_path_endpoint(self, path10):
        assert eccentricity_lower_bound(path10, 0) == 9

    def test_path_middle(self, path10):
        assert eccentricity_lower_bound(path10, 5) == 5

    def test_star(self, star8):
        assert eccentricity_lower_bound(star8, 0) == 1
        assert eccentricity_lower_bound(star8, 1) == 2


class TestColoringFallback:
    def test_max_rounds_fallback_still_proper(self):
        """Force the round cap so the distinct-fresh-color path runs."""
        from repro.parallel.coloring import color_graph, verify_coloring
        g = two_cliques_graph()
        colors = color_graph(g, max_rounds=1)
        assert verify_coloring(g, colors)
        assert (colors >= 0).all()
