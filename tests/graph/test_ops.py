"""Tests for COO edge transforms and subgraph extraction."""

import pytest

from repro.errors import GraphStructureError
from repro.graph.ops import (
    coalesce_edges,
    degree_histogram,
    induced_subgraph,
    relabel_compact,
    remove_self_loops,
    symmetrize_edges,
)


class TestSymmetrize:
    def test_adds_reverse_edges(self):
        src, dst, wgt = symmetrize_edges([0, 1], [1, 2], [1.0, 2.0])
        pairs = sorted(zip(src.tolist(), dst.tolist(), wgt.tolist()))
        assert pairs == [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)]

    def test_self_loops_not_mirrored(self):
        src, dst, _ = symmetrize_edges([0], [0])
        assert len(src) == 1

    def test_empty(self):
        src, dst, wgt = symmetrize_edges([], [])
        assert len(src) == 0


class TestCoalesce:
    def test_sum(self):
        src, dst, wgt = coalesce_edges([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0])
        assert sorted(zip(src.tolist(), dst.tolist(), wgt.tolist())) == [
            (0, 1, 3.0), (1, 0, 5.0)
        ]

    def test_max(self):
        _, _, wgt = coalesce_edges([0, 0], [1, 1], [1.0, 4.0], reduce="max")
        assert wgt.tolist() == [4.0]

    def test_first(self):
        _, _, wgt = coalesce_edges([0, 0], [1, 1], [1.0, 4.0], reduce="first")
        assert wgt.tolist() == [1.0]

    def test_unknown_reduce(self):
        with pytest.raises(GraphStructureError):
            coalesce_edges([0], [1], reduce="median")

    def test_empty(self):
        src, _, _ = coalesce_edges([], [])
        assert len(src) == 0


class TestRemoveSelfLoops:
    def test_removes_only_loops(self):
        src, dst, _ = remove_self_loops([0, 1, 2], [0, 2, 2])
        assert src.tolist() == [1]
        assert dst.tolist() == [2]


class TestRelabelCompact:
    def test_compacts_sparse_ids(self):
        (src, dst, _), ids = relabel_compact([10, 30], [30, 50])
        assert ids.tolist() == [10, 30, 50]
        assert src.tolist() == [0, 1]
        assert dst.tolist() == [1, 2]

    def test_roundtrip_via_ids(self):
        (src, dst, _), ids = relabel_compact([7, 3], [3, 9])
        assert ids[src].tolist() == [7, 3]
        assert ids[dst].tolist() == [3, 9]


class TestDegreeHistogram:
    def test_path(self, path10):
        h = degree_histogram(path10)
        assert h[1] == 2  # endpoints
        assert h[2] == 8  # interior

    def test_empty_graph(self):
        from repro.graph.csr import empty_csr
        h = degree_histogram(empty_csr(3))
        assert h[0] == 3


class TestInducedSubgraph:
    def test_extracts_clique(self, two_cliques):
        sub, ids = induced_subgraph(two_cliques, range(5))
        assert sub.num_vertices == 5
        assert sub.num_edges == 20  # clique of 5 stored both ways
        assert ids.tolist() == [0, 1, 2, 3, 4]

    def test_cross_edges_dropped(self, two_cliques):
        sub, _ = induced_subgraph(two_cliques, [0, 5])
        # only the bridge edge survives
        assert sub.num_edges == 2

    def test_empty_selection(self, two_cliques):
        sub, ids = induced_subgraph(two_cliques, [])
        assert sub.num_vertices == 0

    def test_weights_preserved(self, weighted_triangle):
        sub, ids = induced_subgraph(weighted_triangle, [0, 1])
        assert sub.num_edges == 2
        assert float(sub.weights.max()) == pytest.approx(1.0)
