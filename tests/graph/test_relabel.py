"""Tests for community-aware relabeling and CSRGraph.permute."""

import numpy as np
import pytest

from repro.errors import ConfigError, GraphStructureError
from repro.graph.builder import build_csr_from_edges
from repro.graph.csr import CSRGraph
from repro.graph.relabel import (
    RELABEL_MODES,
    community_relabeling,
    inverse_permutation,
    is_community_contiguous,
    validate_permutation,
)
from repro.types import OFFSET_DTYPE, VERTEX_DTYPE, WEIGHT_DTYPE
from tests.conftest import random_graph, two_cliques_graph


def graphs_equal(a: CSRGraph, b: CSRGraph) -> bool:
    return (np.array_equal(a.offsets, b.offsets)
            and np.array_equal(a.targets, b.targets)
            and np.array_equal(a.weights, b.weights))


class TestValidatePermutation:
    def test_identity_ok(self):
        p = validate_permutation(np.arange(5), 5)
        assert p.dtype == np.int64

    def test_wrong_length(self):
        with pytest.raises(GraphStructureError):
            validate_permutation(np.arange(4), 5)

    def test_out_of_range(self):
        with pytest.raises(GraphStructureError):
            validate_permutation(np.array([0, 1, 5]), 3)

    def test_repeated_entries(self):
        with pytest.raises(GraphStructureError):
            validate_permutation(np.array([0, 1, 1]), 3)

    def test_inverse(self):
        perm = np.array([2, 0, 3, 1], dtype=np.int64)
        inv = inverse_permutation(perm)
        assert np.array_equal(inv[perm], np.arange(4))
        assert np.array_equal(perm[inv], np.arange(4))


class TestPermute:
    def test_roundtrip_bitwise(self, small_random_weighted):
        g = small_random_weighted
        rng = np.random.default_rng(3)
        perm = rng.permutation(g.num_vertices).astype(np.int64)
        g2, inv = g.permute(perm)
        back, _ = g2.permute(inv)
        assert graphs_equal(back, g.compact())
        assert back.offsets.dtype == OFFSET_DTYPE
        assert back.targets.dtype == VERTEX_DTYPE
        assert back.weights.dtype == WEIGHT_DTYPE

    def test_degrees_and_weights_follow(self, star8):
        perm = np.roll(np.arange(star8.num_vertices), 1).astype(np.int64)
        g2, inv = star8.permute(perm)
        assert np.array_equal(g2.degrees, star8.degrees[perm])
        assert g2.total_weight == star8.total_weight
        # hub 0 moved to new id inv[0]; its row has all the neighbors
        hub_new = int(inv[0])
        assert g2.degrees[hub_new] == star8.degrees[0]

    def test_edge_structure_preserved(self, two_cliques):
        rng = np.random.default_rng(11)
        perm = rng.permutation(two_cliques.num_vertices).astype(np.int64)
        g2, inv = two_cliques.permute(perm)
        for v in range(two_cliques.num_vertices):
            nbrs, wgts = two_cliques.edges(v)
            nbrs2, wgts2 = g2.edges(int(inv[v]))
            # per-row order is preserved up to renaming
            assert np.array_equal(inv[nbrs], nbrs2)
            assert np.array_equal(wgts, wgts2)

    def test_identity_permutation_is_noop(self, small_random):
        g = small_random.compact()
        g2, inv = g.permute(np.arange(g.num_vertices))
        assert graphs_equal(g, g2)
        assert np.array_equal(inv, np.arange(g.num_vertices))

    def test_bad_perm_rejected(self, path10):
        with pytest.raises(GraphStructureError):
            path10.permute(np.zeros(path10.num_vertices, dtype=np.int64))

    def test_empty_graph(self):
        g = build_csr_from_edges([], [], num_vertices=0)
        g2, inv = g.permute(np.empty(0, dtype=np.int64))
        assert g2.num_vertices == 0
        assert inv.shape[0] == 0

    def test_self_loops_follow_vertex(self):
        g = build_csr_from_edges([0, 1, 2, 0], [0, 1, 2, 1])
        perm = np.array([2, 0, 1], dtype=np.int64)
        g2, inv = g.permute(perm)
        for v in range(3):
            nbrs, _ = g.edges(v)
            nbrs2, _ = g2.edges(int(inv[v]))
            assert sorted(inv[nbrs].tolist()) == sorted(nbrs2.tolist())
            # loop at v stays a loop at inv[v]
            assert (v in nbrs) == (int(inv[v]) in nbrs2)


class TestCommunityRelabeling:
    def test_members_contiguous(self, two_cliques):
        m = np.array([0] * 5 + [1] * 5)[np.random.default_rng(0).permutation(10)]
        relab = community_relabeling(two_cliques, [m], mode="community")
        assert is_community_contiguous(m[relab.perm])
        assert relab.num_communities == 2

    def test_stable_ascending_ids_within_community(self):
        m = np.array([1, 0, 1, 0, 1])
        relab = community_relabeling(None, [m], mode="community")
        # community 0 = {1, 3}, community 1 = {0, 2, 4}, ids ascending
        assert relab.perm.tolist() == [1, 3, 0, 2, 4]

    def test_degree_mode_sorts_hubs_first(self, star8):
        m = np.zeros(star8.num_vertices, dtype=np.int64)
        relab = community_relabeling(star8, [m], mode="community-degree")
        assert relab.perm[0] == 0  # the hub has the largest degree
        assert sorted(relab.perm.tolist()) == list(range(star8.num_vertices))

    def test_degree_mode_needs_graph(self):
        with pytest.raises(ConfigError):
            community_relabeling(None, [np.zeros(4)], mode="community-degree")

    def test_mode_none_rejected(self):
        with pytest.raises(ConfigError):
            community_relabeling(None, [np.zeros(4)], mode="none")
        with pytest.raises(ConfigError):
            community_relabeling(None, [np.zeros(4)], mode="hilbert")

    def test_multi_level_coarsest_is_primary(self):
        fine = np.array([0, 1, 2, 3])
        coarse = np.array([1, 0, 1, 0])
        relab = community_relabeling(None, [fine, coarse], mode="community")
        # coarse community 0 = {1, 3} first, then coarse 1 = {0, 2};
        # inside each, the finer level orders members
        assert relab.perm.tolist() == [1, 3, 0, 2]
        assert relab.num_communities == 2

    def test_singleton_communities_identity(self):
        m = np.arange(6)
        relab = community_relabeling(None, [m], mode="community")
        assert relab.perm.tolist() == list(range(6))
        assert relab.num_communities == 6

    def test_one_giant_community_identity(self):
        m = np.zeros(6, dtype=np.int64)
        relab = community_relabeling(None, [m], mode="community")
        assert relab.perm.tolist() == list(range(6))
        assert relab.num_communities == 1

    def test_empty(self):
        relab = community_relabeling(None, [np.empty(0, dtype=np.int64)],
                                     mode="community")
        assert relab.num_vertices == 0
        assert relab.num_communities == 0

    def test_membership_mapping_roundtrip(self, small_random):
        g = small_random
        rng = np.random.default_rng(5)
        m = rng.integers(0, 4, g.num_vertices).astype(VERTEX_DTYPE)
        relab = community_relabeling(g, [m], mode="community")
        m_new = relab.to_relabeled(m)
        assert is_community_contiguous(m_new)
        assert np.array_equal(relab.to_original(m_new), m)

    def test_mapping_rejects_wrong_length(self):
        relab = community_relabeling(None, [np.zeros(4)], mode="community")
        with pytest.raises(GraphStructureError):
            relab.to_original(np.zeros(3))
        with pytest.raises(GraphStructureError):
            relab.to_relabeled(np.zeros(5))

    def test_describe(self):
        relab = community_relabeling(None, [np.array([0, 0, 1])],
                                     mode="community")
        assert relab.describe() == {
            "mode": "community", "num_vertices": 3, "num_communities": 2,
        }

    def test_modes_tuple(self):
        assert RELABEL_MODES == ("none", "community", "community-degree")


class TestIsCommunityContiguous:
    def test_cases(self):
        assert is_community_contiguous(np.array([0, 0, 1, 1, 2]))
        assert is_community_contiguous(np.array([2, 2, 0, 1]))
        assert not is_community_contiguous(np.array([0, 1, 0]))
        assert is_community_contiguous(np.empty(0))
        assert is_community_contiguous(np.array([7]))


class TestSelfLoopHeavy:
    def test_relabel_keeps_quality_structures(self):
        g = build_csr_from_edges(
            [0, 1, 2, 3, 4, 0, 1, 2], [0, 1, 2, 3, 4, 1, 2, 3])
        m = np.array([0, 0, 0, 1, 1])
        relab = community_relabeling(g, [m], mode="community-degree")
        g2, inv = g.permute(relab.perm)
        assert g2.total_weight == g.total_weight
        back, _ = g2.permute(inv)
        assert graphs_equal(back, g.compact())


class TestRandomGraphRoundtrip:
    def test_relabel_roundtrip_many_seeds(self):
        for seed in range(3):
            g = random_graph(n=50, avg_degree=5, seed=seed, weighted=True)
            rng = np.random.default_rng(seed + 100)
            m = rng.integers(0, 7, g.num_vertices)
            relab = community_relabeling(g, [m], mode="community")
            g2, inv = g.permute(relab.perm)
            back, _ = g2.permute(inv)
            assert graphs_equal(back, g.compact())

    def test_two_cliques_layout(self):
        g = two_cliques_graph()
        m = np.array([0] * 5 + [1] * 5)
        relab = community_relabeling(g, [m], mode="community")
        # already contiguous: identity layout
        assert relab.perm.tolist() == list(range(10))
