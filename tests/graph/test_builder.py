"""Tests for the edge-list -> CSR build pipeline."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.builder import GraphBuilder, build_csr_from_edges


class TestBuildCsrFromEdges:
    def test_symmetrizes_by_default(self):
        g = build_csr_from_edges([0], [1])
        assert g.num_edges == 2
        assert g.neighbors(1).tolist() == [0]

    def test_no_symmetrize(self):
        g = build_csr_from_edges([0], [1], symmetrize=False)
        assert g.num_edges == 1
        assert g.degree(1) == 0

    def test_self_loop_not_duplicated(self):
        g = build_csr_from_edges([0, 0], [0, 1])
        # loop stored once, edge 0-1 stored twice
        assert g.num_edges == 3
        assert g.neighbors(0).tolist() == [0, 1]

    def test_drop_self_loops(self):
        g = build_csr_from_edges([0, 0], [0, 1], drop_self_loops=True)
        assert g.num_edges == 2

    def test_coalesce_sums_parallel_edges(self):
        g = build_csr_from_edges([0, 0], [1, 1], [2.0, 3.0])
        assert g.num_edges == 2
        assert g.edge_weights(0).tolist() == [5.0]

    def test_coalesce_max(self):
        g = build_csr_from_edges([0, 0], [1, 1], [2.0, 3.0], coalesce="max")
        assert g.edge_weights(0).tolist() == [3.0]

    def test_coalesce_none_keeps_multi_edges(self):
        g = build_csr_from_edges([0, 0], [1, 1], coalesce=None)
        assert g.num_edges == 4

    def test_default_weight_is_one(self):
        g = build_csr_from_edges([0], [1])
        assert g.edge_weights(0).tolist() == [1.0]

    def test_negative_ids_rejected(self):
        with pytest.raises(GraphStructureError):
            build_csr_from_edges([-1], [0])

    def test_num_vertices_inferred(self):
        g = build_csr_from_edges([3], [7])
        assert g.num_vertices == 8

    def test_num_vertices_explicit(self):
        g = build_csr_from_edges([0], [1], num_vertices=10)
        assert g.num_vertices == 10

    def test_empty_input(self):
        g = build_csr_from_edges([], [], num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_targets_sorted_within_row(self):
        g = build_csr_from_edges([0, 0, 0], [5, 2, 9], num_vertices=10)
        assert g.neighbors(0).tolist() == [2, 5, 9]


class TestGraphBuilder:
    def test_incremental_build(self):
        g = (GraphBuilder()
             .add_edge(0, 1)
             .add_edge(1, 2, weight=2.0)
             .build())
        assert g.num_vertices == 3
        assert g.num_edges == 4
        assert g.edge_weights(2).tolist() == [2.0]

    def test_add_edges_mixed_tuples(self):
        g = GraphBuilder().add_edges([(0, 1), (1, 2, 3.0)]).build()
        assert g.edge_weights(2).tolist() == [3.0]

    def test_min_vertices_respected(self):
        g = GraphBuilder(num_vertices=6).add_edge(0, 1).build()
        assert g.num_vertices == 6

    def test_num_buffered_edges(self):
        b = GraphBuilder().add_edge(0, 1).add_edge(1, 2)
        assert b.num_buffered_edges == 2

    def test_negative_rejected(self):
        with pytest.raises(GraphStructureError):
            GraphBuilder().add_edge(-1, 2)

    def test_build_empty(self):
        g = GraphBuilder(num_vertices=2).build()
        assert g.num_vertices == 2
        assert g.num_edges == 0

    def test_matches_direct_build(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 0.5), (2, 2, 1.5)]
        via_builder = GraphBuilder().add_edges(edges).build()
        src, dst, wgt = zip(*edges)
        direct = build_csr_from_edges(src, dst, wgt)
        assert via_builder == direct
