"""Tests for deep CSR validation."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.graph.validate import is_undirected, validate_csr


class TestValidate:
    def test_accepts_symmetric(self, two_cliques):
        validate_csr(two_cliques)

    def test_rejects_asymmetric(self):
        g = CSRGraph.from_coo([0], [1], num_vertices=2)
        with pytest.raises(GraphStructureError):
            validate_csr(g)

    def test_asymmetric_ok_when_not_required(self):
        g = CSRGraph.from_coo([0], [1], num_vertices=2)
        validate_csr(g, require_symmetric=False)

    def test_rejects_zero_weight(self):
        g = CSRGraph.from_coo([0, 1], [1, 0], [0.0, 0.0])
        with pytest.raises(GraphStructureError):
            validate_csr(g)

    def test_zero_weight_ok_when_allowed(self):
        g = CSRGraph.from_coo([0, 1], [1, 0], [0.0, 0.0])
        validate_csr(g, require_positive_weights=False)

    def test_rejects_nan_weight(self):
        g = CSRGraph.from_coo([0, 1], [1, 0], [np.nan, np.nan])
        with pytest.raises(GraphStructureError):
            validate_csr(g, require_positive_weights=False)

    def test_rejects_asymmetric_weights(self):
        g = CSRGraph.from_coo([0, 1], [1, 0], [1.0, 2.0])
        with pytest.raises(GraphStructureError):
            validate_csr(g)

    def test_self_loops_fine(self):
        g = CSRGraph.from_coo([0], [0], [2.0])
        validate_csr(g)

    def test_is_undirected_helper(self, two_cliques):
        assert is_undirected(two_cliques)
        assert not is_undirected(CSRGraph.from_coo([0], [1], num_vertices=2))
