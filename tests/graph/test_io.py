"""Tests for edge-list and MatrixMarket I/O."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graph.io_edgelist import (
    edgelist_from_string,
    read_edgelist,
    write_edgelist,
)
from repro.graph.io_mtx import read_mtx, write_mtx


class TestEdgelistRead:
    def test_basic(self):
        g = edgelist_from_string("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert g.num_edges == 4

    def test_weighted(self):
        g = edgelist_from_string("0 1 2.5\n")
        assert g.edge_weights(0).tolist() == [2.5]

    def test_comments_and_blanks(self):
        g = edgelist_from_string("# header\n% alt comment\n\n0 1\n")
        assert g.num_edges == 2

    def test_default_weight(self):
        g = edgelist_from_string("0 1\n", default_weight=4.0)
        assert g.edge_weights(0).tolist() == [4.0]

    def test_no_symmetrize(self):
        g = edgelist_from_string("0 1\n", symmetrize=False)
        assert g.num_edges == 1

    def test_malformed_line(self):
        with pytest.raises(GraphFormatError):
            edgelist_from_string("0\n")

    def test_non_numeric(self):
        with pytest.raises(GraphFormatError):
            edgelist_from_string("a b\n")

    def test_negative_id(self):
        with pytest.raises(GraphFormatError):
            edgelist_from_string("-1 0\n")


class TestEdgelistRoundtrip:
    def test_roundtrip_memory(self, small_random_weighted):
        buf = io.StringIO()
        write_edgelist(small_random_weighted, buf)
        buf.seek(0)
        back = read_edgelist(
            buf, num_vertices=small_random_weighted.num_vertices
        )
        assert back == small_random_weighted

    def test_roundtrip_file(self, tmp_path, two_cliques):
        path = tmp_path / "g.txt"
        write_edgelist(two_cliques, path)
        assert read_edgelist(path) == two_cliques

    def test_directed_write_keeps_all(self, path10, tmp_path):
        p = tmp_path / "d.txt"
        write_edgelist(path10, p, directed=True)
        g = read_edgelist(p, symmetrize=False)
        assert g.num_edges == path10.num_edges

    def test_unweighted_write(self, path10):
        buf = io.StringIO()
        write_edgelist(path10, buf, write_weights=False)
        assert all(len(l.split()) == 2 for l in buf.getvalue().splitlines())


class TestMtx:
    def test_read_general_real(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "% comment\n"
            "3 3 2\n"
            "1 2 1.5\n"
            "2 3 2.0\n"
        )
        g = read_mtx(io.StringIO(text))
        assert g.num_vertices == 3
        assert g.num_edges == 4  # symmetrized
        assert g.edge_weights(0).tolist() == [1.5]

    def test_read_pattern(self):
        text = (
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = read_mtx(io.StringIO(text))
        assert g.edge_weights(0).tolist() == [1.0]

    def test_read_symmetric_mirrors(self):
        text = (
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 1\n"
            "2 1 3.0\n"
        )
        g = read_mtx(io.StringIO(text), symmetrize=False)
        assert g.num_edges == 2

    def test_rejects_missing_header(self):
        with pytest.raises(GraphFormatError):
            read_mtx(io.StringIO("1 1 0\n"))

    def test_rejects_rectangular(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 3 0\n"
        with pytest.raises(GraphFormatError):
            read_mtx(io.StringIO(text))

    def test_rejects_out_of_bounds(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "3 1 1.0\n"
        )
        with pytest.raises(GraphFormatError):
            read_mtx(io.StringIO(text))

    def test_rejects_wrong_count(self):
        text = (
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 2\n"
            "1 2 1.0\n"
        )
        with pytest.raises(GraphFormatError):
            read_mtx(io.StringIO(text))

    def test_rejects_array_format(self):
        with pytest.raises(GraphFormatError):
            read_mtx(io.StringIO("%%MatrixMarket matrix array real general\n"))

    def test_roundtrip(self, tmp_path, small_random_weighted):
        p = tmp_path / "g.mtx"
        write_mtx(small_random_weighted, p)
        back = read_mtx(p, symmetrize=False)
        assert back == small_random_weighted

    def test_roundtrip_pattern(self, tmp_path, path10):
        p = tmp_path / "g.mtx"
        write_mtx(path10, p, field="pattern")
        back = read_mtx(p, symmetrize=False)
        assert back == path10

    def test_write_rejects_bad_field(self, path10, tmp_path):
        with pytest.raises(GraphFormatError):
            write_mtx(path10, tmp_path / "g.mtx", field="complex")
