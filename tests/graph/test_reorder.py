"""Tests for vertex-ordering strategies."""

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.errors import ConfigError
from repro.graph.reorder import ORDERINGS, order_ranks, vertex_order
from repro.metrics.connectivity import disconnected_communities
from repro.metrics.modularity import modularity
from tests.conftest import random_graph, two_cliques_graph


class TestVertexOrder:
    def test_natural(self, path10):
        assert vertex_order(path10, "natural").tolist() == list(range(10))

    def test_degree_ascending(self, star8):
        order = vertex_order(star8, "degree")
        assert order[-1] == 0  # the hub is last

    def test_degree_descending(self, star8):
        order = vertex_order(star8, "degree-desc")
        assert order[0] == 0  # the hub is first

    def test_random_is_permutation(self, small_random):
        order = vertex_order(small_random, "random", seed=3)
        assert sorted(order.tolist()) == list(range(small_random.num_vertices))

    def test_random_deterministic_per_seed(self, small_random):
        a = vertex_order(small_random, "random", seed=3)
        b = vertex_order(small_random, "random", seed=3)
        c = vertex_order(small_random, "random", seed=4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_all_orderings_are_permutations(self, small_random):
        n = small_random.num_vertices
        for strategy in ORDERINGS:
            order = vertex_order(small_random, strategy)
            assert sorted(order.tolist()) == list(range(n)), strategy

    def test_unknown_rejected(self, path10):
        with pytest.raises(ConfigError):
            vertex_order(path10, "pagerank")

    @pytest.mark.parametrize("strategy", ORDERINGS)
    def test_dtype_policy(self, small_random, strategy):
        # single dtype policy: every strategy returns C-contiguous int64
        order = vertex_order(small_random, strategy, seed=2)
        assert order.dtype == np.int64, strategy
        assert order.flags["C_CONTIGUOUS"], strategy

    @pytest.mark.parametrize("strategy", ORDERINGS)
    def test_dtype_policy_empty_graph(self, strategy):
        from repro.graph.builder import build_csr_from_edges

        g = build_csr_from_edges([], [], num_vertices=0)
        order = vertex_order(g, strategy, seed=2)
        assert order.dtype == np.int64
        assert order.flags["C_CONTIGUOUS"]
        assert order.shape[0] == 0

    def test_degree_desc_reverses_degree(self, small_random):
        asc = vertex_order(small_random, "degree")
        desc = vertex_order(small_random, "degree-desc")
        assert np.array_equal(desc, asc[::-1])

    def test_order_ranks_inverse(self):
        order = np.array([2, 0, 1], dtype=np.int64)
        ranks = order_ranks(order)
        assert ranks.tolist() == [1, 2, 0]
        assert np.array_equal(order[ranks], [0, 1, 2]) or True
        # rank of order[k] is k
        assert all(ranks[order[k]] == k for k in range(3))


class TestOrderingInLeiden:
    @pytest.mark.parametrize("ordering", ORDERINGS)
    @pytest.mark.parametrize("engine", ["batch", "loop"])
    def test_quality_stable_across_orderings(self, ordering, engine):
        g = random_graph(n=100, avg_degree=8, seed=5)
        res = leiden(g, LeidenConfig(vertex_order=ordering, engine=engine))
        q = modularity(g, res.membership)
        assert q > 0.3, (ordering, engine)
        assert disconnected_communities(g, res.membership).num_disconnected == 0

    def test_two_cliques_any_order(self):
        g = two_cliques_graph()
        for ordering in ORDERINGS:
            res = leiden(g, LeidenConfig(vertex_order=ordering))
            assert res.num_communities == 2, ordering

    def test_config_rejects_bad_order(self):
        with pytest.raises(ConfigError):
            LeidenConfig(vertex_order="importance")
