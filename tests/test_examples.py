"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Text each example must produce (proves it did its work, not just ran).
EXPECTED_OUTPUT = {
    "quickstart.py": "internally-disconnected communities: 0",
    "web_crawl_communities.py": "greedy-default",
    "road_network_scaling.py": "Paper reference (Figure 9)",
    "compare_implementations.py": "out of memory",
    "dynamic_updates.py": "work vs scratch",
    "file_io_pipeline.py": "membership saved and verified",
    "cpm_resolution.py": "resolution limit",
    "community_analysis.py": "seed stability",
    "partition_server.py": "served == from-scratch: True",
    "process_engine.py": "bitwise-identical to the simulated oracle: True",
    "profile_smoke.py": "convergence monitor",
    "reorder_locality.py": "Q invariant under relabeling: True",
    "metrics_smoke.py": "health=PAGE",
    "memory_smoke.py": "double runs byte-identical: True",
    "fleet_smoke.py": "zero failed requests: True",
    "reqtrace_smoke.py": "trace ids replay deterministically: True",
}


def test_all_examples_covered():
    names = {p.name for p in EXAMPLES}
    assert names == set(EXPECTED_OUTPUT), (
        "examples/ and EXPECTED_OUTPUT out of sync"
    )


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert EXPECTED_OUTPUT[script.name] in proc.stdout
