"""Tests for the thread-timeline profiler and its Chrome-trace export."""

import json

import numpy as np
import pytest

from repro.core.config import LeidenConfig
from repro.core.leiden import leiden
from repro.observability.profile_report import (
    analyze_timeline,
    convergence_rows,
    format_profile_report,
)
from repro.observability.profiler import (
    NULL_PROFILER,
    CAT_BARRIER,
    CAT_CHUNK,
    CAT_SERIAL,
    Profiler,
    chrome_trace_json,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.observability.tracer import Tracer
from repro.parallel.costmodel import PAPER_MACHINE
from repro.parallel.runtime import Runtime
from repro.parallel.schedule import Schedule
from tests.conftest import ring_of_cliques_graph


def profiled_run(seed=1, num_threads=8, **cfg):
    graph = ring_of_cliques_graph()
    tracer = Tracer()
    profiler = Profiler(num_threads=num_threads)
    rt = Runtime(num_threads=1, seed=seed, tracer=tracer, profiler=profiler)
    result = leiden(graph, LeidenConfig(seed=seed, **cfg), runtime=rt)
    return graph, tracer, profiler, result


class TestCapture:
    def test_every_ledger_region_is_captured(self):
        _, _, profiler, result = profiled_run()
        assert len(profiler.regions) == len(result.ledger.regions)
        for rec, reg in zip(profiler.regions, result.ledger.regions):
            assert rec.kind == reg.kind
            assert rec.phase == reg.phase
            assert np.array_equal(rec.chunk_costs, reg.chunk_costs)

    def test_labels_carry_span_paths(self):
        _, _, profiler, _ = profiled_run()
        labels = {r.label for r in profiler.regions}
        assert any(label.startswith("leiden/pass[0]/") for label in labels)

    def test_disabled_profiler_captures_nothing(self):
        graph = ring_of_cliques_graph()
        rt = Runtime(num_threads=1, seed=1)
        assert rt.profiler is NULL_PROFILER
        leiden(graph, LeidenConfig(seed=1), runtime=rt)
        assert NULL_PROFILER.enabled is False
        assert NULL_PROFILER.record_region(None) == 0.0

    def test_membership_identical_with_and_without_profiling(self):
        graph = ring_of_cliques_graph()
        plain = leiden(graph, LeidenConfig(seed=3))
        rt = Runtime(num_threads=1, seed=3, profiler=Profiler())
        profiled = leiden(graph, LeidenConfig(seed=3), runtime=rt)
        assert np.array_equal(plain.membership, profiled.membership)

    def test_convergence_marks_recorded(self):
        _, _, profiler, _ = profiled_run()
        names = {m.name for m in profiler.marks}
        assert {"move_delta_q", "refine_splits", "communities"} <= names


class TestTimeline:
    def test_matches_ledger_simulate_at_all_thread_counts(self):
        """Timeline totals equal WorkLedger.simulate within 1% at 1/8/32."""
        _, _, profiler, result = profiled_run()
        for T in (1, 8, 32):
            tl = profiler.timeline(T)
            sim = result.ledger.simulate(PAPER_MACHINE, T)
            assert tl.total_seconds == pytest.approx(sim.seconds, rel=0.01)
            for phase, sec in sim.phase_seconds.items():
                assert tl.phase_seconds()[phase] == pytest.approx(
                    sec, rel=0.01)

    def test_lanes_cover_regions_without_overlap(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(4)
        for tid in range(4):
            evs = sorted((e for e in tl.events if e.tid == tid),
                         key=lambda e: (e.start, e.end))
            for a, b in zip(evs, evs[1:]):
                assert b.start >= a.end - 1e-12

    def test_barrier_waits_close_each_region(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(4)
        for r in tl.regions:
            if r.record.kind != "parallel":
                continue
            waits = [e for e in tl.events
                     if e.cat == CAT_BARRIER
                     and e.args.get("region") == r.record.index]
            # Every wait ends exactly at the region end (the barrier).
            for e in waits:
                assert e.end == pytest.approx(r.end)

    def test_serial_regions_run_on_thread_zero(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(8)
        serial = [e for e in tl.events if e.cat == CAT_SERIAL]
        assert serial and all(e.tid == 0 for e in serial)

    def test_chunk_events_preserve_work_units(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(2)
        for r in tl.regions:
            if r.record.kind != "parallel":
                continue
            chunk_work = sum(
                e.args["work_units"] for e in tl.events
                if e.cat == CAT_CHUNK and e.args["region"] == r.record.index)
            assert chunk_work == pytest.approx(
                float(r.record.chunk_costs.sum()))

    def test_single_thread_has_no_imbalance(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(1)
        for r in tl.regions:
            assert r.imbalance_wait == pytest.approx(0.0)

    def test_static_schedule_round_robin(self):
        profiler = Profiler(num_threads=2)

        class R:
            kind = "parallel"
            phase = "x"
            chunk_costs = np.asarray([100.0, 100.0, 100.0, 100.0])
            schedule = Schedule("static", 1)
            atomics = 0.0

        profiler.record_region(R())
        tl = profiler.timeline(2)
        owners = [e.tid for e in tl.events if e.cat == CAT_CHUNK]
        assert owners == [0, 1, 0, 1]

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            Profiler(num_threads=0)
        with pytest.raises(ValueError):
            Profiler().timeline(0)


class TestChromeExport:
    def test_schema_valid_with_one_lane_per_thread(self):
        _, _, profiler, _ = profiled_run(num_threads=8)
        doc = to_chrome_trace(profiler.timeline(), experiment="t")
        stats = validate_chrome_trace(doc)
        assert stats["named_lanes"] >= 8
        assert stats["events"] > 0

    def test_byte_identical_across_runs(self):
        docs = []
        for _ in range(2):
            _, _, profiler, _ = profiled_run(seed=5)
            doc = to_chrome_trace(profiler.timeline(), experiment="t",
                                  seed=5)
            docs.append(chrome_trace_json(doc))
        assert docs[0] == docs[1]

    def test_counter_events_from_marks(self):
        _, _, profiler, _ = profiled_run()
        doc = to_chrome_trace(profiler.timeline())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} >= {"move_delta_q",
                                                 "communities"}

    def test_validator_rejects_broken_docs(self):
        _, _, profiler, _ = profiled_run()
        doc = to_chrome_trace(profiler.timeline())
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": doc["traceEvents"]})
        bad = json.loads(chrome_trace_json(doc))
        bad["otherData"]["schema"] = "nope/9"
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)
        bad = json.loads(chrome_trace_json(doc))
        for ev in bad["traceEvents"]:
            if ev["ph"] == "X":
                ev["dur"] = -1.0
                break
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_service_requests_get_their_own_lane(self):
        profiler = Profiler(num_threads=2)
        profiler.request("service.query", 10.0, status="done")
        profiler.request("service.detect", 500.0, status="done")
        doc = to_chrome_trace(profiler.timeline())
        svc = [e for e in doc["traceEvents"]
               if e.get("pid") == 1 and e["ph"] == "X"]
        assert [e["name"] for e in svc] == ["service.query",
                                            "service.detect"]
        # Sequential on the logical clock.
        assert svc[1]["ts"] == pytest.approx(svc[0]["ts"] + svc[0]["dur"])


class TestReport:
    def test_phase_seconds_match_tracer_span_counters(self):
        """Report per-phase seconds ≈ tracer span totals (within 1%)."""
        _, tracer, profiler, _ = profiled_run()
        phases, _, _ = analyze_timeline(profiler.timeline())
        # Modelled seconds fed to the tracer at record time, grouped by
        # the ledger phase of the span the counter landed on.
        totals = tracer.counter_totals()
        assert sum(p.seconds for p in phases) == pytest.approx(
            totals["modeled_region_seconds"], rel=0.01)

    def test_report_is_deterministic_text(self):
        outs = []
        for _ in range(2):
            _, tracer, profiler, _ = profiled_run()
            outs.append(format_profile_report(
                profiler.timeline(), trace_doc=tracer.to_dict(), top=3,
                title="ring"))
        assert outs[0] == outs[1]
        assert "per-phase attribution" in outs[0]
        assert "scheduling-policy attribution" in outs[0]
        assert "convergence monitor" in outs[0]
        assert "local_move" in outs[0]

    def test_imbalance_factor_is_max_over_mean(self):
        _, _, profiler, _ = profiled_run()
        tl = profiler.timeline(4)
        phases, regions, _ = analyze_timeline(tl)
        for p in phases:
            assert p.imbalance >= 1.0 - 1e-9
        for r in regions:
            assert r.imbalance >= 1.0 - 1e-9
            assert 0.0 <= r.barrier_share <= 1.0 + 1e-9

    def test_attribution_consistent_with_speedup(self):
        """The barrier-wait/imbalance attribution exactly accounts for
        the gap between the critical path and the modelled region time,
        at every thread count the costmodel's speedup curve covers."""
        _, _, profiler, _ = profiled_run()
        for T in (1, 8, 32):
            phases, _, _ = analyze_timeline(profiler.timeline(T))
            for p in phases:
                # Region span beyond the slowest thread is barrier cost.
                assert p.seconds - p.critical_busy == pytest.approx(
                    p.barrier_cost / T, abs=1e-15)
                # Skew wait is exactly the idle thread-seconds.
                assert p.barrier_wait == pytest.approx(
                    T * p.critical_busy - p.busy_seconds, abs=1e-12)

    def test_convergence_rows_extracted_from_trace(self):
        _, tracer, _, result = profiled_run()
        rows = convergence_rows(tracer.to_dict())
        assert len(rows) == result.num_passes
        first = rows[0]
        assert first["iterations"] >= 1
        assert first["delta_q"] > 0.0
        assert first["visited"] > 0
        assert 0.0 < first["shrink_ratio"] <= 1.0
        # ΔQ per iteration is non-increasing in practice on this graph.
        assert first["delta_q_series"][0] == max(first["delta_q_series"])


class TestKernelDispatchCounters:
    def test_count_engine_counts_kernels(self):
        _, tracer, _, _ = profiled_run(engine="batch", kernel_engine="count")
        totals = tracer.counter_totals()
        assert totals["kernel_count_pair_sums"] > 0
        assert totals["kernel_count_argmax"] > 0
        assert totals["kernel_count_scatter_add"] > 0
        assert not any(k.startswith("kernel_sort_") for k in totals)

    def test_sort_engine_counts_kernels(self):
        _, tracer, _, _ = profiled_run(engine="batch", kernel_engine="sort")
        totals = tracer.counter_totals()
        assert totals["kernel_sort_pair_sums"] > 0
        assert not any(k.startswith("kernel_count_") for k in totals)
